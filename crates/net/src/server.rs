//! The exchange server: serves Object + Log exchanges over TCP.
//!
//! One task per connection; requests on a connection are handled in
//! arrival order (the apiserver-style serialization point), while watch
//! and tail subscriptions fan out through a per-connection outbound
//! channel so pushes never block request handling. Shutdown follows the
//! Tokio graceful-shutdown pattern: a broadcast flag observed by the
//! accept loop and every connection task.

use crate::frame::{FrameReader, FrameWriter};
use crate::proto::{
    decode, encode_into, EventBody, Hello, Request, RequestEnvelope, Response, ServerMsg,
};
use crate::replica::ReplRuntime;
use knactor_logstore::{LogExchange, TailEvent};
use knactor_rbac::Subject;
use knactor_store::{BatchOp, DataExchange, ReplState};
use knactor_types::{metrics, Error, Result, StoreId, Value};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, watch};
use tokio::task::JoinHandle;

/// Overload-protection knobs for one server.
///
/// The flow-control model is layered: the per-connection outbound queue
/// is *bounded*, so a client that stops reading eventually blocks the
/// server's reply enqueue — which stops the server reading that
/// connection's requests, pushing backpressure into TCP. Before that
/// hard stop, admission control sheds new requests with a typed
/// [`Error::Overloaded`] once the connection's outbound queue passes the
/// shed watermark or the server-wide inflight count passes its cap.
/// Shed requests are rejected *before* dispatch — no side effects — so
/// retrying them is always safe.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection outbound queue capacity (replies + pushed events).
    pub outbound_queue: usize,
    /// Outbound-queue depth at which new requests on that connection are
    /// shed with `Overloaded` instead of being executed.
    pub shed_watermark: usize,
    /// Server-wide cap on concurrently executing requests; admission
    /// sheds past it.
    pub max_inflight: usize,
    /// Backoff hint carried in `Overloaded { retry_after_ms }`.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            outbound_queue: 1024,
            shed_watermark: 896,
            max_inflight: 512,
            retry_after_ms: 40,
        }
    }
}

/// A running exchange server.
pub struct ExchangeServer {
    pub object: Arc<DataExchange>,
    pub log: Arc<LogExchange>,
    local_addr: std::net::SocketAddr,
    shutdown_tx: watch::Sender<bool>,
    accept_task: JoinHandle<()>,
    data_dir: PathBuf,
    /// Bound to port 0: the data dir is per-instance and disposable.
    ephemeral: bool,
    repl: Arc<ReplRuntime>,
}

impl ExchangeServer {
    /// Bind `addr` (use `127.0.0.1:0` for an ephemeral port) and start
    /// serving the given exchanges.
    pub async fn bind(
        addr: &str,
        object: Arc<DataExchange>,
        log: Arc<LogExchange>,
    ) -> Result<ExchangeServer> {
        ExchangeServer::bind_with_config(addr, object, log, ServerConfig::default()).await
    }

    /// [`ExchangeServer::bind`] with explicit overload-protection knobs.
    pub async fn bind_with_config(
        addr: &str,
        object: Arc<DataExchange>,
        log: Arc<LogExchange>,
        config: ServerConfig,
    ) -> Result<ExchangeServer> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Transport(e.to_string()))?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        // A server bound to an explicit port keeps a port-stable data
        // dir, so restarting it recovers its WALs. A port-0 bind asked
        // for *any* port — and the OS recycles ephemeral ports, so a
        // port-stable dir would let a fresh server silently recover a
        // dead stranger's WAL. Those dirs get a per-instance uniquifier
        // instead (and are removed on graceful shutdown).
        let ephemeral = addr.trim_end().ends_with(":0");
        let dir_name = if ephemeral {
            static EPHEMERAL_SEQ: AtomicU64 = AtomicU64::new(0);
            format!(
                "knactor-server-{local_addr}-{}-{}",
                std::process::id(),
                EPHEMERAL_SEQ.fetch_add(1, Ordering::Relaxed)
            )
        } else {
            format!("knactor-server-{local_addr}")
        };
        let data_dir = std::env::temp_dir().join(dir_name.replace(':', "_"));
        let reg = metrics::global();
        // Every node starts as its own leader: a single-node deployment
        // never notices replication exists. Harnesses demote followers
        // via `server.repl().set_follower()` right after bind.
        let repl = ReplRuntime::leader();
        let ctx = Arc::new(ServerCtx {
            object: Arc::clone(&object),
            log: Arc::clone(&log),
            data_dir: data_dir.clone(),
            next_sub: AtomicU64::new(1),
            config,
            inflight: AtomicI64::new(0),
            shed_total: reg.counter("knactor_net_shed_total", &[("role", "server")]),
            inflight_gauge: reg.gauge("knactor_net_inflight", &[("role", "server")]),
            repl: Arc::clone(&repl),
        });
        let accept_task = tokio::spawn(accept_loop(listener, ctx, shutdown_rx));
        Ok(ExchangeServer {
            object,
            log,
            local_addr,
            shutdown_tx,
            accept_task,
            data_dir,
            ephemeral,
            repl,
        })
    }

    /// Convenience: fresh exchanges on an ephemeral localhost port.
    pub async fn bind_ephemeral() -> Result<ExchangeServer> {
        ExchangeServer::bind(
            "127.0.0.1:0",
            Arc::new(DataExchange::new()),
            Arc::new(LogExchange::new()),
        )
        .await
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Directory under which remotely-requested durable stores place WALs.
    pub fn data_dir(&self) -> &std::path::Path {
        &self.data_dir
    }

    /// This node's replication role state (leader by default).
    pub fn repl(&self) -> Arc<ReplRuntime> {
        Arc::clone(&self.repl)
    }

    /// Signal shutdown and wait for the accept loop to finish. Existing
    /// connections observe the flag and drain.
    pub async fn shutdown(self) {
        let _ = self.shutdown_tx.send(true);
        let _ = self.accept_task.await;
        // An ephemeral server's WALs are unreachable after shutdown (no
        // one can re-bind "the same" port-0 server), so reclaim the dir.
        if self.ephemeral {
            let _ = std::fs::remove_dir_all(&self.data_dir);
        }
    }
}

struct ServerCtx {
    object: Arc<DataExchange>,
    log: Arc<LogExchange>,
    data_dir: PathBuf,
    next_sub: AtomicU64,
    config: ServerConfig,
    /// Requests currently executing across all connections.
    inflight: AtomicI64,
    shed_total: Arc<metrics::Counter>,
    inflight_gauge: Arc<metrics::Gauge>,
    repl: Arc<ReplRuntime>,
}

impl ServerCtx {
    /// Reject client mutations of replicated stores on non-leader nodes.
    ///
    /// Followers mutate their replicated stores only through the
    /// in-process replication apply path ([`crate::loopback`]), which
    /// never crosses this fence. Unknown stores pass: the op will fail
    /// with its own `NotFound` (or is a `CreateStore` broadcast).
    fn fence_replicated(&self, store: &StoreId) -> Result<()> {
        if self.repl.is_leader() {
            return Ok(());
        }
        let replicated = self
            .object
            .store(store)
            .map(|s| s.repl().is_some() || s.profile().repl_acks > 0)
            .unwrap_or(false);
        if replicated {
            return Err(Error::NotLeader {
                epoch: self.repl.epoch(),
            });
        }
        Ok(())
    }
    /// True when new work should be shed: this connection's outbound
    /// queue is past its watermark (the client is not consuming replies
    /// fast enough) or the server-wide inflight count is at its cap.
    fn should_shed(&self, out_tx: &mpsc::Sender<ServerMsg>) -> bool {
        let queued = self.config.outbound_queue.saturating_sub(out_tx.capacity());
        queued >= self.config.shed_watermark
            || self.inflight.load(Ordering::Relaxed) >= self.config.max_inflight as i64
    }
}

/// Requests subject to admission control. Ping (health), Metrics
/// (observability), and Unwatch (teardown that *relieves* load) are
/// always admitted. So is the replication control plane: a follower ack
/// is what releases a quorum-blocked writer (shedding it would deepen
/// the overload it is reacting to), and heartbeats/promotion must work
/// precisely when the cluster is struggling.
fn sheddable(request: &Request) -> bool {
    !matches!(
        request,
        Request::Ping
            | Request::Metrics
            | Request::Unwatch { .. }
            | Request::ReplAck { .. }
            | Request::ReplStatus
            | Request::ReplSubscribe { .. }
            | Request::ReplPromote { .. }
    )
}

async fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    mut shutdown: watch::Receiver<bool>,
) {
    loop {
        tokio::select! {
            accepted = listener.accept() => {
                match accepted {
                    Ok((socket, _peer)) => {
                        let ctx = Arc::clone(&ctx);
                        let shutdown = shutdown.clone();
                        tokio::spawn(async move {
                            // A failed connection is that client's problem;
                            // the server keeps serving.
                            let _ = serve_connection(socket, ctx, shutdown).await;
                        });
                    }
                    Err(_) => break,
                }
            }
            _ = shutdown.changed() => {
                if *shutdown.borrow() {
                    break;
                }
            }
        }
    }
}

async fn serve_connection(
    socket: TcpStream,
    ctx: Arc<ServerCtx>,
    mut shutdown: watch::Receiver<bool>,
) -> Result<()> {
    socket
        .set_nodelay(true)
        .map_err(|e| Error::Transport(e.to_string()))?;
    let (read_half, write_half) = socket.into_split();
    let mut reader = FrameReader::new(read_half);

    // Outbound writer task: everything the server sends goes through
    // here. The loop is *corked*: after the blocking recv it drains every
    // already-queued message into the frame writer's scratch buffer and
    // flushes once, so a burst of replies/events costs one socket write.
    //
    // The channel is *bounded*: a client that stops reading fills it,
    // which parks the enqueuers — fan-out tasks first, and ultimately the
    // request loop itself, which stops reading requests and lets TCP
    // push the backpressure to the producer.
    let (out_tx, mut out_rx) = mpsc::channel::<ServerMsg>(ctx.config.outbound_queue);
    let writer_task = tokio::spawn(async move {
        let mut writer = FrameWriter::new(write_half);
        let mut scratch = String::new();
        let frames_per_flush = metrics::global().histogram(
            "knactor_net_batch_size",
            &[("role", "server"), ("unit", "frames")],
        );
        'conn: while let Some(first) = out_rx.recv().await {
            let mut msg = first;
            let mut frames: u64 = 0;
            loop {
                if encode_into(&msg, &mut scratch).is_err() {
                    break 'conn;
                }
                if writer.write_frame_buffered(scratch.as_bytes()).is_err() {
                    break 'conn;
                }
                frames += 1;
                // The cork is byte-bounded: without the cap, a producer
                // that refills the queue as fast as this loop drains it
                // would keep the drain going forever, growing the staged
                // buffer without bound and never reaching the flush —
                // which is where a slow peer's TCP backpressure actually
                // parks this task. The cap keeps the batching win while
                // guaranteeing every staged byte meets the socket.
                if writer.buffered_len() >= CORK_MAX_BYTES {
                    break;
                }
                match out_rx.try_recv() {
                    Ok(next) => msg = next,
                    Err(_) => break,
                }
            }
            frames_per_flush.observe_ns(frames);
            if writer.flush().await.is_err() {
                break;
            }
        }
    });

    // Hello frame: who is this?
    let subject = match reader.read_frame().await? {
        Some(frame) => {
            let hello: Hello = decode(&frame)?;
            subject_from_hello(&hello)?
        }
        None => return Ok(()),
    };

    // Active push subscriptions on this connection.
    let mut subs: HashMap<u64, JoinHandle<()>> = HashMap::new();

    let result = loop {
        tokio::select! {
            frame = reader.read_frame() => {
                match frame {
                    Ok(Some(frame)) => {
                        let envelope: RequestEnvelope = match decode(&frame) {
                            Ok(e) => e,
                            Err(e) => break Err(e),
                        };
                        let id = envelope.id;
                        // Admission control: shed before dispatch (no side
                        // effects, so retry is always safe). Ping, Metrics,
                        // and Unwatch stay admitted — health checks and
                        // load-relieving teardown must work *especially*
                        // under overload.
                        if sheddable(&envelope.body) && ctx.should_shed(&out_tx) {
                            ctx.shed_total.inc();
                            let response = Response::from_error(&Error::Overloaded {
                                retry_after_ms: ctx.config.retry_after_ms,
                            });
                            if out_tx.send(ServerMsg::Reply { id, response }).await.is_err() {
                                break Ok(());
                            }
                            continue;
                        }
                        ctx.inflight.fetch_add(1, Ordering::Relaxed);
                        ctx.inflight_gauge.add(1);
                        let dispatched = dispatch(
                            id,
                            envelope.body,
                            &ctx,
                            &subject,
                            &out_tx,
                            &mut subs,
                        )
                        .await;
                        ctx.inflight.fetch_sub(1, Ordering::Relaxed);
                        ctx.inflight_gauge.sub(1);
                        let response = match dispatched {
                            // Subscription arms reply through `out_tx`
                            // themselves (the reply must be queued before
                            // the fan-out task can push its first event).
                            Ok(None) => continue,
                            Ok(Some(response)) => response,
                            Err(e) => Response::from_error(&e),
                        };
                        if out_tx.send(ServerMsg::Reply { id, response }).await.is_err() {
                            break Ok(());
                        }
                    }
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            }
            _ = shutdown.changed() => {
                if *shutdown.borrow() {
                    break Ok(());
                }
            }
        }
    };

    for (_, task) in subs {
        task.abort();
    }
    drop(out_tx);
    let _ = writer_task.await;
    result
}

/// Byte ceiling for one corked writer drain: once this much is staged
/// unflushed, the writer flushes before draining more of its queue.
const CORK_MAX_BYTES: usize = 256 * 1024;

/// Most events a single pushed frame may carry.
const BATCH_MAX_EVENTS: usize = 128;
/// Rough payload-byte budget per pushed frame (estimated, not encoded
/// sizes — enough to keep a run of large values from building a frame
/// anywhere near `MAX_FRAME`).
const BATCH_MAX_BYTES: usize = 256 * 1024;

/// Wrap a drained run of bodies: a lone event keeps the compact `Event`
/// form, a run becomes one `EventBatch` frame.
fn batched_msg(sub_id: u64, mut bodies: Vec<EventBody>) -> ServerMsg {
    if bodies.len() == 1 {
        ServerMsg::Event {
            sub_id,
            body: bodies.pop().expect("len checked"),
        }
    } else {
        ServerMsg::EventBatch { sub_id, bodies }
    }
}

/// Cheap JSON-size estimate (no serialization) used for the byte cap.
fn approx_value_bytes(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 8,
        Value::Number(_) => 16,
        Value::String(s) => s.len() + 8,
        Value::Array(items) => 8 + items.iter().map(approx_value_bytes).sum::<usize>(),
        Value::Object(map) => {
            8 + map
                .iter()
                .map(|(k, v)| k.len() + 8 + approx_value_bytes(v))
                .sum::<usize>()
        }
    }
}

fn subject_from_hello(hello: &Hello) -> Result<Subject> {
    let subject = match hello.subject_kind.as_str() {
        "reconciler" => Subject::reconciler(&hello.subject_name),
        "integrator" => Subject::integrator(&hello.subject_name),
        "operator" => Subject::operator(&hello.subject_name),
        other => return Err(Error::Transport(format!("unknown subject kind '{other}'"))),
    };
    Ok(subject)
}

/// Handle one request. Subscription requests (`Watch`, `LogTail`) enqueue
/// their own success reply on `out_tx` *before* spawning the fan-out task
/// and return `Ok(None)`: the channel is FIFO, so the client is guaranteed
/// to process the reply (installing the subscription routing) before the
/// first pushed event — otherwise a fast replay could race ahead of the
/// reply and be dropped by the client demultiplexer. Every other request
/// returns `Ok(Some(response))` for the caller to reply with.
async fn dispatch(
    id: u64,
    request: Request,
    ctx: &Arc<ServerCtx>,
    subject: &Subject,
    out_tx: &mpsc::Sender<ServerMsg>,
    subs: &mut HashMap<u64, JoinHandle<()>>,
) -> Result<Option<Response>> {
    match request {
        Request::Watch { store, from } => {
            let mut stream = ctx
                .object
                .handle(&store, subject.clone())?
                .watch_from(from)?;
            let sub_id = ctx.next_sub.fetch_add(1, Ordering::Relaxed);
            if out_tx
                .send(ServerMsg::Reply {
                    id,
                    response: Response::Watch { sub_id },
                })
                .await
                .is_err()
            {
                // Connection gone; nothing to fan out to.
                return Ok(None);
            }
            let out = out_tx.clone();
            let task = tokio::spawn(async move {
                // Drain-available batching: after each blocking recv,
                // scoop up whatever else has already committed (bounded
                // by count and bytes) so fan-out sends one frame for N
                // events instead of N frames.
                //
                // `out.send` parks when the connection's bounded queue is
                // full — this task stops *reading* the store stream, the
                // store-side lag gate fills, and the store cuts the
                // subscription rather than queueing without bound. The
                // shared outbox drainer is never blocked either way.
                while let Some(event) = stream.recv().await {
                    let mut bytes = approx_value_bytes(&event.value);
                    let mut bodies = vec![EventBody::Object { event }];
                    while bodies.len() < BATCH_MAX_EVENTS && bytes < BATCH_MAX_BYTES {
                        match stream.try_recv() {
                            Some(event) => {
                                bytes += approx_value_bytes(&event.value);
                                bodies.push(EventBody::Object { event });
                            }
                            None => break,
                        }
                    }
                    if out.send(batched_msg(sub_id, bodies)).await.is_err() {
                        return;
                    }
                }
                // Stream end: a lag cutoff carries a typed resume point so
                // the client can rewatch gaplessly; an ordinary close says
                // so plainly.
                let body = match stream.lag_resume_from() {
                    Some(resume) => EventBody::WatchLagged {
                        resume_from: resume.0,
                    },
                    None => EventBody::Closed,
                };
                let _ = out.send(ServerMsg::Event { sub_id, body }).await;
            });
            subs.insert(sub_id, task);
            Ok(None)
        }
        Request::ReplSubscribe { store, from } => {
            // Replication stream: the raw store watch (no RBAC handle, no
            // profile delivery delays) — followers mirror commit order,
            // they are not clients. Same reply-before-spawn and
            // drain-available batching as `Watch`.
            let mut stream = ctx.object.store(&store)?.watch_from(from)?;
            let sub_id = ctx.next_sub.fetch_add(1, Ordering::Relaxed);
            if out_tx
                .send(ServerMsg::Reply {
                    id,
                    response: Response::Watch { sub_id },
                })
                .await
                .is_err()
            {
                return Ok(None);
            }
            let out = out_tx.clone();
            let task = tokio::spawn(async move {
                while let Some(event) = stream.recv().await {
                    let mut bytes = approx_value_bytes(&event.value);
                    let mut bodies = vec![EventBody::Object { event }];
                    while bodies.len() < BATCH_MAX_EVENTS && bytes < BATCH_MAX_BYTES {
                        match stream.try_recv() {
                            Ok(event) => {
                                bytes += approx_value_bytes(&event.value);
                                bodies.push(EventBody::Object { event });
                            }
                            Err(_) => break,
                        }
                    }
                    if out.send(batched_msg(sub_id, bodies)).await.is_err() {
                        return;
                    }
                }
                // A lag cut just ends the stream: the follower resubscribes
                // from its own applied revision, which is always a valid
                // resume point.
                let body = match stream.lag_resume_from() {
                    Some(resume) => EventBody::WatchLagged {
                        resume_from: resume.0,
                    },
                    None => EventBody::Closed,
                };
                let _ = out.send(ServerMsg::Event { sub_id, body }).await;
            });
            subs.insert(sub_id, task);
            Ok(None)
        }
        Request::LogTail { store, from } => {
            let mut rx = ctx.log.store(&store)?.tail(from);
            let sub_id = ctx.next_sub.fetch_add(1, Ordering::Relaxed);
            if out_tx
                .send(ServerMsg::Reply {
                    id,
                    response: Response::Watch { sub_id },
                })
                .await
                .is_err()
            {
                return Ok(None);
            }
            let out = out_tx.clone();
            let task = tokio::spawn(async move {
                // Same drain-available batching as watch fan-out. Lag
                // markers ride the same stream as typed bodies so the
                // client sees them in order relative to records.
                let wire = |ev: TailEvent| match ev {
                    TailEvent::Record(record) => (
                        approx_value_bytes(&record.fields),
                        EventBody::Record { record },
                    ),
                    TailEvent::Lagged {
                        missed,
                        resume_from,
                    } => (
                        16,
                        EventBody::Lagged {
                            missed,
                            resume_from,
                        },
                    ),
                };
                while let Some(ev) = rx.recv().await {
                    let (mut bytes, body) = wire(ev);
                    let mut bodies = vec![body];
                    while bodies.len() < BATCH_MAX_EVENTS && bytes < BATCH_MAX_BYTES {
                        match rx.try_recv() {
                            Ok(ev) => {
                                let (b, body) = wire(ev);
                                bytes += b;
                                bodies.push(body);
                            }
                            Err(_) => break,
                        }
                    }
                    if out.send(batched_msg(sub_id, bodies)).await.is_err() {
                        return;
                    }
                }
                let _ = out
                    .send(ServerMsg::Event {
                        sub_id,
                        body: EventBody::Closed,
                    })
                    .await;
            });
            subs.insert(sub_id, task);
            Ok(None)
        }
        other => dispatch_request(other, ctx, subject, subs).await.map(Some),
    }
}

async fn dispatch_request(
    request: Request,
    ctx: &Arc<ServerCtx>,
    subject: &Subject,
    subs: &mut HashMap<u64, JoinHandle<()>>,
) -> Result<Response> {
    match request {
        Request::Ping => Ok(Response::Pong),
        Request::CreateStore { store, profile } => {
            let profile = profile.materialize(&ctx.data_dir, &store);
            let repl_acks = profile.repl_acks;
            let created = ctx.object.create_store(store.clone(), profile)?;
            if repl_acks > 0 {
                // Replicated store: wire its quorum state to this node's
                // role flag (quorum waits are live only while leading).
                created.attach_repl(ReplState::new(&store, ctx.repl.leading_flag()));
            }
            Ok(Response::Ok)
        }
        Request::Create { store, key, value } => {
            ctx.fence_replicated(&store)?;
            let rev = ctx
                .object
                .handle(&store, subject.clone())?
                .create(key, value)
                .await?;
            Ok(Response::Revision { revision: rev })
        }
        Request::Get { store, key } => {
            let object = ctx
                .object
                .handle(&store, subject.clone())?
                .get(&key)
                .await?;
            Ok(Response::Object { object })
        }
        Request::List { store } => {
            let (objects, revision) = ctx.object.handle(&store, subject.clone())?.list().await?;
            Ok(Response::Objects { objects, revision })
        }
        Request::Update {
            store,
            key,
            value,
            expected,
        } => {
            ctx.fence_replicated(&store)?;
            let rev = ctx
                .object
                .handle(&store, subject.clone())?
                .update(&key, value, expected)
                .await?;
            Ok(Response::Revision { revision: rev })
        }
        Request::Patch {
            store,
            key,
            patch,
            upsert,
        } => {
            ctx.fence_replicated(&store)?;
            let rev = ctx
                .object
                .handle(&store, subject.clone())?
                .patch(&key, patch, upsert)
                .await?;
            Ok(Response::Revision { revision: rev })
        }
        Request::Delete { store, key } => {
            ctx.fence_replicated(&store)?;
            let rev = ctx
                .object
                .handle(&store, subject.clone())?
                .delete(&key)
                .await?;
            Ok(Response::Revision { revision: rev })
        }
        Request::BatchGet { store, keys } => {
            let items = ctx
                .object
                .handle(&store, subject.clone())?
                .batch_get(&keys)
                .await?;
            Ok(Response::Batch { items })
        }
        Request::BatchPut { store, items } => {
            ctx.fence_replicated(&store)?;
            let ops = items.into_iter().map(BatchOp::from).collect();
            let items = ctx
                .object
                .handle(&store, subject.clone())?
                .batch_commit(ops)
                .await?;
            Ok(Response::Batch { items })
        }
        Request::BatchCommit { store, ops } => {
            ctx.fence_replicated(&store)?;
            let items = ctx
                .object
                .handle(&store, subject.clone())?
                .batch_commit(ops)
                .await?;
            Ok(Response::Batch { items })
        }
        Request::RegisterConsumer {
            store,
            key,
            consumer,
        } => {
            ctx.object
                .handle(&store, subject.clone())?
                .register_consumer(&key, &consumer)
                .await?;
            Ok(Response::Ok)
        }
        Request::MarkProcessed {
            store,
            key,
            consumer,
        } => {
            let keys = ctx
                .object
                .handle(&store, subject.clone())?
                .mark_processed(&key, &consumer)
                .await?;
            Ok(Response::Collected { keys })
        }
        Request::Watch { .. } | Request::LogTail { .. } => {
            unreachable!("subscription requests are handled by `dispatch`")
        }
        Request::Unwatch { sub_id } => {
            if let Some(task) = subs.remove(&sub_id) {
                task.abort();
                Ok(Response::Ok)
            } else {
                Err(Error::NotFound(format!("subscription {sub_id}")))
            }
        }
        Request::RegisterSchema { schema } => {
            ctx.object.register_schema(schema)?;
            Ok(Response::Ok)
        }
        Request::BindSchema { store, schema } => {
            ctx.object.bind_schema(&store, &schema)?;
            Ok(Response::Ok)
        }
        Request::GetSchema { schema } => Ok(Response::Schema {
            schema: ctx.object.schema(&schema)?,
        }),
        Request::RegisterUdf {
            name,
            inputs,
            assignments,
        } => {
            ctx.object.register_udf(name, inputs, &assignments)?;
            Ok(Response::Ok)
        }
        Request::ExecuteUdf { name, bindings } => {
            let revisions = ctx.object.execute_udf(subject, &name, &bindings)?;
            Ok(Response::Revisions {
                revisions: revisions.into_iter().collect(),
            })
        }
        Request::Transact { ops } => {
            for op in &ops {
                ctx.fence_replicated(&op.store)?;
            }
            let revisions = ctx.object.transact(subject, &ops)?;
            Ok(Response::Revisions {
                revisions: revisions.into_iter().collect(),
            })
        }
        Request::LogCreateStore { store } => {
            ctx.log.create_store(store)?;
            Ok(Response::Ok)
        }
        Request::LogAppend { store, fields } => {
            let seq = ctx.log.ingest(&subject.to_string(), &store, fields)?;
            Ok(Response::Seq { seq })
        }
        Request::LogAppendBatch { store, batch } => {
            let seq = ctx.log.ingest_batch(&subject.to_string(), &store, batch)?;
            Ok(Response::Seq { seq })
        }
        Request::LogRead { store, from } => {
            let records = ctx.log.store(&store)?.read_from(from);
            Ok(Response::Records { records })
        }
        Request::LogQuery { store, query } => {
            let compiled = query.compile()?;
            let rows = ctx.log.query(&subject.to_string(), &store, &compiled)?;
            Ok(Response::Rows { rows })
        }
        Request::ReplSubscribe { .. } => {
            unreachable!("subscription requests are handled by `dispatch`")
        }
        Request::ReplAck {
            store,
            follower,
            revision,
        } => {
            // Acks against a store with no attached ReplState (e.g. a
            // non-replicated profile) are harmless no-ops.
            let target = ctx.object.store(&store)?;
            if let Some(repl) = target.repl() {
                repl.ack(&follower, revision, target.revision());
            }
            Ok(Response::Ok)
        }
        Request::ReplStatus => {
            let applied = ctx
                .object
                .store_ids()
                .into_iter()
                .filter_map(|id| ctx.object.store(&id).ok().map(|s| (id, s.revision())))
                .collect();
            Ok(Response::ReplStatus {
                leader: ctx.repl.is_leader(),
                epoch: ctx.repl.epoch(),
                applied,
            })
        }
        Request::ReplPromote { epoch } => {
            ctx.repl.promote(epoch)?;
            Ok(Response::Ok)
        }
        Request::ReplWait { store, revision } => {
            // Read-your-writes barrier: block (bounded) until this node's
            // copy of the store has applied at least `revision`.
            let deadline = std::time::Instant::now() + REPL_WAIT_TIMEOUT;
            loop {
                let current = ctx.object.store(&store)?.revision();
                if current >= revision {
                    return Ok(Response::Revision { revision: current });
                }
                if std::time::Instant::now() >= deadline {
                    return Err(Error::Timeout(format!(
                        "replica at revision {} has not applied {}",
                        current.0, revision.0
                    )));
                }
                tokio::time::sleep(REPL_WAIT_POLL).await;
            }
        }
        Request::Metrics => Ok(Response::Metrics {
            snapshot: knactor_types::metrics::global().snapshot(),
        }),
    }
}

/// How long a `ReplWait` barrier may block before reporting the replica
/// as behind. Bounded well under client request timeouts.
const REPL_WAIT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(3);
/// Poll cadence for the `ReplWait` barrier (applies arrive from the
/// replication task, not this connection, so polling is the simple,
/// allocation-free wait).
const REPL_WAIT_POLL: std::time::Duration = std::time::Duration::from_micros(500);

/// Helper used by tests and benches: a running server plus its address,
/// with exchanges pre-created for the given store ids.
pub async fn test_server(object_stores: &[&str], log_stores: &[&str]) -> Result<ExchangeServer> {
    let server = ExchangeServer::bind_ephemeral().await?;
    for id in object_stores {
        server
            .object
            .create_store(StoreId::new(*id), knactor_store::EngineProfile::instant())?;
    }
    for id in log_stores {
        server.log.create_store(StoreId::new(*id))?;
    }
    Ok(server)
}
