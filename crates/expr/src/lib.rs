//! # knactor-expr
//!
//! The expression language used inside data-exchange-graph (DXG)
//! specifications. Fig. 6 of the paper writes assignments like:
//!
//! ```text
//! shippingCost: currency_convert(S.quote.price, S.quote.currency, this.currency)
//! items:        [item.name for item in C.order.items]
//! method:       "air" if C.order.cost > 1000 else "ground"
//! ```
//!
//! The language is a small, deterministic, side-effect-free subset of a
//! Python-like expression grammar:
//!
//! * **references** — `C.order.totalCost`, `this.currency`, indexing
//!   `xs[0]`; the leading identifier resolves against an evaluation
//!   [`Env`] (service aliases, `this`, comprehension variables)
//! * **literals** — numbers, strings (single or double quotes), `true` /
//!   `false`, `null`, list literals `[1, 2]`
//! * **operators** — `+ - * /` and `%`, comparisons `== != < <= > >=`,
//!   boolean `and` / `or` / `not`, string concatenation via `+`
//! * **conditional** — `a if cond else b`
//! * **comprehension** — `[expr for var in listexpr]`, optionally with a
//!   filter: `[expr for var in listexpr if cond]`
//! * **calls** — `fn(args…)` resolved in a [`FnRegistry`] of pure builtin
//!   functions ([`builtins`])
//!
//! Determinism and totality matter: integrators re-evaluate expressions
//! whenever watched state changes, and both the store-side UDF pushdown
//! (§3.3) and exchange replay assume re-running an expression over the
//! same state produces the same value.

pub mod ast;
pub mod builtins;
pub mod eval;
pub mod lexer;
pub mod optimize;
pub mod parser;

pub use ast::Expr;
pub use builtins::FnRegistry;
pub use eval::{eval, Env};
pub use optimize::fold_constants;
pub use parser::parse_expr;

use knactor_types::Result;

/// Parse and evaluate an expression in one step.
///
/// ```
/// use knactor_expr::{quick_eval, Env, FnRegistry};
/// let mut env = Env::new();
/// env.bind("x", serde_json::json!({"n": 20}));
/// let v = quick_eval("x.n * 2 + 2", &env, &FnRegistry::standard()).unwrap();
/// assert_eq!(v, serde_json::json!(42.0));
/// ```
pub fn quick_eval(src: &str, env: &Env, fns: &FnRegistry) -> Result<serde_json::Value> {
    let expr = parse_expr(src)?;
    eval(&expr, env, fns)
}
