//! Cost-based planning: score the candidate executions of a DXG edge.
//!
//! The planner's static choices (pushdown selection, consolidation,
//! batch thresholds) were made at compose time until now; this module
//! turns them into a *scored* decision over measured behaviour. The
//! inputs come from the metrics registry — per-stage activation latency
//! histograms, activation counts, retry rates — windowed between two
//! scrapes via `MetricsSnapshot::delta` so the model sees what the
//! system is doing *now*, not a lifetime average.
//!
//! The model is deliberately simple and fully explainable (the CLI's
//! `plan --explain` prints every number it produces):
//!
//! * **Direct** execution pays a read phase (all source fetches run
//!   concurrently, so one round-trip window regardless of input count),
//!   an evaluate phase, and one write phase per target store.
//! * **Pushdown** pays a single exchange round trip: evaluate-and-write
//!   happen inside the exchange, so the write phase disappears from the
//!   client's critical path.
//! * When one candidate has not run inside the window, its cost is
//!   *estimated* from the other's measured stages (marked `measured:
//!   false` so consumers can weigh confidence): pushdown ≈ read + eval;
//!   direct ≈ 2 × the pushdown round trip (one extra delay window).
//! * **Shard placement** gates eligibility: pushdown executes on one
//!   shard, so an edge whose bound keys scatter across shards cannot
//!   push down — the report still carries the hypothetical scatter cost
//!   so operators see *why* it lost.
//!
//! The tuner in `knactor-core` closes the loop: it builds
//! [`EdgeCostInput`]s from snapshot deltas, asks [`CostModel::score_edge`],
//! and re-plans via `Composer::apply` when a candidate wins by a
//! hysteresis margin.

use crate::plan::Plan;
use crate::spec::Dxg;
use knactor_types::Result;
use std::collections::BTreeMap;
use std::fmt;

/// Stage names as recorded by the Cast integrator (`knactor-core`
/// mirrors these into `knactor_activation_stage_seconds{stage=...}`).
pub const STAGE_READ: &str = "read-sources";
pub const STAGE_EVAL: &str = "evaluate";
pub const STAGE_PUSHDOWN: &str = "pushdown-execute";
pub const STAGE_WRITE_PREFIX: &str = "write:";

/// How one edge executes: client-side or inside the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecChoice {
    Direct,
    Pushdown,
}

impl fmt::Display for ExecChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecChoice::Direct => write!(f, "direct"),
            ExecChoice::Pushdown => write!(f, "pushdown"),
        }
    }
}

/// Where an edge's bound keys live relative to the shard topology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Placement {
    /// Every binding resolves to one shard (or the exchange is
    /// unsharded): pushdown is eligible.
    #[default]
    Colocated,
    /// Bindings span `shards` distinct shards: a pushdown would have to
    /// scatter, which the router rejects — ineligible, and costed as a
    /// hypothetical so the report explains the rejection.
    Scattered { shards: usize },
}

/// Windowed observations for one edge, the model's only input. Build it
/// from a `MetricsSnapshot::delta` (stage means out of
/// `knactor_activation_stage_seconds`, rates out of the counters) or
/// synthesize it for offline explanation.
#[derive(Debug, Clone, Default)]
pub struct EdgeCostInput {
    /// Activations per second over the window.
    pub activation_rate: f64,
    /// Mean seconds per stage over the window, keyed by stage name
    /// ([`STAGE_READ`], [`STAGE_EVAL`], `write:{alias}`,
    /// [`STAGE_PUSHDOWN`]).
    pub stage_mean: BTreeMap<String, f64>,
    /// Shard placement of the edge's bindings.
    pub placement: Placement,
    /// Client retries per activation over the window (retried work is
    /// paid work: it scales the per-activation cost).
    pub retry_rate: f64,
}

impl EdgeCostInput {
    fn read(&self) -> Option<f64> {
        self.stage_mean.get(STAGE_READ).copied()
    }

    fn eval(&self) -> f64 {
        self.stage_mean.get(STAGE_EVAL).copied().unwrap_or(0.0)
    }

    fn writes(&self) -> f64 {
        self.stage_mean
            .iter()
            .filter(|(k, _)| k.starts_with(STAGE_WRITE_PREFIX))
            .map(|(_, v)| v)
            .sum()
    }

    fn pushdown(&self) -> Option<f64> {
        self.stage_mean.get(STAGE_PUSHDOWN).copied()
    }
}

/// One scored candidate for an edge.
#[derive(Debug, Clone)]
pub struct CandidateCost {
    pub choice: ExecChoice,
    /// Mean seconds per activation this candidate would cost.
    pub per_activation: f64,
    /// True when the window actually measured this choice's stages;
    /// false when the model estimated it from the other choice's.
    pub measured: bool,
    /// False when the candidate cannot run (e.g. scattered pushdown).
    pub eligible: bool,
    /// Human-readable derivation, printed by `plan --explain`.
    pub note: String,
}

/// The model's verdict for one edge: every candidate, plus threshold
/// suggestions derived from the observed rate.
#[derive(Debug, Clone)]
pub struct EdgeCostReport {
    pub edge: String,
    pub current: ExecChoice,
    pub candidates: Vec<CandidateCost>,
    /// Suggested Cast event-coalescing threshold for the observed rate.
    pub suggested_coalesce: usize,
}

impl EdgeCostReport {
    /// The cheapest *eligible* candidate.
    pub fn best(&self) -> Option<&CandidateCost> {
        self.candidates
            .iter()
            .filter(|c| c.eligible)
            .min_by(|a, b| a.per_activation.total_cmp(&b.per_activation))
    }

    pub fn cost_of(&self, choice: ExecChoice) -> Option<f64> {
        self.candidates
            .iter()
            .find(|c| c.choice == choice)
            .map(|c| c.per_activation)
    }
}

/// The cost model. Stateless: every score is a pure function of its
/// input, which is what makes the tuner's decisions property-testable.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Multiplier applied per extra shard when costing a hypothetical
    /// scattered pushdown (reported, never chosen).
    pub scatter_penalty: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            scatter_penalty: 2.0,
        }
    }
}

impl CostModel {
    /// Score both execution candidates for one edge. `current` names the
    /// choice the window's measurements describe.
    pub fn score_edge(
        &self,
        edge: &str,
        current: ExecChoice,
        input: &EdgeCostInput,
    ) -> EdgeCostReport {
        let retry_factor = 1.0 + input.retry_rate.max(0.0);

        // Direct: measured when its stages appeared in the window,
        // otherwise one extra delay window over the pushdown round trip.
        let direct = match input.read() {
            Some(read) => CandidateCost {
                choice: ExecChoice::Direct,
                per_activation: (read + input.eval() + input.writes()) * retry_factor,
                measured: true,
                eligible: true,
                note: format!(
                    "measured: read {:.1}µs + eval {:.1}µs + writes {:.1}µs",
                    read * 1e6,
                    input.eval() * 1e6,
                    input.writes() * 1e6
                ),
            },
            None => {
                let rt = input.pushdown().unwrap_or(0.0);
                CandidateCost {
                    choice: ExecChoice::Direct,
                    per_activation: 2.0 * rt * retry_factor,
                    measured: false,
                    eligible: true,
                    note: format!("estimated: 2 × pushdown round trip ({:.1}µs)", rt * 1e6),
                }
            }
        };

        // Pushdown: measured when the window ran it; otherwise the read
        // round trip plus evaluation (the write phase folds into the
        // same exchange command). Scattering disqualifies it.
        let base = match input.pushdown() {
            Some(rt) => CandidateCost {
                choice: ExecChoice::Pushdown,
                per_activation: rt * retry_factor,
                measured: true,
                eligible: true,
                note: format!("measured: round trip {:.1}µs", rt * 1e6),
            },
            None => {
                let est = input.read().unwrap_or(0.0) + input.eval();
                CandidateCost {
                    choice: ExecChoice::Pushdown,
                    per_activation: est * retry_factor,
                    measured: false,
                    eligible: true,
                    note: format!(
                        "estimated: one round trip ≈ read + eval ({:.1}µs)",
                        est * 1e6
                    ),
                }
            }
        };
        let pushdown = match input.placement {
            Placement::Colocated => base,
            Placement::Scattered { shards } => CandidateCost {
                per_activation: base.per_activation * self.scatter_penalty * shards.max(1) as f64,
                eligible: false,
                note: format!(
                    "ineligible: bindings scatter across {shards} shards \
                     (hypothetical scatter cost shown)"
                ),
                ..base
            },
        };

        EdgeCostReport {
            edge: edge.to_string(),
            current,
            candidates: vec![direct, pushdown],
            suggested_coalesce: self.suggest_coalesce(input.activation_rate),
        }
    }

    /// Event-coalescing threshold for a Cast edge: at low rates coalesce
    /// nothing (latency matters, queues are empty anyway); as the event
    /// rate climbs, folding more queued events per activation amortizes
    /// the per-activation round trips. Capped so a drain can't stall.
    pub fn suggest_coalesce(&self, activation_rate: f64) -> usize {
        if activation_rate < 500.0 {
            1
        } else {
            ((activation_rate / 250.0) as usize).clamp(2, 64)
        }
    }

    /// Batch threshold for a Sync edge, by the same shape: one record
    /// per delivery until the arrival rate justifies batched appends.
    pub fn suggest_sync_batch(&self, record_rate: f64) -> usize {
        if record_rate < 200.0 {
            1
        } else {
            ((record_rate / 100.0) as usize).clamp(2, 64)
        }
    }

    /// Consolidation score of a plan: (naive per-assignment writes,
    /// consolidated write ops). The planner already consolidates; this
    /// is the measured saving the explain output attributes to it.
    pub fn consolidation(&self, plan: &Plan) -> (usize, usize) {
        (plan.assignment_count(), plan.write_ops())
    }
}

/// Per-operation costs for *offline* explanation, when no live window
/// exists. Defaults model a Redis-like engine (250µs reads, 300µs
/// writes) — the same numbers `EngineProfile::redis` models.
#[derive(Debug, Clone, Copy)]
pub struct StaticCosts {
    pub read_seconds: f64,
    pub write_seconds: f64,
    pub eval_seconds: f64,
}

impl Default for StaticCosts {
    fn default() -> StaticCosts {
        StaticCosts {
            read_seconds: 250e-6,
            write_seconds: 300e-6,
            eval_seconds: 5e-6,
        }
    }
}

/// Synthesize an [`EdgeCostInput`] for one edge plan from static
/// per-operation costs: one concurrent read window, one evaluate per
/// step, one write per step target.
pub fn static_input(plan: &Plan, costs: &StaticCosts) -> EdgeCostInput {
    let mut stage_mean = BTreeMap::new();
    stage_mean.insert(STAGE_READ.to_string(), costs.read_seconds);
    stage_mean.insert(
        STAGE_EVAL.to_string(),
        costs.eval_seconds * plan.steps.len().max(1) as f64,
    );
    for step in &plan.steps {
        stage_mean.insert(
            format!("{STAGE_WRITE_PREFIX}{}", step.target_alias),
            costs.write_seconds,
        );
    }
    EdgeCostInput {
        activation_rate: 0.0,
        stage_mean,
        placement: Placement::Colocated,
        retry_rate: 0.0,
    }
}

/// Offline candidate enumeration for a whole DXG: slice into per-target
/// edges, plan each, and score both candidates from static costs. This
/// is what `knactorctl plan --explain` prints.
pub fn explain(dxg: &Dxg, costs: &StaticCosts) -> Result<Vec<(EdgeCostReport, Plan)>> {
    let mut out = Vec::new();
    for (alias, edge) in dxg.edges() {
        let plan = Plan::build(&edge)?;
        let input = static_input(&plan, costs);
        let report = CostModel::default().score_edge(&alias, ExecChoice::Direct, &input);
        out.push((report, plan));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FIG6_RETAIL_DXG;

    fn measured_direct() -> EdgeCostInput {
        let mut stage_mean = BTreeMap::new();
        stage_mean.insert(STAGE_READ.to_string(), 250e-6);
        stage_mean.insert(STAGE_EVAL.to_string(), 10e-6);
        stage_mean.insert("write:S".to_string(), 300e-6);
        EdgeCostInput {
            activation_rate: 100.0,
            stage_mean,
            placement: Placement::Colocated,
            retry_rate: 0.0,
        }
    }

    #[test]
    fn pushdown_estimate_beats_measured_direct_when_writes_dominate() {
        let report = CostModel::default().score_edge("S", ExecChoice::Direct, &measured_direct());
        let direct = report.cost_of(ExecChoice::Direct).unwrap();
        let pushdown = report.cost_of(ExecChoice::Pushdown).unwrap();
        assert!((direct - 560e-6).abs() < 1e-9, "direct {direct}");
        assert!((pushdown - 260e-6).abs() < 1e-9, "pushdown {pushdown}");
        let best = report.best().unwrap();
        assert_eq!(best.choice, ExecChoice::Pushdown);
        assert!(
            !best.measured,
            "pushdown was never run: must be an estimate"
        );
    }

    #[test]
    fn measured_pushdown_preferred_over_its_own_estimate() {
        let mut input = measured_direct();
        input.stage_mean.insert(STAGE_PUSHDOWN.to_string(), 80e-6);
        let report = CostModel::default().score_edge("S", ExecChoice::Pushdown, &input);
        let c = report
            .candidates
            .iter()
            .find(|c| c.choice == ExecChoice::Pushdown)
            .unwrap();
        assert!(c.measured);
        assert!((c.per_activation - 80e-6).abs() < 1e-9);
    }

    #[test]
    fn scattered_placement_disqualifies_pushdown() {
        let mut input = measured_direct();
        input.placement = Placement::Scattered { shards: 4 };
        let report = CostModel::default().score_edge("S", ExecChoice::Direct, &input);
        let best = report.best().unwrap();
        assert_eq!(
            best.choice,
            ExecChoice::Direct,
            "scatter must fall back to direct"
        );
        let pd = report
            .candidates
            .iter()
            .find(|c| c.choice == ExecChoice::Pushdown)
            .unwrap();
        assert!(!pd.eligible);
        // The hypothetical is costed (and explains itself) rather than
        // silently vanishing from the report.
        assert!(pd.per_activation > report.cost_of(ExecChoice::Direct).unwrap());
        assert!(pd.note.contains("4 shards"), "{}", pd.note);
    }

    #[test]
    fn direct_estimated_from_pushdown_round_trip_when_unmeasured() {
        let mut stage_mean = BTreeMap::new();
        stage_mean.insert(STAGE_PUSHDOWN.to_string(), 100e-6);
        let input = EdgeCostInput {
            stage_mean,
            ..EdgeCostInput::default()
        };
        let report = CostModel::default().score_edge("S", ExecChoice::Pushdown, &input);
        let direct = report
            .candidates
            .iter()
            .find(|c| c.choice == ExecChoice::Direct)
            .unwrap();
        assert!(!direct.measured);
        assert!((direct.per_activation - 200e-6).abs() < 1e-9);
    }

    #[test]
    fn retries_scale_cost() {
        let mut input = measured_direct();
        input.retry_rate = 1.0; // one retry per activation → double the work
        let report = CostModel::default().score_edge("S", ExecChoice::Direct, &input);
        let direct = report.cost_of(ExecChoice::Direct).unwrap();
        assert!((direct - 2.0 * 560e-6).abs() < 1e-9, "direct {direct}");
    }

    #[test]
    fn coalesce_suggestion_is_monotone_and_clamped() {
        let m = CostModel::default();
        assert_eq!(m.suggest_coalesce(0.0), 1);
        assert_eq!(m.suggest_coalesce(499.0), 1);
        let mut last = 1;
        for rate in [500.0, 1_000.0, 5_000.0, 100_000.0] {
            let s = m.suggest_coalesce(rate);
            assert!(s >= last, "suggestion must not shrink as rate grows");
            assert!((1..=64).contains(&s));
            last = s;
        }
        assert_eq!(m.suggest_coalesce(1e9), 64);
        assert_eq!(m.suggest_sync_batch(0.0), 1);
        assert!(m.suggest_sync_batch(1e9) == 64);
    }

    #[test]
    fn explain_scores_every_edge_of_fig6() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let reports = explain(&dxg, &StaticCosts::default()).unwrap();
        assert_eq!(reports.len(), 3, "C, P, S edges");
        for (report, plan) in &reports {
            assert_eq!(report.candidates.len(), 2);
            // With defaults (write ≈ read), pushdown's single round trip
            // wins every edge on paper.
            assert_eq!(report.best().unwrap().choice, ExecChoice::Pushdown);
            let (naive, consolidated) = CostModel::default().consolidation(plan);
            assert!(consolidated <= naive);
        }
    }
}
