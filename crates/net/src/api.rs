//! The transport-independent exchange API.
//!
//! Integrators and reconcilers are written against [`ExchangeApi`] and do
//! not know whether the exchange lives in-process ([`crate::loopback`]) or
//! across a network ([`crate::client`]). This is the seam that lets the
//! benchmarks swap deployments without touching composition logic.

use crate::proto::{ProfileSpec, QuerySpec};
use knactor_logstore::LogRecord;
use knactor_store::udf::UdfAssignment;
use knactor_store::{BatchOp, ItemResult, PutItem, StoredObject, TxOp, UdfBinding, WatchEvent};
use knactor_types::{ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use std::future::Future;
use std::pin::Pin;
use tokio::sync::mpsc;

/// Boxed future alias so the trait stays object-safe.
pub type BoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + Send + 'a>>;

/// Stream of object watch events.
pub type WatchRx = mpsc::UnboundedReceiver<WatchEvent>;

/// Stream of tailed log events ([`knactor_logstore::TailEvent`]): records
/// plus typed `Lagged` resume points when retention outran the tailer.
pub type TailRx = knactor_logstore::TailRx;

/// Everything a client can do against a data exchange (Object + Log).
pub trait ExchangeApi: Send + Sync {
    // ---- object exchange ---------------------------------------------------
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>>;
    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>>;
    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>>;
    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>>;
    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>>;
    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>>;
    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>>;

    // ---- batched object ops --------------------------------------------------
    // Default bodies fall back to looping the single ops, so every
    // implementation keeps the same per-item semantics; real transports
    // override these to collapse N items into one round-trip (and, server
    // side, one WAL group fsync).

    /// Read many keys; one [`ItemResult`] per key, in request order.
    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            let mut items = Vec::with_capacity(keys.len());
            for key in keys {
                items.push(ItemResult::from_object(self.get(store.clone(), key).await));
            }
            Ok(items)
        })
    }

    /// Batched merge-writes (patch/upsert per item).
    fn batch_put(
        &self,
        store: StoreId,
        items: Vec<PutItem>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        self.batch_commit(store, items.into_iter().map(BatchOp::from).collect())
    }

    /// Batched mutations with per-item OCC and per-item outcomes.
    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            let mut items = Vec::with_capacity(ops.len());
            for op in ops {
                let result = match op {
                    BatchOp::Create { key, value } => self.create(store.clone(), key, value).await,
                    BatchOp::Update {
                        key,
                        value,
                        expected,
                    } => self.update(store.clone(), key, value, expected).await,
                    BatchOp::Patch { key, patch, upsert } => {
                        self.patch(store.clone(), key, patch, upsert).await
                    }
                    BatchOp::Delete { key } => self.delete(store.clone(), key).await,
                };
                items.push(ItemResult::from_revision(result));
            }
            Ok(items)
        })
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>>;
    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>>;
    /// Watch events with revision greater than `from`.
    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>>;
    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>>;
    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>>;
    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>>;
    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>>;
    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>>;
    /// Apply a set of patches across stores atomically: either every
    /// precondition holds and every write commits, or nothing does.
    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>>;

    // ---- log exchange --------------------------------------------------------
    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>>;
    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>>;
    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>>;
    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>>;
    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>>;
    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>>;

    // ---- observability -------------------------------------------------------
    /// Scrape the exchange's metrics registry. Default-bodied so existing
    /// implementations keep compiling; transports that can reach a
    /// registry (TCP, loopback, fault decorators) override it.
    fn metrics(&self) -> BoxFuture<'_, Result<knactor_types::metrics::MetricsSnapshot>> {
        Box::pin(async {
            Err(knactor_types::Error::Transport(
                "metrics not supported by this transport".to_string(),
            ))
        })
    }
}
