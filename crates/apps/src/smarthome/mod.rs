//! The smart-home application (the paper's second case study, Fig. 4).
//!
//! Three services from three vendors: **House** (the automation hub,
//! IoT company X), **Motion** (occupancy sensor, vendor Z), and **Lamp**
//! (smart light, vendor Y). The app adjusts the lamp's brightness from
//! occupancy while tracking the devices' energy consumption.
//!
//! * [`pubsub_app`] — the §2 baseline: composition through broker topics
//!   and vendor schemas, with the logic living inside House's code.
//! * [`knactor_app`] — the Fig. 4 version: each device gets an Object
//!   store (configuration state) and a Log store (sensor telemetry),
//!   composed by one Cast (brightness policy) and two Syncs (telemetry
//!   rename + energy rollup).

pub mod knactor_app;
pub mod pubsub_app;

/// Energy a lamp draws per activation tick at a given brightness.
pub fn lamp_kwh(brightness: f64) -> f64 {
    brightness * 0.05
}

#[cfg(test)]
mod tests {
    #[test]
    fn lamp_energy_scales_with_brightness() {
        assert_eq!(super::lamp_kwh(0.0), 0.0);
        assert!(super::lamp_kwh(8.0) > super::lamp_kwh(2.0));
    }
}
