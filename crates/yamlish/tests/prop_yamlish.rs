//! Property tests: serialize ∘ parse is the identity on the supported
//! subset, and the parser never panics on arbitrary input.

use knactor_yamlish::{parse, to_string, Node};
use proptest::prelude::*;

/// Strings the serializer supports in scalar position (no control chars
/// other than newline; newline triggers literal blocks which are only
/// supported in mapping-value position, so keep leaves single-line here
/// and test multi-line separately in the unit tests).
fn leaf_string() -> impl Strategy<Value = String> {
    "[ -~]{0,20}".prop_filter("no lone quotes handled via quoting anyway", |_| true)
}

fn scalar_node() -> impl Strategy<Value = Node> {
    prop_oneof![
        Just(Node::scalar(serde_json::Value::Null)),
        any::<bool>().prop_map(Node::scalar),
        any::<i64>().prop_map(Node::scalar),
        (-1e9f64..1e9f64).prop_map(|f| {
            // Round-trip through the printed form so equality is textual.
            let printed: f64 = format!("{f}").parse().unwrap();
            Node::scalar(printed)
        }),
        leaf_string().prop_map(Node::scalar),
    ]
}

fn key() -> impl Strategy<Value = String> {
    // Includes dotted keys like `C.order` used by DXG specs.
    "[a-zA-Z][a-zA-Z0-9_.]{0,12}"
}

fn annotated(node: Node, ann: Option<String>) -> Node {
    match ann {
        Some(a) => node.with_annotation(a),
        None => node,
    }
}

fn doc_node() -> impl Strategy<Value = Node> {
    let leaf =
        (scalar_node(), proptest::option::of("[a-z]{1,8}")).prop_map(|(n, a)| annotated(n, a));
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Node::seq),
            (proptest::collection::vec((key(), inner), 1..4)).prop_map(|entries| {
                // Deduplicate keys; the parser rejects duplicates.
                let mut seen = std::collections::HashSet::new();
                let entries: Vec<_> = entries
                    .into_iter()
                    .filter(|(k, _)| seen.insert(k.clone()))
                    .collect();
                Node::map(entries)
            }),
        ]
    })
}

proptest! {
    /// Documents built from the supported subset round-trip structurally.
    #[test]
    fn serialize_parse_roundtrip(doc in doc_node()) {
        // Root must be a collection or scalar; all are supported.
        let text = to_string(&doc);
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert!(
            parsed.structurally_eq(&doc),
            "mismatch\n--- text ---\n{}\n--- parsed ---\n{:?}\n--- original ---\n{:?}",
            text, parsed, doc
        );
    }

    /// The parser returns Ok or Err but never panics, whatever the input.
    #[test]
    fn parser_total_on_arbitrary_input(input in "[ -~\n\t]{0,200}") {
        let _ = parse(&input);
    }

    /// to_json is stable under round-trip for annotation-free docs.
    #[test]
    fn json_projection_stable(doc in doc_node()) {
        let text = to_string(&doc);
        if let Ok(parsed) = parse(&text) {
            prop_assert_eq!(parsed.to_json(), doc.to_json());
        }
    }
}
