//! The dynamic state model.
//!
//! Externalized service state is structured, schema-described data. We use
//! `serde_json::Value` as the concrete representation (the paper's
//! prototype exchanged JSON-shaped API objects through the Kubernetes
//! apiserver) and add the path-based accessors that data stores, the DXG
//! evaluator, and the integrators need.

use crate::error::{Error, Result};
use crate::path::{FieldPath, Segment};

/// The dynamic value type for all externalized state.
pub type Value = serde_json::Value;

/// Read the value at `path`, if present.
///
/// ```
/// use knactor_types::{value, FieldPath};
/// let v = serde_json::json!({"order": {"items": [{"name": "mug"}]}});
/// let p = FieldPath::parse("order.items[0].name").unwrap();
/// assert_eq!(value::get_path(&v, &p), Some(&serde_json::json!("mug")));
/// ```
pub fn get_path<'v>(value: &'v Value, path: &FieldPath) -> Option<&'v Value> {
    let mut cur = value;
    for seg in &path.segments {
        match seg {
            Segment::Field(name) => cur = cur.as_object()?.get(name)?,
            Segment::Index(idx) => cur = cur.as_array()?.get(*idx)?,
        }
    }
    Some(cur)
}

/// Write `new` at `path`, creating intermediate objects as needed.
///
/// Intermediate *arrays* are not created implicitly: writing through a
/// missing index is an error, because silently materializing
/// `[null, null, x]` hides bugs in exchange specs.
pub fn set_path(value: &mut Value, path: &FieldPath, new: Value) -> Result<()> {
    if path.is_root() {
        *value = new;
        return Ok(());
    }
    let mut cur = value;
    let (last, init) = path.segments.split_last().expect("non-root path");
    for seg in init {
        match seg {
            Segment::Field(name) => {
                if !cur.is_object() {
                    if cur.is_null() {
                        *cur = Value::Object(serde_json::Map::new());
                    } else {
                        return Err(Error::BadPath(format!(
                            "cannot descend into non-object at '{name}' (path {path})"
                        )));
                    }
                }
                let obj = cur.as_object_mut().expect("object checked above");
                cur = obj
                    .entry(name.clone())
                    .or_insert(Value::Object(serde_json::Map::new()));
            }
            Segment::Index(idx) => {
                let arr = cur.as_array_mut().ok_or_else(|| {
                    Error::BadPath(format!("cannot index non-array at [{idx}] (path {path})"))
                })?;
                cur = arr.get_mut(*idx).ok_or_else(|| {
                    Error::BadPath(format!("index {idx} out of bounds (path {path})"))
                })?;
            }
        }
    }
    match last {
        Segment::Field(name) => {
            if !cur.is_object() {
                if cur.is_null() {
                    *cur = Value::Object(serde_json::Map::new());
                } else {
                    return Err(Error::BadPath(format!(
                        "cannot set field '{name}' on non-object (path {path})"
                    )));
                }
            }
            cur.as_object_mut()
                .expect("object checked above")
                .insert(name.clone(), new);
        }
        Segment::Index(idx) => {
            let arr = cur.as_array_mut().ok_or_else(|| {
                Error::BadPath(format!("cannot index non-array at [{idx}] (path {path})"))
            })?;
            if *idx == arr.len() {
                arr.push(new);
            } else {
                *arr.get_mut(*idx).ok_or_else(|| {
                    Error::BadPath(format!("index {idx} out of bounds (path {path})"))
                })? = new;
            }
        }
    }
    Ok(())
}

/// Remove and return the value at `path`. `Ok(None)` if absent.
pub fn remove_path(value: &mut Value, path: &FieldPath) -> Result<Option<Value>> {
    if path.is_root() {
        return Ok(Some(std::mem::replace(value, Value::Null)));
    }
    let (last, init) = path.segments.split_last().expect("non-root path");
    let parent_path = FieldPath {
        segments: init.to_vec(),
    };
    let Some(parent) = get_path_mut(value, &parent_path) else {
        return Ok(None);
    };
    match last {
        Segment::Field(name) => Ok(parent.as_object_mut().and_then(|o| o.remove(name))),
        Segment::Index(idx) => {
            let Some(arr) = parent.as_array_mut() else {
                return Ok(None);
            };
            if *idx < arr.len() {
                Ok(Some(arr.remove(*idx)))
            } else {
                Ok(None)
            }
        }
    }
}

/// Mutable counterpart of [`get_path`].
pub fn get_path_mut<'v>(value: &'v mut Value, path: &FieldPath) -> Option<&'v mut Value> {
    let mut cur = value;
    for seg in &path.segments {
        match seg {
            Segment::Field(name) => cur = cur.as_object_mut()?.get_mut(name)?,
            Segment::Index(idx) => cur = cur.as_array_mut()?.get_mut(*idx)?,
        }
    }
    Some(cur)
}

/// Deep-merge `patch` into `base` (object fields recursively; everything
/// else, including arrays, replaces). This mirrors Kubernetes strategic
/// merge semantics closely enough for reconciler-style partial updates.
pub fn merge(base: &mut Value, patch: &Value) {
    match (base, patch) {
        (Value::Object(b), Value::Object(p)) => {
            for (k, v) in p {
                match b.get_mut(k) {
                    Some(slot) if slot.is_object() && v.is_object() => merge(slot, v),
                    _ => {
                        b.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        (b, p) => *b = p.clone(),
    }
}

/// Human-readable type name, used in schema-violation messages.
pub fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// List every leaf path (non-object, non-array terminal) in a value.
///
/// The DXG static analyzer uses this to compute which declared fields a
/// spec never reads or writes ("unused state detection", §5).
pub fn leaf_paths(value: &Value) -> Vec<FieldPath> {
    let mut out = Vec::new();
    walk(value, FieldPath::root(), &mut out);
    out
}

fn walk(v: &Value, at: FieldPath, out: &mut Vec<FieldPath>) {
    match v {
        Value::Object(map) if !map.is_empty() => {
            for (k, child) in map {
                walk(child, at.child(k.clone()), out);
            }
        }
        Value::Array(items) if !items.is_empty() => {
            for (i, child) in items.iter().enumerate() {
                walk(child, at.index(i), out);
            }
        }
        _ => out.push(at),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn p(s: &str) -> FieldPath {
        FieldPath::parse(s).unwrap()
    }

    #[test]
    fn get_nested() {
        let v = json!({"a": {"b": [1, 2, {"c": true}]}});
        assert_eq!(get_path(&v, &p("a.b[2].c")), Some(&json!(true)));
        assert_eq!(get_path(&v, &p("a.b[9]")), None);
        assert_eq!(get_path(&v, &p("a.x")), None);
        assert_eq!(get_path(&v, &p("")), Some(&v));
    }

    #[test]
    fn set_creates_intermediate_objects() {
        let mut v = json!({});
        set_path(&mut v, &p("order.address.city"), json!("Irvine")).unwrap();
        assert_eq!(v, json!({"order": {"address": {"city": "Irvine"}}}));
    }

    #[test]
    fn set_overwrites_scalar() {
        let mut v = json!({"x": 1});
        set_path(&mut v, &p("x"), json!(2)).unwrap();
        assert_eq!(v, json!({"x": 2}));
    }

    #[test]
    fn set_into_null_materializes_object() {
        let mut v = json!({"x": null});
        set_path(&mut v, &p("x.y"), json!(5)).unwrap();
        assert_eq!(v, json!({"x": {"y": 5}}));
    }

    #[test]
    fn set_through_scalar_fails() {
        let mut v = json!({"x": 3});
        assert!(set_path(&mut v, &p("x.y"), json!(5)).is_err());
    }

    #[test]
    fn set_array_element_and_append() {
        let mut v = json!({"xs": [1, 2]});
        set_path(&mut v, &p("xs[0]"), json!(9)).unwrap();
        assert_eq!(v, json!({"xs": [9, 2]}));
        // Index == len appends.
        set_path(&mut v, &p("xs[2]"), json!(3)).unwrap();
        assert_eq!(v, json!({"xs": [9, 2, 3]}));
        // Beyond len fails; no implicit null padding.
        assert!(set_path(&mut v, &p("xs[7]"), json!(0)).is_err());
    }

    #[test]
    fn set_root_replaces() {
        let mut v = json!({"a": 1});
        set_path(&mut v, &FieldPath::root(), json!(42)).unwrap();
        assert_eq!(v, json!(42));
    }

    #[test]
    fn remove_field_and_missing() {
        let mut v = json!({"a": {"b": 1, "c": 2}});
        assert_eq!(remove_path(&mut v, &p("a.b")).unwrap(), Some(json!(1)));
        assert_eq!(v, json!({"a": {"c": 2}}));
        assert_eq!(remove_path(&mut v, &p("a.zzz")).unwrap(), None);
        assert_eq!(remove_path(&mut v, &p("nope.deep")).unwrap(), None);
    }

    #[test]
    fn remove_array_element() {
        let mut v = json!({"xs": [1, 2, 3]});
        assert_eq!(remove_path(&mut v, &p("xs[1]")).unwrap(), Some(json!(2)));
        assert_eq!(v, json!({"xs": [1, 3]}));
    }

    #[test]
    fn merge_recurses_objects_replaces_arrays() {
        let mut base = json!({"a": {"x": 1, "y": 2}, "arr": [1, 2, 3], "keep": true});
        merge(&mut base, &json!({"a": {"y": 20, "z": 30}, "arr": [9]}));
        assert_eq!(
            base,
            json!({"a": {"x": 1, "y": 20, "z": 30}, "arr": [9], "keep": true})
        );
    }

    #[test]
    fn merge_scalar_replaces() {
        let mut base = json!({"a": 1});
        merge(&mut base, &json!("now a string"));
        assert_eq!(base, json!("now a string"));
    }

    #[test]
    fn leaf_paths_enumerates_terminals() {
        let v = json!({"a": {"b": 1}, "xs": [true, {"c": null}], "empty": {}});
        let mut got: Vec<String> = leaf_paths(&v).iter().map(|p| p.to_string()).collect();
        got.sort();
        assert_eq!(got, vec!["a.b", "empty", "xs[0]", "xs[1].c"]);
    }

    #[test]
    fn type_names() {
        assert_eq!(type_name(&json!(null)), "null");
        assert_eq!(type_name(&json!(1.5)), "number");
        assert_eq!(type_name(&json!([])), "array");
    }
}
