//! Append-only log stores and the exchange hosting them.
//!
//! Storage layout (see [`crate::segment`]): one mutable row-oriented
//! *active* segment plus a list of immutable *sealed* segments behind
//! `Arc`s. Appends only touch the active segment; readers snapshot the
//! sealed `Arc`s under the lock and materialize outside it; sealed
//! segments are re-encoded columnar off the lock and compacted in the
//! background ([`crate::compact`]).
//!
//! Tailing is pull-based: a [`TailRx`] holds a cursor into the store and
//! pulls bounded chunks on demand, waking on a watch channel when new
//! records land. A slow tailer therefore buffers at most one chunk — if
//! retention truncates records it never pulled, it gets a typed
//! [`TailEvent::Lagged`] resume point instead of silently unbounded
//! memory.

use crate::compact::CompactionPolicy;
use crate::segment::SealedSegment;
use knactor_types::metrics::{self, Counter, Gauge};
use knactor_types::{Error, Result, StoreId, Value};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Weak};
use tokio::sync::{mpsc, watch};

/// One ingested record: a sequence number and a structured payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Per-store, strictly monotone, starting at 1.
    pub seq: u64,
    /// Arbitrary structured data (schema-on-read).
    pub fields: Value,
}

/// Tuning knobs for one store.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Records per segment before the active segment seals.
    pub segment_capacity: usize,
    /// Re-encode sealed segments into columnar form (off the lock).
    /// `false` keeps everything row-oriented — the seed layout, kept as a
    /// baseline for benchmarks and parity tests.
    pub columnar: bool,
    /// Merge runs of small sealed segments in the background.
    pub compaction: Option<CompactionPolicy>,
    /// Max records a tail pull materializes at once (bounds per-tailer
    /// memory).
    pub tail_chunk: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_capacity: 1024,
            columnar: true,
            compaction: None,
            tail_chunk: 256,
        }
    }
}

/// An append-only log store with tailing.
pub struct LogStore {
    id: StoreId,
    config: LogConfig,
    inner: Mutex<LogInner>,
    /// Self-handle so `&self` methods can hand out owned references
    /// (tail receivers, background compaction tasks).
    self_ref: Weak<LogStore>,
    /// Last assigned seq, published after every append — tailers park on
    /// this instead of owning per-tailer channels.
    append_watch: watch::Sender<u64>,
    /// Serializes background compaction (at most one task per store).
    compacting: AtomicBool,
    metrics: StoreMetrics,
}

/// Per-store instruments, registered once at construction so hot paths
/// only bump atomics.
struct StoreMetrics {
    /// `knactor_log_appends_total{store}`
    appends: Arc<Counter>,
    /// `knactor_log_tail_lagged_total{store}` — records truncated before
    /// a tailer pulled them.
    tail_lagged: Arc<Counter>,
    /// `knactor_log_compactions_total{store}`
    compactions: Arc<Counter>,
    /// `knactor_log_segments{store,kind}` for kind ∈ active|rows|columnar
    seg_active: Arc<Gauge>,
    seg_rows: Arc<Gauge>,
    seg_columnar: Arc<Gauge>,
    /// `knactor_log_retained_bytes{store}` (sealed payloads, approx)
    retained_bytes: Arc<Gauge>,
    /// `knactor_log_bytes_per_record{store}` (sealed payloads, approx)
    bytes_per_record: Arc<Gauge>,
}

#[derive(Default)]
struct LogInner {
    active: Vec<LogRecord>,
    sealed: Vec<Arc<SealedSegment>>,
    next_seq: u64,
    /// Maximum records retained (oldest sealed segments truncate first);
    /// `None` = unbounded.
    retain_max: Option<usize>,
    total: usize,
}

impl LogInner {
    /// First retained seq; `next_seq` when nothing is retained (i.e. the
    /// next record to arrive will be the oldest).
    fn oldest_seq(&self) -> u64 {
        if let Some(s) = self.sealed.first() {
            return s.first_seq();
        }
        self.active.first().map(|r| r.seq).unwrap_or(self.next_seq)
    }
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LogStore")
            .field("id", &self.id)
            .field("records", &inner.total)
            .field("sealed", &inner.sealed.len())
            .finish()
    }
}

impl LogStore {
    pub fn new(id: impl Into<StoreId>) -> Arc<LogStore> {
        LogStore::with_config(id, LogConfig::default())
    }

    pub fn with_config(id: impl Into<StoreId>, config: LogConfig) -> Arc<LogStore> {
        let id = id.into();
        let store = id.to_string();
        let labels: &[(&str, &str)] = &[("store", &store)];
        let reg = metrics::global();
        let metrics = StoreMetrics {
            appends: reg.counter("knactor_log_appends_total", labels),
            tail_lagged: reg.counter("knactor_log_tail_lagged_total", labels),
            compactions: reg.counter("knactor_log_compactions_total", labels),
            seg_active: reg.gauge(
                "knactor_log_segments",
                &[("store", &store), ("kind", "active")],
            ),
            seg_rows: reg.gauge(
                "knactor_log_segments",
                &[("store", &store), ("kind", "rows")],
            ),
            seg_columnar: reg.gauge(
                "knactor_log_segments",
                &[("store", &store), ("kind", "columnar")],
            ),
            retained_bytes: reg.gauge("knactor_log_retained_bytes", labels),
            bytes_per_record: reg.gauge("knactor_log_bytes_per_record", labels),
        };
        let (append_watch, _) = watch::channel(0);
        Arc::new_cyclic(|weak| LogStore {
            id,
            config,
            inner: Mutex::new(LogInner {
                next_seq: 1,
                ..Default::default()
            }),
            self_ref: weak.clone(),
            append_watch,
            compacting: AtomicBool::new(false),
            metrics,
        })
    }

    pub fn id(&self) -> &StoreId {
        &self.id
    }

    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    fn strong(&self) -> Arc<LogStore> {
        self.self_ref
            .upgrade()
            .expect("LogStore is always constructed inside an Arc")
    }

    pub(crate) fn strong_opt(&self) -> Option<Arc<LogStore>> {
        self.self_ref.upgrade()
    }

    /// Bound retained records; excess oldest sealed segments are dropped
    /// on the next append. Tailers that already pulled those records are
    /// unaffected; tailers that had not yet pulled them observe a
    /// [`TailEvent::Lagged`] resume point.
    pub fn set_retention(&self, max_records: Option<usize>) {
        self.inner.lock().retain_max = max_records;
    }

    fn wrap(fields: Value) -> Value {
        // Non-object payloads are wrapped as `{"value": …}` so
        // schema-on-read field access always has an object to address.
        match fields {
            Value::Object(_) => fields,
            other => serde_json::json!({ "value": other }),
        }
    }

    /// Ingest one record.
    pub fn append(&self, fields: Value) -> u64 {
        let fields = Self::wrap(fields);
        let mut sealed_new = None;
        let seq;
        {
            let mut inner = self.inner.lock();
            seq = inner.next_seq;
            inner.next_seq += 1;
            inner.active.push(LogRecord { seq, fields });
            inner.total += 1;
            if inner.active.len() >= self.config.segment_capacity {
                sealed_new = self.seal_active_locked(&mut inner);
            }
            self.apply_retention_locked(&mut inner);
        }
        self.metrics.appends.inc();
        if let Some(seg) = sealed_new {
            self.after_seal(seg);
        }
        let _ = self.append_watch.send(seq);
        seq
    }

    /// Ingest a batch under one lock acquisition (retention runs once,
    /// after the whole batch); returns the sequence of the last record.
    pub fn append_batch(&self, batch: impl IntoIterator<Item = Value>) -> u64 {
        let mut sealed_new = Vec::new();
        let mut appended: u64 = 0;
        let last;
        {
            let mut inner = self.inner.lock();
            last = {
                let mut last = inner.next_seq.saturating_sub(1);
                for fields in batch {
                    let fields = Self::wrap(fields);
                    let seq = inner.next_seq;
                    inner.next_seq += 1;
                    inner.active.push(LogRecord { seq, fields });
                    inner.total += 1;
                    if inner.active.len() >= self.config.segment_capacity {
                        sealed_new.extend(self.seal_active_locked(&mut inner));
                    }
                    last = seq;
                    appended += 1;
                }
                last
            };
            self.apply_retention_locked(&mut inner);
        }
        self.metrics.appends.add(appended);
        for seg in sealed_new {
            self.after_seal(seg);
        }
        if appended > 0 {
            let _ = self.append_watch.send(last);
        }
        last
    }

    fn seal_active_locked(&self, inner: &mut LogInner) -> Option<Arc<SealedSegment>> {
        if inner.active.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut inner.active);
        let seg = Arc::new(SealedSegment::from_rows(records));
        inner.sealed.push(Arc::clone(&seg));
        self.update_gauges_locked(inner);
        Some(seg)
    }

    fn apply_retention_locked(&self, inner: &mut LogInner) {
        let Some(max) = inner.retain_max else { return };
        let mut changed = false;
        while inner.total > max && !inner.sealed.is_empty() {
            let dropped = inner.sealed.remove(0);
            inner.total -= dropped.len();
            changed = true;
        }
        if changed {
            self.update_gauges_locked(inner);
        }
    }

    /// Post-seal work done *off* the lock: columnar re-encode (spliced
    /// back via pointer identity, so a concurrent retention drop simply
    /// wins) and a background compaction kick.
    fn after_seal(&self, seg: Arc<SealedSegment>) {
        if self.config.columnar {
            if let Some(encoded) = seg.to_columnar() {
                self.replace_segment(&seg, Arc::new(encoded));
            }
        }
        crate::compact::maybe_spawn(self);
    }

    /// Swap `old` for `new` if `old` is still retained (pointer
    /// identity). Returns whether the swap happened.
    pub(crate) fn replace_segment(
        &self,
        old: &Arc<SealedSegment>,
        new: Arc<SealedSegment>,
    ) -> bool {
        let mut inner = self.inner.lock();
        match inner.sealed.iter().position(|s| Arc::ptr_eq(s, old)) {
            Some(pos) => {
                inner.sealed[pos] = new;
                self.update_gauges_locked(&inner);
                true
            }
            None => false,
        }
    }

    /// Replace the contiguous run `old` (still retained, still adjacent)
    /// with the single merged segment `new`. Returns whether the splice
    /// happened (a concurrent retention drop aborts it).
    pub(crate) fn replace_run(&self, old: &[Arc<SealedSegment>], new: Arc<SealedSegment>) -> bool {
        let mut inner = self.inner.lock();
        let Some(first) = old.first() else {
            return false;
        };
        let Some(pos) = inner.sealed.iter().position(|s| Arc::ptr_eq(s, first)) else {
            return false;
        };
        if pos + old.len() > inner.sealed.len() {
            return false;
        }
        for (i, o) in old.iter().enumerate() {
            if !Arc::ptr_eq(&inner.sealed[pos + i], o) {
                return false;
            }
        }
        inner.sealed.splice(pos..pos + old.len(), [new]);
        self.metrics.compactions.inc();
        self.update_gauges_locked(&inner);
        true
    }

    pub(crate) fn compacting_flag(&self) -> &AtomicBool {
        &self.compacting
    }

    /// Snapshot the sealed run for compaction candidate selection.
    pub(crate) fn sealed_snapshot(&self) -> Vec<Arc<SealedSegment>> {
        self.inner.lock().sealed.clone()
    }

    fn update_gauges_locked(&self, inner: &LogInner) {
        let (mut rows, mut columnar, mut bytes, mut records) = (0i64, 0i64, 0usize, 0usize);
        for s in &inner.sealed {
            if s.is_columnar() {
                columnar += 1;
            } else {
                rows += 1;
            }
            bytes += s.bytes();
            records += s.len();
        }
        self.metrics
            .seg_active
            .set(i64::from(!inner.active.is_empty()));
        self.metrics.seg_rows.set(rows);
        self.metrics.seg_columnar.set(columnar);
        self.metrics.retained_bytes.set(bytes as i64);
        self.metrics
            .bytes_per_record
            .set(bytes.checked_div(records).unwrap_or(0) as i64);
    }

    /// All retained records with `seq > from`, in order. Sealed segments
    /// are snapshotted by `Arc` under the lock and materialized outside
    /// it, so big scans no longer stall appenders.
    pub fn read_from(&self, from: u64) -> Vec<LogRecord> {
        let (sealed, active) = {
            let inner = self.inner.lock();
            (
                inner
                    .sealed
                    .iter()
                    .filter(|s| s.last_seq() > from)
                    .cloned()
                    .collect::<Vec<_>>(),
                inner
                    .active
                    .iter()
                    .filter(|r| r.seq > from)
                    .cloned()
                    .collect::<Vec<_>>(),
            )
        };
        let mut out = Vec::new();
        for s in &sealed {
            out.extend(s.records_from(from));
        }
        out.extend(active);
        out
    }

    /// Everything retained.
    pub fn read_all(&self) -> Vec<LogRecord> {
        self.read_from(0)
    }

    /// Snapshot for query execution: sealed segments by `Arc` plus a
    /// clone of the (small, capacity-bounded) active tail.
    pub fn snapshot(&self) -> (Vec<Arc<SealedSegment>>, Vec<LogRecord>) {
        let inner = self.inner.lock();
        (inner.sealed.clone(), inner.active.clone())
    }

    /// The sequence number of the most recent record (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// First retained sequence number (`last_seq + 1` when empty).
    pub fn oldest_seq(&self) -> u64 {
        self.inner.lock().oldest_seq()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().total
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed segments `(total, columnar)` — observability and
    /// test hook.
    pub fn segment_counts(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        let columnar = inner.sealed.iter().filter(|s| s.is_columnar()).count();
        (inner.sealed.len(), columnar)
    }

    /// Approximate retained payload bytes across sealed segments.
    pub fn retained_bytes(&self) -> usize {
        self.inner.lock().sealed.iter().map(|s| s.bytes()).sum()
    }

    /// Bounded chunk for tail pulls: up to `max` records with
    /// `seq > cursor`, plus the current oldest retained seq (for lag
    /// detection). Sealed `Arc`s are materialized outside the lock.
    fn tail_pull(&self, cursor: u64, max: usize) -> (u64, Vec<LogRecord>) {
        let (oldest, sealed, active) = {
            let inner = self.inner.lock();
            let oldest = inner.oldest_seq();
            let mut need = max as u64;
            let mut sealed = Vec::new();
            for s in &inner.sealed {
                if s.last_seq() <= cursor {
                    continue;
                }
                if need == 0 {
                    break;
                }
                sealed.push(Arc::clone(s));
                let from = cursor.max(s.first_seq().saturating_sub(1));
                need = need.saturating_sub(s.last_seq() - from);
            }
            let active: Vec<LogRecord> = if need > 0 {
                inner
                    .active
                    .iter()
                    .filter(|r| r.seq > cursor)
                    .take(need as usize)
                    .cloned()
                    .collect()
            } else {
                Vec::new()
            };
            (oldest, sealed, active)
        };
        let mut out = Vec::new();
        for s in &sealed {
            out.extend(s.records_from(cursor));
            if out.len() >= max {
                out.truncate(max);
                return (oldest, out);
            }
        }
        out.extend(active);
        out.truncate(max);
        (oldest, out)
    }

    /// Live subscription: replays retained records with `seq > from`,
    /// then continues with new appends, in order.
    ///
    /// If `from` is already older than the retention window, replay
    /// starts at the oldest retained record without comment (logs
    /// tolerate holes by design — sensor telemetry is lossy). If records
    /// are truncated *after* the subscription started but before the
    /// tailer pulled them, the tailer gets a [`TailEvent::Lagged`] with
    /// the count and the next available seq, and
    /// `knactor_log_tail_lagged_total` counts the loss.
    pub fn tail(&self, from: u64) -> TailRx {
        TailRx(TailRxInner::Store(StoreTail {
            watch: self.append_watch.subscribe(),
            store: self.strong(),
            cursor: from,
            started: false,
            buf: VecDeque::new(),
        }))
    }
}

/// One event from a log tail.
#[derive(Debug, Clone, PartialEq)]
pub enum TailEvent {
    Record(LogRecord),
    /// Records in `(cursor, resume_from)` were truncated by retention
    /// before this tailer pulled them; the stream resumes at
    /// `resume_from`.
    Lagged {
        missed: u64,
        resume_from: u64,
    },
}

/// Receiver side of a log tail.
///
/// Store-backed tails (in-process) are *pull-based*: they hold a cursor
/// and materialize bounded chunks on demand, so a slow consumer costs
/// O(chunk) memory instead of an unbounded queue. Channel-backed tails
/// adapt remote streams (the TCP client demux) to the same interface.
pub struct TailRx(TailRxInner);

enum TailRxInner {
    Store(StoreTail),
    Channel(mpsc::UnboundedReceiver<TailEvent>),
}

struct StoreTail {
    store: Arc<LogStore>,
    /// Last seq already delivered (records `> cursor` are pending).
    cursor: u64,
    /// Whether anything was pulled yet — the *initial* jump to the
    /// retention horizon is the documented replay semantics, not lag.
    started: bool,
    buf: VecDeque<TailEvent>,
    watch: watch::Receiver<u64>,
}

impl StoreTail {
    fn pull(&mut self) {
        let chunk = self.store.config.tail_chunk.max(1);
        let (oldest, records) = self.store.tail_pull(self.cursor, chunk);
        if oldest > self.cursor + 1 {
            let missed = oldest - 1 - self.cursor;
            if self.started {
                self.store.metrics.tail_lagged.add(missed);
                self.buf.push_back(TailEvent::Lagged {
                    missed,
                    resume_from: oldest,
                });
            }
            self.cursor = oldest - 1;
        }
        self.started = true;
        for r in records {
            self.cursor = self.cursor.max(r.seq);
            self.buf.push_back(TailEvent::Record(r));
        }
    }
}

impl std::fmt::Debug for TailRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            TailRxInner::Store(t) => f
                .debug_struct("TailRx")
                .field("store", t.store.id())
                .field("cursor", &t.cursor)
                .finish(),
            TailRxInner::Channel(_) => f.write_str("TailRx(channel)"),
        }
    }
}

impl TailRx {
    /// Adapt a channel of tail events (remote streams) to the tail
    /// interface.
    pub fn from_channel(rx: mpsc::UnboundedReceiver<TailEvent>) -> TailRx {
        TailRx(TailRxInner::Channel(rx))
    }

    /// Next event; `None` when the stream is closed (remote tails only —
    /// a store-backed tail lives as long as its receiver).
    pub async fn recv(&mut self) -> Option<TailEvent> {
        match &mut self.0 {
            TailRxInner::Channel(rx) => rx.recv().await,
            TailRxInner::Store(t) => loop {
                if let Some(ev) = t.buf.pop_front() {
                    return Some(ev);
                }
                t.pull();
                if !t.buf.is_empty() {
                    continue;
                }
                if t.watch.changed().await.is_err() {
                    t.pull();
                    if t.buf.is_empty() {
                        return None;
                    }
                }
            },
        }
    }

    /// Non-blocking variant.
    pub fn try_recv(&mut self) -> std::result::Result<TailEvent, mpsc::error::TryRecvError> {
        match &mut self.0 {
            TailRxInner::Channel(rx) => rx.try_recv(),
            TailRxInner::Store(t) => {
                if let Some(ev) = t.buf.pop_front() {
                    return Ok(ev);
                }
                t.pull();
                t.buf.pop_front().ok_or(mpsc::error::TryRecvError::Empty)
            }
        }
    }

    /// Next record, skipping lag notices — for callers that only need
    /// the data stream.
    pub async fn recv_record(&mut self) -> Option<LogRecord> {
        loop {
            match self.recv().await? {
                TailEvent::Record(r) => return Some(r),
                TailEvent::Lagged { .. } => continue,
            }
        }
    }
}

/// Hosts many log stores (the Log DE of Fig. 4). Access control follows
/// the same model as the Object exchange; verbs map as ingest→`create`,
/// read/query/tail→`get`.
pub struct LogExchange {
    stores: RwLock<BTreeMap<StoreId, Arc<LogStore>>>,
    access: Arc<RwLock<knactor_rbac_shim::AccessShim>>,
}

/// Minimal indirection so the logstore crate does not depend on the rbac
/// crate directly (it is below it in the dependency order used by the
/// net layer); enforcement semantics are injected by the embedder.
mod knactor_rbac_shim {
    use knactor_types::StoreId;

    /// Injected permission oracle: `(subject, verb, store) -> allowed`.
    pub type CheckFn = Box<dyn Fn(&str, &str, &StoreId) -> bool + Send + Sync>;

    #[derive(Default)]
    pub struct AccessShim {
        check: Option<CheckFn>,
    }

    impl AccessShim {
        pub fn allows(&self, subject: &str, verb: &str, store: &StoreId) -> bool {
            match &self.check {
                Some(f) => f(subject, verb, store),
                None => true,
            }
        }

        pub fn set(&mut self, f: CheckFn) {
            self.check = Some(f);
        }
    }
}

impl Default for LogExchange {
    fn default() -> Self {
        LogExchange::new()
    }
}

impl LogExchange {
    pub fn new() -> LogExchange {
        LogExchange {
            stores: RwLock::new(BTreeMap::new()),
            access: Arc::new(RwLock::new(Default::default())),
        }
    }

    /// Install a permission oracle (wired to `knactor-rbac` by the
    /// embedding exchange server).
    pub fn set_access_check(
        &self,
        f: impl Fn(&str, &str, &StoreId) -> bool + Send + Sync + 'static,
    ) {
        self.access.write().set(Box::new(f));
    }

    pub fn create_store(&self, id: impl Into<StoreId>) -> Result<Arc<LogStore>> {
        self.create_store_with(id, LogConfig::default())
    }

    pub fn create_store_with(
        &self,
        id: impl Into<StoreId>,
        config: LogConfig,
    ) -> Result<Arc<LogStore>> {
        let id = id.into();
        let mut stores = self.stores.write();
        if stores.contains_key(&id) {
            return Err(Error::AlreadyExists(format!("log store {id}")));
        }
        let store = LogStore::with_config(id.clone(), config);
        stores.insert(id, Arc::clone(&store));
        Ok(store)
    }

    pub fn store(&self, id: &StoreId) -> Result<Arc<LogStore>> {
        self.stores
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("log store {id}")))
    }

    pub fn store_ids(&self) -> Vec<StoreId> {
        self.stores.read().keys().cloned().collect()
    }

    /// Ingest with access check.
    pub fn ingest(&self, subject: &str, id: &StoreId, fields: Value) -> Result<u64> {
        if !self.access.read().allows(subject, "create", id) {
            return Err(Error::Forbidden(format!(
                "{subject} may not ingest into {id}"
            )));
        }
        Ok(self.store(id)?.append(fields))
    }

    /// Ingest a batch with one access check (the check is per subject and
    /// store, not per record) and one store-lock acquisition.
    pub fn ingest_batch(&self, subject: &str, id: &StoreId, batch: Vec<Value>) -> Result<u64> {
        if !self.access.read().allows(subject, "create", id) {
            return Err(Error::Forbidden(format!(
                "{subject} may not ingest into {id}"
            )));
        }
        Ok(self.store(id)?.append_batch(batch))
    }

    /// Query with access check. Runs on the store's segment snapshot —
    /// columnar fast paths and per-segment parallelism included (see
    /// [`crate::query::Query::run_store`]).
    pub fn query(
        &self,
        subject: &str,
        id: &StoreId,
        query: &crate::query::Query,
    ) -> Result<Vec<Value>> {
        if !self.access.read().allows(subject, "get", id) {
            return Err(Error::Forbidden(format!("{subject} may not query {id}")));
        }
        {
            let store = self.store(id)?;
            query.run_store(&store)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn append_assigns_monotone_seqs() {
        let log = LogStore::new("motion/telemetry");
        assert_eq!(log.append(json!({"triggered": true})), 1);
        assert_eq!(log.append(json!({"triggered": false})), 2);
        assert_eq!(log.last_seq(), 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn non_object_payload_is_wrapped() {
        let log = LogStore::new("t");
        log.append(json!(42));
        assert_eq!(log.read_all()[0].fields, json!({"value": 42}));
    }

    #[test]
    fn read_from_filters_by_seq() {
        let log = LogStore::new("t");
        for i in 0..5 {
            log.append(json!({"i": i}));
        }
        let recs = log.read_from(3);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 4);
    }

    #[test]
    fn segment_rotation_preserves_order_and_encodes() {
        let log = LogStore::new("t");
        let cap = log.config().segment_capacity;
        let n = cap * 2 + 10;
        for i in 0..n {
            log.append(json!({"i": i, "kind": "telemetry"}));
        }
        let recs = log.read_all();
        assert_eq!(recs.len(), n);
        for (idx, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, idx as u64 + 1);
            assert_eq!(r.fields["i"], json!(idx));
        }
        // Sealed segments re-encoded columnar (default config).
        assert_eq!(log.segment_counts(), (2, 2));
    }

    #[test]
    fn row_mode_stays_row_oriented() {
        let log = LogStore::with_config(
            "t",
            LogConfig {
                segment_capacity: 8,
                columnar: false,
                ..Default::default()
            },
        );
        for i in 0..20 {
            log.append(json!({"i": i}));
        }
        assert_eq!(log.segment_counts(), (2, 0));
        assert_eq!(log.read_all().len(), 20);
    }

    #[test]
    fn retention_drops_oldest_segments() {
        let log = LogStore::new("t");
        let cap = log.config().segment_capacity;
        log.set_retention(Some(cap));
        for i in 0..(cap * 3) {
            log.append(json!({"i": i}));
        }
        assert!(log.len() <= cap * 2, "retention must bound growth");
        // Sequence numbers keep counting despite truncation.
        assert_eq!(log.last_seq(), (cap * 3) as u64);
        let first_retained = log.read_all()[0].seq;
        assert!(first_retained > 1);
        assert_eq!(log.oldest_seq(), first_retained);
    }

    #[tokio::test]
    async fn tail_replays_then_follows() {
        let log = LogStore::new("t");
        log.append(json!({"i": 0}));
        log.append(json!({"i": 1}));
        let mut rx = log.tail(1);
        // Replay of seq 2.
        assert_eq!(rx.recv_record().await.unwrap().seq, 2);
        // Live append.
        log.append(json!({"i": 2}));
        assert_eq!(rx.recv_record().await.unwrap().seq, 3);
    }

    #[tokio::test]
    async fn tail_crosses_sealed_segments() {
        let log = LogStore::with_config(
            "t",
            LogConfig {
                segment_capacity: 4,
                tail_chunk: 3,
                ..Default::default()
            },
        );
        for i in 0..10 {
            log.append(json!({"i": i}));
        }
        let mut rx = log.tail(0);
        for want in 1..=10u64 {
            assert_eq!(rx.recv_record().await.unwrap().seq, want);
        }
        log.append(json!({"i": 10}));
        assert_eq!(rx.recv_record().await.unwrap().seq, 11);
    }

    #[tokio::test]
    async fn slow_tailer_gets_typed_lag() {
        let log = LogStore::with_config(
            "t",
            LogConfig {
                segment_capacity: 4,
                ..Default::default()
            },
        );
        log.append(json!({"i": 0}));
        let mut rx = log.tail(0);
        // Pull the first record so the tail is "started".
        assert_eq!(rx.recv_record().await.unwrap().seq, 1);
        // Truncate everything the tailer hasn't pulled yet.
        log.set_retention(Some(4));
        for i in 1..20 {
            log.append(json!({"i": i}));
        }
        let oldest = log.oldest_seq();
        assert!(oldest > 2, "retention should have truncated");
        match rx.recv().await.unwrap() {
            TailEvent::Lagged {
                missed,
                resume_from,
            } => {
                assert_eq!(resume_from, oldest);
                assert_eq!(missed, oldest - 2);
            }
            other => panic!("expected lag notice, got {other:?}"),
        }
        // Stream resumes at the oldest retained record.
        assert_eq!(rx.recv_record().await.unwrap().seq, oldest);
        let lagged = knactor_types::metrics::global()
            .counter("knactor_log_tail_lagged_total", &[("store", "t")])
            .get();
        assert!(lagged >= oldest - 2);
    }

    #[tokio::test]
    async fn initial_horizon_jump_is_not_lag() {
        let log = LogStore::with_config(
            "t",
            LogConfig {
                segment_capacity: 2,
                ..Default::default()
            },
        );
        log.set_retention(Some(2));
        for i in 0..10 {
            log.append(json!({"i": i}));
        }
        // Subscribing from 0 when seq 1.. is truncated replays from the
        // horizon silently (documented semantics, not lag).
        let mut rx = log.tail(0);
        match rx.recv().await.unwrap() {
            TailEvent::Record(r) => assert_eq!(r.seq, log.oldest_seq()),
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn exchange_create_and_lookup() {
        let de = LogExchange::new();
        de.create_store("motion/telemetry").unwrap();
        assert!(de.create_store("motion/telemetry").is_err());
        assert!(de.store(&StoreId::new("motion/telemetry")).is_ok());
        assert!(de.store(&StoreId::new("nope")).is_err());
        assert_eq!(de.store_ids().len(), 1);
    }

    #[test]
    fn exchange_access_check_enforced() {
        let de = LogExchange::new();
        de.create_store("lamp/telemetry").unwrap();
        let id = StoreId::new("lamp/telemetry");
        // Open by default.
        de.ingest("anyone", &id, json!({"kwh": 0.2})).unwrap();
        // Install an oracle that only lets the lamp reconciler ingest.
        de.set_access_check(|subject, verb, store| {
            !(verb == "create"
                && store.as_str() == "lamp/telemetry"
                && subject != "reconciler:lamp")
        });
        assert!(de
            .ingest("reconciler:lamp", &id, json!({"kwh": 0.3}))
            .is_ok());
        assert!(matches!(
            de.ingest("integrator:sync", &id, json!({"kwh": 0.4})),
            Err(Error::Forbidden(_))
        ));
    }
}
