//! DXG pipeline costs and the §3.3 integrator ablations:
//!
//! * parse / analyze / plan the Fig. 6 spec
//! * expression evaluation
//! * one full Cast activation — Direct vs UDF pushdown, and consolidated
//!   (one patch per target) vs naive (one patch per assignment)

use criterion::{criterion_group, criterion_main, Criterion};
use knactor_apps::retail::sample_order;
use knactor_core::{Cast, CastBinding, CastConfig, CastMode};
use knactor_dxg::spec::FIG6_RETAIL_DXG;
use knactor_dxg::{Dxg, Plan};
use knactor_expr::{Env, FnRegistry};
use knactor_net::loopback::in_process;
use knactor_net::proto::ProfileSpec;
use knactor_net::ExchangeApi;
use knactor_rbac::Subject;
use knactor_types::{ObjectKey, StoreId};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;

fn rt() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap()
}

fn bench_spec_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("dxg_spec");
    group.bench_function("parse_fig6", |b| {
        b.iter(|| Dxg::parse(FIG6_RETAIL_DXG).unwrap());
    });
    let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
    group.bench_function("analyze_fig6", |b| {
        b.iter(|| knactor_dxg::analyze::analyze(&dxg));
    });
    group.bench_function("plan_fig6", |b| {
        b.iter(|| Plan::build(&dxg).unwrap());
    });
    group.finish();
}

fn bench_expr_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("expr_eval");
    let fns = FnRegistry::standard();
    let mut env = Env::new();
    env.bind("C", sample_order(1200.0));
    env.bind(
        "S",
        json!({"quote": {"price": 9.0, "currency": "USD"}, "id": "t"}),
    );
    env.bind("this", json!({"currency": "USD"}));

    for (name, src) in [
        ("member_chain", "C.order.totalCost"),
        (
            "conditional",
            r#""air" if C.order.cost > 1000 else "ground""#,
        ),
        ("comprehension", "[item.name for item in C.order.items]"),
        (
            "currency_convert",
            "currency_convert(S.quote.price, S.quote.currency, this.currency)",
        ),
    ] {
        let expr = knactor_expr::parse_expr(src).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| knactor_expr::eval(&expr, &env, &fns).unwrap());
        });
    }

    // Constant-folding ablation: the same policy with a computed
    // threshold, evaluated raw vs folded at compile time.
    let src = "C.order.cost > 500 * 2 and len(C.order.items) > 2 - 2";
    let raw = knactor_expr::parse_expr(src).unwrap();
    let folded = knactor_expr::fold_constants(&raw, &fns);
    group.bench_function("policy_unfolded", |b| {
        b.iter(|| knactor_expr::eval(&raw, &env, &fns).unwrap());
    });
    group.bench_function("policy_constant_folded", |b| {
        b.iter(|| knactor_expr::eval(&folded, &env, &fns).unwrap());
    });
    group.finish();
}

async fn activation_setup(mode: CastMode) -> (Arc<dyn ExchangeApi>, Cast, CastConfig) {
    let (_, _, client) = in_process(Subject::integrator("bench"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    for s in ["checkout/state", "shipping/state", "payment/state"] {
        api.create_store(StoreId::new(s), ProfileSpec::Instant)
            .await
            .unwrap();
    }
    api.create(
        StoreId::new("checkout/state"),
        ObjectKey::new("o"),
        sample_order(1200.0),
    )
    .await
    .unwrap();
    // Pre-fill the upstream results so every assignment is ready and an
    // activation exercises the full DXG.
    api.patch(
        StoreId::new("shipping/state"),
        ObjectKey::new("o"),
        json!({"id": "t", "quote": {"price": 9.0, "currency": "USD"}}),
        true,
    )
    .await
    .unwrap();
    api.patch(
        StoreId::new("payment/state"),
        ObjectKey::new("o"),
        json!({"id": "p"}),
        true,
    )
    .await
    .unwrap();
    let mut bindings = BTreeMap::new();
    bindings.insert("C".to_string(), CastBinding::correlated("checkout/state"));
    bindings.insert("S".to_string(), CastBinding::correlated("shipping/state"));
    bindings.insert("P".to_string(), CastBinding::correlated("payment/state"));
    let config = CastConfig {
        name: "bench".to_string(),
        dxg: Dxg::parse(FIG6_RETAIL_DXG).unwrap(),
        bindings,
        mode,
        coalesce: 1,
    };
    let cast = Cast::new(Arc::clone(&api));
    (api, cast, config)
}

fn bench_activation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cast_activation");
    let runtime = rt();

    let (_api, cast, config) = runtime.block_on(activation_setup(CastMode::Direct));
    let key = ObjectKey::new("o");
    group.bench_function("direct", |b| {
        b.to_async(&runtime)
            .iter(|| cast.activate_once(&config, &key));
    });

    let (_api2, cast2, config2) = runtime.block_on(activation_setup(CastMode::Pushdown {
        udf_name: "bench-dxg".to_string(),
    }));
    group.bench_function("pushdown_udf", |b| {
        b.to_async(&runtime)
            .iter(|| cast2.activate_once(&config2, &key));
    });

    group.finish();
}

/// Consolidation ablation: plan-driven (one patch per target) vs naive
/// (one exchange write per assignment).
fn bench_consolidation(c: &mut Criterion) {
    let mut group = c.benchmark_group("consolidation");
    let runtime = rt();
    let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
    let plan = Plan::build(&dxg).unwrap();
    assert!(plan.write_ops() < plan.assignment_count());

    let (api, cast, config) = runtime.block_on(activation_setup(CastMode::Direct));
    let key = ObjectKey::new("o");
    group.bench_function("consolidated_plan", |b| {
        b.to_async(&runtime)
            .iter(|| cast.activate_once(&config, &key));
    });

    // Naive: evaluate each assignment and issue an individual patch.
    let fns = FnRegistry::standard();
    group.bench_function("naive_per_assignment", |b| {
        b.to_async(&runtime).iter(|| {
            let api = Arc::clone(&api);
            let dxg = &dxg;
            let fns = &fns;
            let config = &config;
            async move {
                let mut env = Env::new();
                for (alias, binding) in &config.bindings {
                    let v = api
                        .get(binding.store.clone(), ObjectKey::new("o"))
                        .await
                        .map(|o| o.value)
                        .unwrap_or_else(|_| Arc::new(serde_json::Value::Null));
                    env.bind(alias.clone(), v);
                }
                for a in &dxg.assignments {
                    if let Ok(v) = knactor_expr::eval(&a.expr, &env, fns) {
                        if v.is_null() {
                            continue;
                        }
                        let mut patch = serde_json::Value::Object(Default::default());
                        knactor_types::value::set_path(&mut patch, &a.target_path(), v).unwrap();
                        let binding = &config.bindings[&a.target_alias];
                        let _ = api
                            .patch(binding.store.clone(), ObjectKey::new("o"), patch, true)
                            .await;
                    }
                }
            }
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_spec_pipeline,
    bench_expr_eval,
    bench_activation,
    bench_consolidation
);
criterion_main!(benches);
