//! Channels: unbounded mpsc, oneshot, and watch.

/// Unbounded multi-producer single-consumer channel.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::future::poll_fn;
    use std::sync::{Arc, Mutex};
    use std::task::{Poll, Waker};

    pub mod error {
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The channel is at capacity.
            Full(T),
            /// The receiver was dropped.
            Closed(T),
        }

        impl<T> TrySendError<T> {
            pub fn into_inner(self) -> T {
                match self {
                    TrySendError::Full(v) | TrySendError::Closed(v) => v,
                }
            }
        }

        impl<T> std::fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TrySendError::Full(_) => f.write_str("channel full"),
                    TrySendError::Closed(_) => f.write_str("channel closed"),
                }
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            Empty,
            Disconnected,
        }

        impl std::fmt::Display for TryRecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TryRecvError::Empty => f.write_str("channel empty"),
                    TryRecvError::Disconnected => f.write_str("channel closed"),
                }
            }
        }

        impl std::error::Error for TryRecvError {}
    }

    struct Shared<T> {
        queue: VecDeque<T>,
        rx_waker: Option<Waker>,
        senders: usize,
        rx_alive: bool,
    }

    pub struct UnboundedSender<T> {
        shared: Arc<Mutex<Shared<T>>>,
    }

    pub struct UnboundedReceiver<T> {
        shared: Arc<Mutex<Shared<T>>>,
    }

    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let shared = Arc::new(Mutex::new(Shared {
            queue: VecDeque::new(),
            rx_waker: None,
            senders: 1,
            rx_alive: true,
        }));
        (
            UnboundedSender {
                shared: Arc::clone(&shared),
            },
            UnboundedReceiver { shared },
        )
    }

    impl<T> UnboundedSender<T> {
        pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
            let mut s = self.shared.lock().unwrap();
            if !s.rx_alive {
                return Err(error::SendError(value));
            }
            s.queue.push_back(value);
            if let Some(w) = s.rx_waker.take() {
                drop(s);
                w.wake();
            }
            Ok(())
        }

        pub fn is_closed(&self) -> bool {
            !self.shared.lock().unwrap().rx_alive
        }

        pub fn same_channel(&self, other: &UnboundedSender<T>) -> bool {
            Arc::ptr_eq(&self.shared, &other.shared)
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().unwrap().senders += 1;
            UnboundedSender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                if let Some(w) = s.rx_waker.take() {
                    drop(s);
                    w.wake();
                }
            }
        }
    }

    impl<T> std::fmt::Debug for UnboundedSender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("UnboundedSender")
        }
    }

    impl<T> UnboundedReceiver<T> {
        /// Receive the next value, or `None` once every sender is gone and
        /// the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut s = self.shared.lock().unwrap();
                if let Some(v) = s.queue.pop_front() {
                    return Poll::Ready(Some(v));
                }
                if s.senders == 0 {
                    return Poll::Ready(None);
                }
                s.rx_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        pub fn try_recv(&mut self) -> Result<T, error::TryRecvError> {
            let mut s = self.shared.lock().unwrap();
            match s.queue.pop_front() {
                Some(v) => Ok(v),
                None if s.senders == 0 => Err(error::TryRecvError::Disconnected),
                None => Err(error::TryRecvError::Empty),
            }
        }

        pub fn close(&mut self) {
            self.shared.lock().unwrap().rx_alive = false;
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.shared.lock().unwrap().rx_alive = false;
        }
    }

    impl<T> std::fmt::Debug for UnboundedReceiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("UnboundedReceiver")
        }
    }

    struct BoundedShared<T> {
        queue: VecDeque<T>,
        cap: usize,
        rx_waker: Option<Waker>,
        tx_wakers: Vec<Waker>,
        senders: usize,
        rx_alive: bool,
    }

    pub struct Sender<T> {
        shared: Arc<Mutex<BoundedShared<T>>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Mutex<BoundedShared<T>>>,
    }

    /// Bounded multi-producer single-consumer channel. `send` waits for a
    /// free slot, which is what gives callers backpressure: a producer
    /// that outruns its consumer parks instead of growing the queue.
    pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        let shared = Arc::new(Mutex::new(BoundedShared {
            queue: VecDeque::with_capacity(cap.min(1024)),
            cap,
            rx_waker: None,
            tx_wakers: Vec::new(),
            senders: 1,
            rx_alive: true,
        }));
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send a value, waiting until the channel has capacity.
        pub async fn send(&self, value: T) -> Result<(), error::SendError<T>> {
            let mut slot = Some(value);
            poll_fn(|cx| {
                let mut s = self.shared.lock().unwrap();
                if !s.rx_alive {
                    return Poll::Ready(Err(error::SendError(slot.take().unwrap())));
                }
                if s.queue.len() < s.cap {
                    s.queue.push_back(slot.take().unwrap());
                    let w = s.rx_waker.take();
                    drop(s);
                    if let Some(w) = w {
                        w.wake();
                    }
                    return Poll::Ready(Ok(()));
                }
                s.tx_wakers.push(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        /// Send without waiting; fails fast when the channel is full.
        pub fn try_send(&self, value: T) -> Result<(), error::TrySendError<T>> {
            let mut s = self.shared.lock().unwrap();
            if !s.rx_alive {
                return Err(error::TrySendError::Closed(value));
            }
            if s.queue.len() >= s.cap {
                return Err(error::TrySendError::Full(value));
            }
            s.queue.push_back(value);
            let w = s.rx_waker.take();
            drop(s);
            if let Some(w) = w {
                w.wake();
            }
            Ok(())
        }

        /// Remaining free slots.
        pub fn capacity(&self) -> usize {
            let s = self.shared.lock().unwrap();
            s.cap - s.queue.len()
        }

        pub fn max_capacity(&self) -> usize {
            self.shared.lock().unwrap().cap
        }

        pub fn is_closed(&self) -> bool {
            !self.shared.lock().unwrap().rx_alive
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                if let Some(w) = s.rx_waker.take() {
                    drop(s);
                    w.wake();
                }
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value, or `None` once every sender is gone and
        /// the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut s = self.shared.lock().unwrap();
                if let Some(v) = s.queue.pop_front() {
                    // A slot freed: release every parked producer (they
                    // re-race for it; losers re-park).
                    let wakers = std::mem::take(&mut s.tx_wakers);
                    drop(s);
                    for w in wakers {
                        w.wake();
                    }
                    return Poll::Ready(Some(v));
                }
                if s.senders == 0 {
                    return Poll::Ready(None);
                }
                s.rx_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        pub fn try_recv(&mut self) -> Result<T, error::TryRecvError> {
            let mut s = self.shared.lock().unwrap();
            match s.queue.pop_front() {
                Some(v) => {
                    let wakers = std::mem::take(&mut s.tx_wakers);
                    drop(s);
                    for w in wakers {
                        w.wake();
                    }
                    Ok(v)
                }
                None if s.senders == 0 => Err(error::TryRecvError::Disconnected),
                None => Err(error::TryRecvError::Empty),
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().queue.is_empty()
        }

        pub fn close(&mut self) {
            let mut s = self.shared.lock().unwrap();
            s.rx_alive = false;
            let wakers = std::mem::take(&mut s.tx_wakers);
            drop(s);
            for w in wakers {
                w.wake();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock().unwrap();
            s.rx_alive = false;
            let wakers = std::mem::take(&mut s.tx_wakers);
            drop(s);
            for w in wakers {
                w.wake();
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }
}

/// Single-value, single-use channel.
pub mod oneshot {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    pub mod error {
        #[derive(Debug, PartialEq, Eq)]
        pub struct RecvError(pub(crate) ());

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("sender dropped without sending")
            }
        }

        impl std::error::Error for RecvError {}
    }

    struct Shared<T> {
        value: Option<T>,
        tx_alive: bool,
        rx_alive: bool,
        rx_waker: Option<Waker>,
    }

    pub struct Sender<T> {
        shared: Arc<Mutex<Shared<T>>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Mutex<Shared<T>>>,
    }

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Mutex::new(Shared {
            value: None,
            tx_alive: true,
            rx_alive: true,
            rx_waker: None,
        }));
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(self, value: T) -> Result<(), T> {
            let mut s = self.shared.lock().unwrap();
            if !s.rx_alive {
                return Err(value);
            }
            s.value = Some(value);
            if let Some(w) = s.rx_waker.take() {
                drop(s);
                w.wake();
            }
            Ok(())
        }

        pub fn is_closed(&self) -> bool {
            !self.shared.lock().unwrap().rx_alive
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock().unwrap();
            s.tx_alive = false;
            if let Some(w) = s.rx_waker.take() {
                drop(s);
                w.wake();
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, error::RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.shared.lock().unwrap();
            if let Some(v) = s.value.take() {
                return Poll::Ready(Ok(v));
            }
            if !s.tx_alive {
                return Poll::Ready(Err(error::RecvError(())));
            }
            s.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().unwrap().rx_alive = false;
        }
    }
}

/// Single-value broadcast channel where receivers observe the latest value.
pub mod watch {
    use std::future::poll_fn;
    use std::ops::Deref;
    use std::sync::{Arc, Mutex, MutexGuard};
    use std::task::{Poll, Waker};

    pub mod error {
        #[derive(Debug, PartialEq, Eq)]
        pub struct RecvError(pub(crate) ());

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("watch sender dropped")
            }
        }

        impl std::error::Error for RecvError {}

        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("watch channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    }

    struct Shared<T> {
        value: T,
        version: u64,
        tx_alive: bool,
        wakers: Vec<Waker>,
    }

    pub struct Sender<T> {
        shared: Arc<Mutex<Shared<T>>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Mutex<Shared<T>>>,
        seen: u64,
    }

    pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Mutex::new(Shared {
            value: initial,
            version: 0,
            tx_alive: true,
            wakers: Vec::new(),
        }));
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared, seen: 0 },
        )
    }

    /// Read guard over the current value.
    pub struct Ref<'a, T> {
        guard: MutexGuard<'a, Shared<T>>,
    }

    impl<T> Deref for Ref<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.guard.value
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
            let mut s = self.shared.lock().unwrap();
            s.value = value;
            s.version += 1;
            let wakers = std::mem::take(&mut s.wakers);
            drop(s);
            for w in wakers {
                w.wake();
            }
            Ok(())
        }

        pub fn subscribe(&self) -> Receiver<T> {
            let s = self.shared.lock().unwrap();
            let seen = s.version;
            drop(s);
            Receiver {
                shared: Arc::clone(&self.shared),
                seen,
            }
        }

        pub fn borrow(&self) -> Ref<'_, T> {
            Ref {
                guard: self.shared.lock().unwrap(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock().unwrap();
            s.tx_alive = false;
            let wakers = std::mem::take(&mut s.wakers);
            drop(s);
            for w in wakers {
                w.wake();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn borrow(&self) -> Ref<'_, T> {
            Ref {
                guard: self.shared.lock().unwrap(),
            }
        }

        /// Marks the current value seen and returns it.
        pub fn borrow_and_update(&mut self) -> Ref<'_, T> {
            let guard = self.shared.lock().unwrap();
            self.seen = guard.version;
            Ref { guard }
        }

        /// Completes when a value newer than the last-seen one is published.
        pub async fn changed(&mut self) -> Result<(), error::RecvError> {
            poll_fn(|cx| {
                let mut s = self.shared.lock().unwrap();
                if s.version != self.seen {
                    self.seen = s.version;
                    return Poll::Ready(Ok(()));
                }
                if !s.tx_alive {
                    return Poll::Ready(Err(error::RecvError(())));
                }
                s.wakers.push(cx.waker().clone());
                Poll::Pending
            })
            .await
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
                seen: self.seen,
            }
        }
    }
}
