//! Property tests for the replication log protocol in isolation.
//!
//! A model leader emits a dense sequence of committed events; an
//! adversarial scheduler ships them to a model follower as groups that
//! may be **duplicated**, **reordered**, or **truncated** (a prefix of a
//! group lost in flight surfaces as the whole group dropped — groups are
//! atomic frames). The follower classifies every delivery through
//! [`FollowerCursor`] and applies only what the cursor admits.
//!
//! Properties:
//!
//! * **prefix integrity** — after any interleaving, the follower's
//!   applied state is exactly a prefix of the leader's WAL order: same
//!   events, same order, no holes, no duplicates;
//! * **eventual parity** — if every group is eventually delivered at
//!   least once, the follower reaches the leader's full sequence;
//! * **ack monotonicity & quorum** — [`ReplState`] acks only move
//!   forward per follower, and `quorum(n)` is exactly the nth-highest
//!   follower position under any ack shuffle.

use knactor_store::{ApplyOutcome, EventKind, FollowerCursor, ReplGroup, ReplState, WatchEvent};
use knactor_types::{ObjectKey, Revision, StoreId};
use proptest::prelude::*;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn event(rev: u64) -> WatchEvent {
    WatchEvent {
        revision: Revision(rev),
        kind: EventKind::Created,
        key: ObjectKey::new(format!("k-{rev}")),
        value: Arc::new(serde_json::json!({"rev": rev})),
    }
}

/// Cut the dense sequence `1..=total` into contiguous groups with the
/// given sizes (sizes are cycled and clamped to what remains).
fn groups_of(total: u64, sizes: &[u64]) -> Vec<ReplGroup> {
    let mut groups = Vec::new();
    let mut next = 1u64;
    let mut i = 0usize;
    while next <= total {
        let want = sizes[i % sizes.len()].max(1);
        let len = want.min(total - next + 1);
        groups.push(ReplGroup::new((next..next + len).map(event).collect()));
        next += len;
        i += 1;
    }
    groups
}

/// One adversarial delivery: which group, and whether this delivery is
/// a duplicate of one already sent.
#[derive(Debug, Clone)]
struct Schedule {
    /// Delivery order as indexes into the group list; indexes may repeat
    /// (duplicates) and appear out of order (reordering). A truncated
    /// tail (indexes never delivered) models lost groups.
    order: Vec<usize>,
}

fn any_schedule() -> impl Strategy<Value = Schedule> {
    // Raw indexes, mapped into range with `%` at use site. Up to ~3x the
    // group count of deliveries: plenty of duplication and reordering
    // room, with a truncated tail (never-delivered groups) when short.
    proptest::collection::vec(any::<usize>(), 0..60).prop_map(|order| Schedule { order })
}

/// Drive one schedule through a model follower; return its applied
/// sequence of revisions.
fn run_follower_model(groups: &[ReplGroup], schedule: &Schedule) -> Vec<u64> {
    let mut cursor = FollowerCursor::at(Revision::ZERO);
    let mut applied: Vec<u64> = Vec::new();
    for &g in &schedule.order {
        let group = &groups[g];
        match cursor.offer(group) {
            ApplyOutcome::Apply { skip } => {
                for e in group.events().iter().skip(skip) {
                    applied.push(e.revision.0);
                }
            }
            ApplyOutcome::Duplicate => {}
            // A gap means the follower resubscribes from its applied
            // position in the real system; the model simply refuses the
            // out-of-order group (the scheduler may redeliver it later).
            ApplyOutcome::Gap { .. } => {
                cursor = FollowerCursor::at(Revision(*applied.last().unwrap_or(&0)));
            }
        }
    }
    applied
}

proptest! {
    /// Any interleaving of duplicated / reordered / truncated group
    /// deliveries leaves the follower holding an exact dense prefix of
    /// the leader's sequence.
    #[test]
    fn follower_applies_exact_leader_prefix(
        total in 1u64..60,
        sizes in proptest::collection::vec(1u64..7, 1..4),
        schedule in any_schedule(),
    ) {
        let groups = groups_of(total, &sizes);
        let schedule = Schedule {
            order: schedule.order.into_iter().map(|i| i % groups.len()).collect(),
        };
        let applied = run_follower_model(&groups, &schedule);
        let expected: Vec<u64> = (1..=applied.len() as u64).collect();
        prop_assert_eq!(
            applied, expected,
            "follower state must be a dense prefix: no holes, no duplicates, no reorders"
        );
    }

    /// Delivering every group at least once — in any order, with any
    /// duplication — always reaches full parity, provided the schedule
    /// keeps retrying (as the real replicator's resubscribe loop does).
    #[test]
    fn eventual_delivery_reaches_parity(
        total in 1u64..50,
        sizes in proptest::collection::vec(1u64..6, 1..4),
        shuffle in proptest::collection::vec(any::<usize>(), 0..40),
    ) {
        let groups = groups_of(total, &sizes);
        // An arbitrary noisy prefix...
        let mut order: Vec<usize> = shuffle.into_iter().map(|i| i % groups.len()).collect();
        // ...followed by enough in-order rounds to guarantee coverage
        // (the real system resubscribes from its cursor, which is an
        // in-order redelivery of everything outstanding).
        for round in 0..2 {
            let _ = round;
            order.extend(0..groups.len());
        }
        let applied = run_follower_model(&groups, &Schedule { order });
        let expected: Vec<u64> = (1..=total).collect();
        prop_assert_eq!(applied, expected, "full eventual delivery must reach parity");
    }

    /// Acks only move forward, and the quorum revision is exactly the
    /// nth-highest follower position no matter how acks are shuffled.
    #[test]
    fn quorum_is_nth_highest_under_ack_shuffle(
        positions in proptest::collection::vec(0u64..100, 1..6),
        shuffled_acks in proptest::collection::vec((0usize..6, 0u64..100), 0..40),
        n in 1usize..4,
    ) {
        let leading = Arc::new(AtomicBool::new(true));
        let state = ReplState::new(&StoreId::new("prop/repl"), leading);
        // Final positions: each follower acks its target through an
        // arbitrary shuffle of partial (possibly regressing) acks.
        for (follower, rev) in &shuffled_acks {
            let follower = follower % positions.len();
            let target = positions[follower];
            state.ack(&format!("f{follower}"), Revision(*rev % (target + 1)), Revision(100));
        }
        for (follower, target) in positions.iter().enumerate() {
            state.ack(&format!("f{follower}"), Revision(*target), Revision(100));
            // Regressing acks (stale duplicates) must not move anything
            // backwards.
            state.ack(&format!("f{follower}"), Revision(target / 2), Revision(100));
        }
        let mut sorted = positions.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let expected = if n <= sorted.len() { sorted[n - 1] } else { 0 };
        prop_assert_eq!(
            state.quorum(n),
            Revision(expected),
            "quorum(n) must be the nth-highest acked position"
        );
    }
}
