//! Compact JSON text: printing and parsing for [`Value`].
//!
//! Round-trip fidelity matters more than speed here: the WAL and the wire
//! protocol both serialize to this form and parse it back, so numbers must
//! keep their integer/float distinction (`1` vs `1.0`) across a round trip.

use crate::{Error, Map, Number, Value};

/// Format a float the way serde_json (ryu) does: integral finite floats
/// keep a trailing `.0` so they re-parse as floats, not integers.
pub fn format_f64(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        // Rust's shortest-roundtrip formatting.
        format!("{f}")
    }
}

pub fn write_json(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

/// Append `v`'s JSON text to an existing buffer (callers reuse `out`
/// across messages to avoid a fresh allocation per serialization).
pub fn write_json_into(out: &mut String, v: &Value) {
    write_value(out, v);
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub fn parse_json(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 192;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        let out = match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        };
        self.depth -= 1;
        out
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.s[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let ch = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_number_kind() {
        let v = parse_json(r#"{"a":1,"b":1.0,"c":-3,"d":2.5e2}"#).unwrap();
        let text = write_json(&v);
        let back = parse_json(&text).unwrap();
        assert_eq!(v, back);
        assert!(v["a"].as_i64().is_some());
        assert!(v["b"].as_i64().is_none());
        assert_eq!(v["b"].as_f64(), Some(1.0));
        assert!(text.contains("\"b\":1.0"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}\u{1f600}".to_string());
        let text = write_json(&v);
        assert_eq!(parse_json(&text).unwrap(), v);
        assert_eq!(parse_json(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("nul").is_err());
    }
}
