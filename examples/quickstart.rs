//! Quickstart: two tiny services composed by a Cast integrator.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A `greeter` service externalizes a greeting; a `display` service
//! renders whatever lands in its own store. Neither knows the other
//! exists — a two-line data exchange graph composes them, and changing
//! the composition is a config change, not a code change.

use knactor::prelude::*;
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() -> Result<()> {
    // 1. An in-process data exchange (swap for a TcpClient to use a
    //    remote `ExchangeServer` — same ExchangeApi either way).
    let (_object, _log, client) =
        knactor::net::loopback::in_process(Subject::integrator("quickstart"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    // 2. Externalize: each service gets its own store.
    api.create_store("greeter/state".into(), ProfileSpec::Instant)
        .await?;
    api.create_store("display/state".into(), ProfileSpec::Instant)
        .await?;

    // 3. The display service: a reconciler that reacts to ITS OWN store.
    let runtime = Runtime::new();
    let display = Knactor::builder("display")
        .object_store("state")
        .reconciler(FnReconciler::new(|ctx: ReconcilerCtx, event| async move {
            if let Some(text) = event.value.get("text").and_then(Value::as_str) {
                println!("[display] showing: {text}");
                ctx.patch(&event.key, json!({"shown": true})).await?;
            }
            Ok(())
        }))
        .build();
    runtime
        .deploy_pre_externalized(display, Arc::clone(&api))
        .await?;

    // 4. Exchange: the composition, declared as data movement.
    let dxg = Dxg::parse(
        "Input:\n  G: demo/v1/Greeter/greeter\n  D: demo/v1/Display/display\n\
         DXG:\n  D:\n    text: concat(upper(G.greeting), \", \", G.audience, \"!\")\n",
    )?;
    let mut bindings = BTreeMap::new();
    bindings.insert("G".to_string(), CastBinding::correlated("greeter/state"));
    bindings.insert("D".to_string(), CastBinding::correlated("display/state"));
    let cast = Cast::new(Arc::clone(&api))
        .spawn(CastConfig {
            name: "quickstart".into(),
            dxg,
            bindings,
            mode: CastMode::Direct,
            coalesce: 1,
        })
        .await?;

    // 5. The greeter externalizes state; everything else follows.
    api.create(
        "greeter/state".into(),
        "msg-1".into(),
        json!({"greeting": "hello", "audience": "world"}),
    )
    .await?;

    // Wait for the display to acknowledge.
    let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(obj) = api.get("display/state".into(), "msg-1".into()).await {
            if obj.value.get("shown") == Some(&json!(true)) {
                println!("[quickstart] display state: {}", obj.value);
                break;
            }
        }
        assert!(
            tokio::time::Instant::now() < deadline,
            "composition never fired"
        );
        tokio::time::sleep(Duration::from_millis(10)).await;
    }

    cast.shutdown().await;
    runtime.shutdown().await;
    println!("[quickstart] done");
    Ok(())
}
