//! Execution planning: ordering, consolidation, and pushdown export.
//!
//! §3.3 names two integrator-side optimizations this module implements:
//!
//! * **Consolidation** — combine multiple state-processing operations into
//!   fewer ones. The planner groups consecutive (dependency-respecting)
//!   assignments to the same target into one [`Step`], so the Cast
//!   integrator issues one patch per step instead of one per assignment.
//! * **Pushdown** — offload composition logic into the data exchange.
//!   [`Plan::to_udf_assignments`] exports a DXG (or one alias's slice of
//!   it) as store-side UDF assignments ready for
//!   `DataExchange::register_udf`.

use crate::analyze::analyze;
use crate::spec::Dxg;
use knactor_store::udf::UdfAssignment;
use knactor_types::{Error, Result};

/// One consolidated write: all assignments in a step target the same
/// alias and are applied as a single patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    pub target_alias: String,
    /// Indices into `Dxg::assignments`, in evaluation order.
    pub assignments: Vec<usize>,
    /// Write references (`alias.path`) of those assignments, parallel to
    /// `assignments`. This is the attribution [`crate::diff`] output maps
    /// through: a `Change` names a write ref, [`Plan::step_for`] names
    /// the step — and therefore the edge/integrator — it lands in.
    pub writes: Vec<String>,
}

/// A dependency-respecting, consolidated execution plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub steps: Vec<Step>,
}

impl Plan {
    /// Build a plan for a DXG. Fails if static analysis finds errors
    /// (cycles, overlapping writes) — an invalid spec must not reach an
    /// integrator.
    pub fn build(dxg: &Dxg) -> Result<Plan> {
        let analysis = analyze(dxg);
        if analysis.has_errors() {
            let msgs: Vec<String> = analysis.errors().map(|f| f.message.clone()).collect();
            return Err(Error::Dxg(format!("invalid DXG: {}", msgs.join("; "))));
        }
        let order = analysis
            .order
            .ok_or_else(|| Error::Dxg("no evaluation order (cycle)".to_string()))?;

        // Consolidate runs of same-target assignments.
        let mut steps: Vec<Step> = Vec::new();
        for idx in order {
            let alias = dxg.assignments[idx].target_alias.clone();
            let write = dxg.assignments[idx].write_ref();
            match steps.last_mut() {
                Some(step) if step.target_alias == alias => {
                    step.assignments.push(idx);
                    step.writes.push(write);
                }
                _ => steps.push(Step {
                    target_alias: alias,
                    assignments: vec![idx],
                    writes: vec![write],
                }),
            }
        }
        Ok(Plan { steps })
    }

    /// The step a write reference lands in (diff → plan attribution):
    /// given a `Change`'s target, this names the step whose patch the
    /// change alters, and `steps[i].target_alias` names the edge whose
    /// integrator must be reconfigured.
    pub fn step_for(&self, write_ref: &str) -> Option<usize> {
        self.steps
            .iter()
            .position(|s| s.writes.iter().any(|w| w == write_ref))
    }

    /// Total number of write operations the plan issues (one per step)
    /// versus the naive one-per-assignment count — the consolidation
    /// benchmark reports both.
    pub fn write_ops(&self) -> usize {
        self.steps.len()
    }

    pub fn assignment_count(&self) -> usize {
        self.steps.iter().map(|s| s.assignments.len()).sum()
    }

    /// Export the whole DXG as UDF assignments for pushdown. All aliases
    /// in `Input` become UDF inputs.
    pub fn to_udf_assignments(&self, dxg: &Dxg) -> Vec<UdfAssignment> {
        self.steps
            .iter()
            .flat_map(|s| s.assignments.iter())
            .map(|&i| {
                let a = &dxg.assignments[i];
                UdfAssignment {
                    target_alias: a.target_alias.clone(),
                    target_path: a.target_path().to_string(),
                    // `this` was resolved at parse; the printed expression
                    // is self-contained.
                    expr: a.expr.to_string(),
                }
            })
            .collect()
    }

    /// The UDF input list for [`Plan::to_udf_assignments`].
    pub fn udf_inputs(dxg: &Dxg) -> Vec<String> {
        dxg.inputs.keys().cloned().collect()
    }

    /// The metric stage labels an integrator executing this plan records
    /// per candidate: Direct pays `read-sources`, `evaluate`, and one
    /// `write:{alias}` per step; Pushdown pays the single
    /// `pushdown-execute` round trip. [`crate::cost`] maps measured
    /// stage histograms through these names when scoring candidates.
    pub fn stage_names(&self, choice: crate::cost::ExecChoice) -> Vec<String> {
        match choice {
            crate::cost::ExecChoice::Pushdown => {
                vec![crate::cost::STAGE_PUSHDOWN.to_string()]
            }
            crate::cost::ExecChoice::Direct => {
                let mut out = vec![
                    crate::cost::STAGE_READ.to_string(),
                    crate::cost::STAGE_EVAL.to_string(),
                ];
                let mut seen = std::collections::BTreeSet::new();
                for step in &self.steps {
                    if seen.insert(&step.target_alias) {
                        out.push(format!(
                            "{}{}",
                            crate::cost::STAGE_WRITE_PREFIX,
                            step.target_alias
                        ));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FIG6_RETAIL_DXG;

    #[test]
    fn fig6_plan_consolidates() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let plan = Plan::build(&dxg).unwrap();
        assert_eq!(plan.assignment_count(), 8);
        // 8 assignments across 3 targets consolidate into at most 8 and
        // hopefully ~3 write ops; must be strictly fewer than naive.
        assert!(
            plan.write_ops() < 8,
            "consolidation saved nothing: {plan:?}"
        );
        // Every step is single-target.
        for step in &plan.steps {
            assert!(!step.assignments.is_empty());
            for &i in &step.assignments {
                assert_eq!(dxg.assignments[i].target_alias, step.target_alias);
            }
        }
    }

    #[test]
    fn steps_attribute_writes_to_edges() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let plan = Plan::build(&dxg).unwrap();
        for step in &plan.steps {
            assert_eq!(step.writes.len(), step.assignments.len());
            for (&i, w) in step.assignments.iter().zip(&step.writes) {
                assert_eq!(&dxg.assignments[i].write_ref(), w);
            }
        }
        // A diff target maps to the step (and edge) it belongs to.
        let i = plan.step_for("S.method").expect("S.method is planned");
        assert_eq!(plan.steps[i].target_alias, "S");
        assert_eq!(plan.step_for("S.nonexistent"), None);
    }

    #[test]
    fn edge_slices_plan_independently() {
        // Each per-target edge of Fig. 6 yields a valid single-target
        // plan, and together they cover every assignment exactly once.
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let edges = dxg.edges();
        assert_eq!(
            edges.keys().cloned().collect::<Vec<_>>(),
            vec!["C", "P", "S"]
        );
        let mut covered = 0;
        for (target, edge) in &edges {
            let plan = Plan::build(edge).unwrap();
            for step in &plan.steps {
                assert_eq!(&step.target_alias, target);
            }
            covered += plan.assignment_count();
            // Inputs are restricted to what the slice touches.
            for alias in edge.inputs.keys() {
                assert!(
                    alias == target
                        || edge
                            .assignments
                            .iter()
                            .any(|a| a.expr.free_roots().contains(alias)),
                    "edge {target} carries unused input {alias}"
                );
            }
        }
        assert_eq!(covered, dxg.assignments.len());
    }

    #[test]
    fn plan_refuses_cyclic_spec() {
        let src = "Input:\n  A: g/v/s/a\n  B: g/v/s/b\nDXG:\n  A:\n    x: B.y\n  B:\n    y: A.x\n";
        let dxg = Dxg::parse(src).unwrap();
        assert!(matches!(Plan::build(&dxg), Err(Error::Dxg(_))));
    }

    #[test]
    fn plan_respects_dependencies_across_steps() {
        let src = "\
Input:
  A: g/v/s/a
  B: g/v/s/b
  C: g/v/s/c
DXG:
  B:
    y: A.x
  C:
    z: B.y
  A:
    w: '1'
";
        let dxg = Dxg::parse(src).unwrap();
        let plan = Plan::build(&dxg).unwrap();
        let step_of = |write: &str| {
            plan.steps
                .iter()
                .position(|s| {
                    s.assignments
                        .iter()
                        .any(|&i| dxg.assignments[i].write_ref() == write)
                })
                .unwrap()
        };
        assert!(step_of("B.y") < step_of("C.z"));
    }

    #[test]
    fn udf_export_roundtrips_expressions() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let plan = Plan::build(&dxg).unwrap();
        let udfs = plan.to_udf_assignments(&dxg);
        assert_eq!(udfs.len(), 8);
        // Exported expressions parse (they feed Udf::compile verbatim).
        for a in &udfs {
            knactor_expr::parse_expr(&a.expr)
                .unwrap_or_else(|e| panic!("exported expr '{}' invalid: {e}", a.expr));
        }
        // `this` is gone.
        for a in &udfs {
            assert!(!a.expr.contains("this"), "unresolved this in '{}'", a.expr);
        }
        assert_eq!(Plan::udf_inputs(&dxg), vec!["C", "P", "S"]);
    }
}
