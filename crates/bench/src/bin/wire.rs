//! Wire-batching throughput bench: how much does batching at every layer
//! (batched wire ops → corked framing → WAL group commit) buy over the
//! one-op-one-frame-one-fsync baseline?
//!
//! ```text
//! cargo run -p knactor-bench --bin wire --release          # full
//! cargo run -p knactor-bench --bin wire --release -- quick # CI variant
//! ```
//!
//! A real [`knactor_net::server::ExchangeServer`] on loopback TCP, a real
//! [`knactor_net::client::TcpClient`], and — for the fsync rows — a real
//! WAL fsynced on commit. Stores use a zero-delay durable profile (no
//! simulated apiserver latencies), so the measured cost is the genuine
//! wire + framing + fsync pipeline and nothing else.
//!
//! The matrix is batch size {1, 16, 64, 256} × fsync {off, on}. Batch 1
//! is the per-record baseline: one `create` request, one frame, one
//! fsync per record. Larger sizes send one `BatchCommit` per chunk, which
//! the server stages as one WAL group and acknowledges after a single
//! covering fsync. Emits `BENCH_wire.json`; the headline number is
//! `speedup_batch64_fsync` (acceptance floor: ≥ 3×).
//!
//! A second sweep measures **shard scaling**: partition-aligned batch-64
//! commits from 8 concurrent writers through a
//! [`knactor_net::ShardRouter`] over 1/2/4/8 routed-TCP shard nodes, each
//! running the apiserver-modelled durable engine (fsync WAL + the paper's
//! per-commit latency — the per-node serial resource that sharding
//! overlaps). Full runs gate `shard_scaling.speedup_4_shards ≥ 2×`.
//!
//! A third sweep measures **replication cost and replica-read scaling**
//! on a 3-node replica set (leader + 2 followers): batch-64 write
//! throughput for acked (no quorum), `Replicated(1)`, and
//! `Replicated(2)` profiles — the price of each added ack — and read
//! throughput from 8 concurrent readers through a
//! [`knactor_net::ReplicaRouter`] that load-balances reads across the
//! set versus the same readers pinned to the leader alone. The read
//! store runs the apiserver-modelled engine with a `Replicated(1)`
//! quorum: like the shard sweep, the paper's per-op latency is the
//! per-node serial resource — each node serves its connection serially,
//! so replicas overlap modelled read latency the same way shards
//! overlap modelled commit latency. (On the zero-latency durable
//! engine a single pipelined connection already saturates client-side
//! framing, so there is no per-node resource left for replicas to
//! overlap.) Full runs gate `replication.read_scaling_8_readers ≥ 1.5×`.

use knactor_logstore::LogExchange;
use knactor_net::client::TcpClient;
use knactor_net::proto::ProfileSpec;
use knactor_net::server::ExchangeServer;
use knactor_net::{ExchangeApi, ReplicaRouter, ReplicatedExchange, RetryPolicy, ShardedExchange};
use knactor_rbac::Subject;
use knactor_store::profile::WatchDelivery;
use knactor_store::{BatchOp, DataExchange, EngineProfile};
use knactor_types::{ObjectKey, Revision, StoreId};
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];

/// Durable profile with no simulated per-op delays: the bench measures
/// the real pipeline, not the apiserver's modelled latency.
fn bench_profile(dir: &std::path::Path, store: &str, fsync: bool) -> EngineProfile {
    let mut wal = dir.to_path_buf();
    wal.push(format!("{}.wal", store.replace('/', "_")));
    EngineProfile {
        name: if fsync { "wal-fsync" } else { "wal-nofsync" }.to_string(),
        wal_path: Some(wal),
        fsync,
        read_delay: Duration::ZERO,
        write_delay: Duration::ZERO,
        watch: WatchDelivery::Push,
        history_cap: knactor_store::profile::DEFAULT_HISTORY_CAP,
        watch_lag_cap: knactor_store::profile::DEFAULT_WATCH_LAG_CAP,
        repl_acks: 0,
    }
}

/// Sum of one counter across its label sets in a scraped snapshot.
fn counter_total(snapshot: &knactor_types::metrics::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

/// Write `records` objects into a fresh store, `batch` per request.
/// Returns (records/sec, fsyncs consumed).
async fn run_config(
    server: &ExchangeServer,
    client: &TcpClient,
    data_dir: &std::path::Path,
    records: usize,
    batch: usize,
    fsync: bool,
) -> (f64, u64) {
    let store_name = format!("wire/b{batch}-{}", if fsync { "fsync" } else { "nofsync" });
    let store = StoreId::new(store_name.as_str());
    server
        .object
        .create_store(store.clone(), bench_profile(data_dir, &store_name, fsync))
        .expect("create bench store");

    let fsyncs_before = counter_total(
        &client.metrics().await.expect("scrape metrics"),
        "knactor_wal_fsyncs_total",
    );
    let start = Instant::now();
    if batch == 1 {
        // Per-record baseline: one request, one frame, one fsync each.
        for i in 0..records {
            client
                .create(
                    store.clone(),
                    ObjectKey::new(format!("k{i:06}").as_str()),
                    json!({"i": i, "payload": "0123456789abcdef"}),
                )
                .await
                .expect("create");
        }
    } else {
        for chunk_start in (0..records).step_by(batch) {
            let ops: Vec<BatchOp> = (chunk_start..(chunk_start + batch).min(records))
                .map(|i| BatchOp::Create {
                    key: ObjectKey::new(format!("k{i:06}").as_str()),
                    value: json!({"i": i, "payload": "0123456789abcdef"}),
                })
                .collect();
            let items = client
                .batch_commit(store.clone(), ops)
                .await
                .expect("batch_commit");
            for item in items {
                item.into_revision().expect("per-item commit");
            }
        }
    }
    let elapsed = start.elapsed();
    let fsyncs_after = counter_total(
        &client.metrics().await.expect("scrape metrics"),
        "knactor_wal_fsyncs_total",
    );

    // Everything acked must be readable: the batches really committed.
    let (objects, _) = client.list(store).await.expect("list");
    assert_eq!(objects.len(), records, "committed records");

    let throughput = records as f64 / elapsed.as_secs_f64();
    (throughput, fsyncs_after - fsyncs_before)
}

/// Concurrent writers per shard-scaling config. Enough to keep every
/// shard's WAL pipeline busy at 8 shards.
const SCALING_WRITERS: usize = 8;
/// Batch size for the shard-scaling sweep — the single-node headline row.
const SCALING_BATCH: usize = 64;

/// Aggregate write throughput through a [`ShardRouter`] over `shards`
/// routed-TCP shard nodes, each with its own fsync WAL.
///
/// [`SCALING_WRITERS`] tasks issue batch-[`SCALING_BATCH`] commits
/// concurrently through one router. Writers are **partition-aligned** —
/// each writer's keys all live on its designated shard, the way a
/// partitioned producer batches per partition — so every commit is one
/// whole sub-batch on one node. Stores use the paper's apiserver-modelled
/// durable engine: its per-commit latency is each node's serial resource
/// (a node's connection handles one request at a time), which is exactly
/// what sharding overlaps. Returns records/sec across all writers.
async fn run_sharded(shards: usize, records: usize) -> f64 {
    let exchange = ShardedExchange::launch(shards)
        .await
        .expect("launch shards");
    let router = Arc::new(
        exchange
            .client(Subject::operator("wire-bench"))
            .await
            .expect("connect router"),
    );
    let store = StoreId::new(format!("scale/s{shards}").as_str());
    router
        .create_store(store.clone(), ProfileSpec::Apiserver)
        .await
        .expect("create sharded store");

    // Pre-compute each writer's key set: scan candidates and keep the
    // ones the shard map places on the writer's target shard (writers
    // round-robin over shards). Key generation stays outside the timed
    // window.
    let per_writer = records / SCALING_WRITERS;
    let keys_for: Vec<Vec<ObjectKey>> = (0..SCALING_WRITERS)
        .map(|w| {
            let target = w % shards;
            let mut keys = Vec::with_capacity(per_writer);
            let mut n = 0u64;
            while keys.len() < per_writer {
                let key = ObjectKey::new(format!("w{w}-k{n:06}").as_str());
                if router.shard_of_key(&store, &key) == target {
                    keys.push(key);
                }
                n += 1;
            }
            keys
        })
        .collect();

    let start = Instant::now();
    let mut writers = Vec::with_capacity(SCALING_WRITERS);
    for (w, keys) in keys_for.into_iter().enumerate() {
        let router = Arc::clone(&router);
        let store = store.clone();
        writers.push(tokio::spawn(async move {
            for chunk in keys.chunks(SCALING_BATCH) {
                let ops: Vec<BatchOp> = chunk
                    .iter()
                    .map(|key| BatchOp::Create {
                        key: key.clone(),
                        value: json!({"w": w, "payload": "0123456789abcdef"}),
                    })
                    .collect();
                let items = router
                    .batch_commit(store.clone(), ops)
                    .await
                    .expect("batch_commit");
                for item in items {
                    item.into_revision().expect("per-item commit");
                }
            }
        }));
    }
    for writer in writers {
        writer.await.expect("writer task");
    }
    let elapsed = start.elapsed();

    // Every acked record must be visible through the router, and the
    // virtual revision (sum of shard revisions) must match the commits.
    let committed = SCALING_WRITERS * per_writer;
    let (objects, revision) = router.list(store).await.expect("list");
    assert_eq!(objects.len(), committed, "committed records across shards");
    assert!(
        revision.0 as usize >= committed,
        "virtual revision below commit count"
    );
    exchange.shutdown().await;

    committed as f64 / elapsed.as_secs_f64()
}

/// Followers in the replication sweep's replica set (3 nodes total).
const REPL_FOLLOWERS: usize = 2;
/// Concurrent readers in the replica-read scaling sweep.
const REPL_READERS: usize = 8;
/// Keys seeded for the read sweep.
const REPL_KEYS: usize = 256;

/// Batch-64 write throughput into a fresh replica set. `acks == 0` is
/// the acked baseline (durable leader, followers replicate but the
/// leader never waits for them); `acks == n` writes through a
/// `Replicated(n)` profile, so every commit waits for `n` follower
/// acks. Returns records/sec.
async fn run_replicated_writes(acks: usize, records: usize) -> f64 {
    let cluster = ReplicatedExchange::launch(REPL_FOLLOWERS)
        .await
        .expect("launch replica set");
    let router = cluster
        .router(RetryPolicy::fast(7))
        .await
        .expect("connect router");
    let store = StoreId::new(format!("repl/w{acks}").as_str());
    let profile = if acks == 0 {
        ProfileSpec::Durable
    } else {
        ProfileSpec::Replicated { acks }
    };
    router
        .create_store(store.clone(), profile)
        .await
        .expect("create replicated store");

    let start = Instant::now();
    for chunk_start in (0..records).step_by(SCALING_BATCH) {
        let ops: Vec<BatchOp> = (chunk_start..(chunk_start + SCALING_BATCH).min(records))
            .map(|i| BatchOp::Create {
                key: ObjectKey::new(format!("k{i:06}").as_str()),
                value: json!({"i": i, "payload": "0123456789abcdef"}),
            })
            .collect();
        let items = router
            .batch_commit(store.clone(), ops)
            .await
            .expect("batch_commit");
        for item in items {
            item.into_revision().expect("per-item commit");
        }
    }
    let elapsed = start.elapsed();

    let (objects, _) = router.list(store).await.expect("list");
    assert_eq!(objects.len(), records, "committed records");
    cluster.shutdown().await;

    records as f64 / elapsed.as_secs_f64()
}

/// Read throughput from [`REPL_READERS`] concurrent readers over a
/// seeded apiserver-modelled `Replicated(1)` store: either pinned to
/// the leader alone (`nodes == 1`) or load-balanced across the whole
/// replica set by the [`ReplicaRouter`]. Returns gets/sec.
async fn run_replica_reads(cluster: &ReplicatedExchange, nodes: usize, gets: usize) -> f64 {
    let addrs = cluster.addrs();
    let router = Arc::new(
        ReplicaRouter::connect(
            &addrs[..nodes],
            Subject::operator("wire-bench"),
            RetryPolicy::fast(7),
        )
        .await
        .expect("connect read router"),
    );
    let store = StoreId::new("repl/read");

    let per_reader = gets / REPL_READERS;
    let start = Instant::now();
    let mut readers = Vec::with_capacity(REPL_READERS);
    for r in 0..REPL_READERS {
        let router = Arc::clone(&router);
        let store = store.clone();
        readers.push(tokio::spawn(async move {
            for i in 0..per_reader {
                let key = ObjectKey::new(format!("r{:06}", (r * 37 + i) % REPL_KEYS).as_str());
                let obj = router.get(store.clone(), key).await.expect("get");
                assert!(obj.value.get("i").is_some(), "seeded value");
            }
        }));
    }
    for reader in readers {
        reader.await.expect("reader task");
    }
    let elapsed = start.elapsed();

    (per_reader * REPL_READERS) as f64 / elapsed.as_secs_f64()
}

async fn run(records: usize) -> serde_json::Value {
    let data_dir = std::env::temp_dir().join(format!("knactor-wire-bench-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).expect("bench data dir");
    let server = ExchangeServer::bind(
        "127.0.0.1:0",
        Arc::new(DataExchange::new()),
        Arc::new(LogExchange::new()),
    )
    .await
    .expect("bind server");
    let client = TcpClient::connect(server.local_addr(), Subject::operator("wire-bench"))
        .await
        .expect("connect");

    let mut rows = Vec::new();
    let mut by_key = std::collections::BTreeMap::new();
    for fsync in [false, true] {
        for batch in BATCH_SIZES {
            let (throughput, fsyncs) =
                run_config(&server, &client, &data_dir, records, batch, fsync).await;
            eprintln!(
                "batch={batch:>3} fsync={fsync:5} -> {throughput:>10.0} rec/s ({fsyncs} fsyncs)"
            );
            by_key.insert((fsync, batch), throughput);
            rows.push(json!({
                "batch": batch,
                "fsync": fsync,
                "records": records,
                "records_per_sec": throughput,
                "fsyncs": fsyncs,
            }));
        }
    }

    let speedup = |fsync: bool, batch: usize| by_key[&(fsync, batch)] / by_key[&(fsync, 1)];
    let speedup_batch64_fsync = speedup(true, 64);

    // Server-side batching observability, scraped over the same wire.
    let snapshot = client.metrics().await.expect("scrape metrics");
    let group_records = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "knactor_wal_group_commit_records")
        .map(|h| json!({"count": h.count, "max": h.max_ns}));

    let _ = std::fs::remove_dir_all(&data_dir);

    // Shard-scaling sweep: the same write workload through a ShardRouter
    // over 1/2/4/8 routed-TCP shard nodes, each with its own fsync WAL.
    let mut scaling_rows = Vec::new();
    let mut scaling_by_shards = std::collections::BTreeMap::new();
    for shards in [1usize, 2, 4, 8] {
        let throughput = run_sharded(shards, records).await;
        eprintln!("shards={shards} -> {throughput:>10.0} rec/s aggregate");
        scaling_by_shards.insert(shards, throughput);
        scaling_rows.push(json!({
            "shards": shards,
            "writers": SCALING_WRITERS,
            "batch": SCALING_BATCH,
            "records": records,
            "records_per_sec": throughput,
        }));
    }
    let scaling_4x = scaling_by_shards[&4] / scaling_by_shards[&1];

    // Replication sweep: the write-side cost of each added ack, then
    // replica-read scaling over one seeded replica set.
    let mut repl_write_rows = Vec::new();
    for acks in [0usize, 1, 2] {
        let throughput = run_replicated_writes(acks, records).await;
        let label = if acks == 0 {
            "acked".to_string()
        } else {
            format!("replicated({acks})")
        };
        eprintln!("repl writes {label:>13} -> {throughput:>10.0} rec/s");
        repl_write_rows.push(json!({
            "mode": label,
            "acks": acks,
            "batch": SCALING_BATCH,
            "records": records,
            "records_per_sec": throughput,
        }));
    }

    let cluster = ReplicatedExchange::launch(REPL_FOLLOWERS)
        .await
        .expect("launch read replica set");
    let seed_router = cluster
        .router(RetryPolicy::fast(7))
        .await
        .expect("connect seed router");
    let read_store = StoreId::new("repl/read");
    seed_router
        .create_store(
            read_store.clone(),
            ProfileSpec::ReplicatedApiserver { acks: 1 },
        )
        .await
        .expect("create read store");
    for chunk_start in (0..REPL_KEYS).step_by(SCALING_BATCH) {
        let ops: Vec<BatchOp> = (chunk_start..(chunk_start + SCALING_BATCH).min(REPL_KEYS))
            .map(|i| BatchOp::Create {
                key: ObjectKey::new(format!("r{i:06}").as_str()),
                value: json!({"i": i, "payload": "0123456789abcdef"}),
            })
            .collect();
        seed_router
            .batch_commit(read_store.clone(), ops)
            .await
            .expect("seed batch");
    }
    cluster
        .await_converged(
            &read_store,
            Revision(REPL_KEYS as u64),
            Duration::from_secs(10),
        )
        .await
        .expect("replicas converge before read sweep");
    let reads_leader_only = run_replica_reads(&cluster, 1, records).await;
    let reads_replicated = run_replica_reads(&cluster, REPL_FOLLOWERS + 1, records).await;
    let read_scaling = reads_replicated / reads_leader_only;
    eprintln!(
        "repl reads leader-only -> {reads_leader_only:>10.0} get/s; \
         {} nodes -> {reads_replicated:>10.0} get/s ({read_scaling:.2}x)",
        REPL_FOLLOWERS + 1
    );
    cluster.shutdown().await;

    json!({
        "description": "Wire-batching throughput bench (cargo run -p knactor-bench --bin wire --release). Real TCP server + client on loopback; each config writes the same records into a fresh WAL-backed store, batch 1 as single create requests, larger batches as one BatchCommit per chunk (one frame out, one WAL group fsync to cover the chunk). records_per_sec is sustained write throughput; speedups are vs the batch-1 row with the same fsync setting.",
        "records_per_config": records,
        "configs": rows,
        "speedup_vs_batch1": {
            "nofsync": {
                "batch16": speedup(false, 16),
                "batch64": speedup(false, 64),
                "batch256": speedup(false, 256),
            },
            "fsync": {
                "batch16": speedup(true, 16),
                "batch64": speedup(true, 64),
                "batch256": speedup(true, 256),
            },
        },
        "speedup_batch64_fsync": speedup_batch64_fsync,
        "wal_group_commit_records": group_records,
        "shard_scaling": {
            "description": "Aggregate write throughput through a ShardRouter over N routed-TCP shard nodes running the apiserver-modelled durable engine (fsync WAL + the paper's measured per-commit latency). 8 concurrent partition-aligned writers (each writer's keys co-located on its shard, as a partitioned producer batches) issue batch-64 commits through one router; each node serves its connection serially, so per-node commit latency is the serial resource sharding overlaps. speedup_4_shards is aggregate rec/s at 4 shards vs 1 shard (acceptance floor in full runs: >= 2x).",
            "configs": scaling_rows,
            "speedup_2_shards": scaling_by_shards[&2] / scaling_by_shards[&1],
            "speedup_4_shards": scaling_4x,
            "speedup_8_shards": scaling_by_shards[&8] / scaling_by_shards[&1],
        },
        "replication": {
            "description": "Replication sweep on a 3-node replica set (leader + 2 followers). Writes: batch-64 commits through a ReplicaRouter into a durable store with no quorum (acked) vs Replicated(1) vs Replicated(2) — each added ack makes the commit wait for one more follower to durably stage the group. Reads: 8 concurrent readers issue gets over a converged replicated store running the apiserver-modelled engine (the paper's per-op read latency is each node's serial resource, same basis as the shard sweep), pinned to the leader alone vs load-balanced across the set by the ReplicaRouter; each node serves its connection serially, so replicas overlap modelled read latency the way shards overlap modelled commit latency. read_scaling_8_readers is set-wide gets/s over leader-only gets/s (acceptance floor in full runs: >= 1.5x).",
            "writes": repl_write_rows,
            "reads": {
                "readers": REPL_READERS,
                "keys": REPL_KEYS,
                "gets": records,
                "leader_only_gets_per_sec": reads_leader_only,
                "replicated_gets_per_sec": reads_replicated,
            },
            "read_scaling_8_readers": read_scaling,
        },
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let records = if quick { 512 } else { 2048 };

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(run(records));

    let pretty = serde_json::to_string(&result).unwrap();
    println!("{pretty}");
    std::fs::write("BENCH_wire.json", format!("{pretty}\n")).expect("write BENCH_wire.json");
    eprintln!("wrote BENCH_wire.json");

    let speedup = result["speedup_batch64_fsync"].as_f64().unwrap();
    assert!(
        speedup >= 3.0,
        "batch-64 fsync speedup {speedup:.2}x below the 3x floor"
    );
    // The shard-scaling floor only gates full runs: quick/CI runs write
    // too few records per config for the sweep to be load-bearing.
    if !quick {
        let scaling = result["shard_scaling"]["speedup_4_shards"]
            .as_f64()
            .unwrap();
        assert!(
            scaling >= 2.0,
            "4-shard aggregate write speedup {scaling:.2}x below the 2x floor"
        );
        let read_scaling = result["replication"]["read_scaling_8_readers"]
            .as_f64()
            .unwrap();
        assert!(
            read_scaling >= 1.5,
            "replica-read scaling {read_scaling:.2}x below the 1.5x floor at 8 readers"
        );
    }
}
