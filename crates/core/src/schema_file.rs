//! Schema files: the Fig. 5 on-disk format.
//!
//! ```yaml
//! schema: OnlineRetail/v1/Checkout/Order
//! items: object
//! address: string
//! shippingCost: number # +kr: external
//! ```
//!
//! The first entry names the schema; every other entry declares a field
//! as `name: type`, with `+kr:` trailing comments carrying annotations
//! (the *Express* step of the development workflow). A `!` suffix on the
//! type marks the field required (`address: string!`).

use knactor_types::{Annotation, Error, FieldSpec, FieldType, Result, Schema, SchemaName};

/// Parse a schema document.
pub fn parse_schema(text: &str) -> Result<Schema> {
    let doc = knactor_yamlish::parse(text)?;
    let entries = doc.entries()?;
    let name_node = doc
        .get("schema")
        .ok_or_else(|| Error::SchemaViolation("schema file missing 'schema:' entry".to_string()))?;
    let name = SchemaName::new(name_node.as_str()?);
    let mut schema = Schema::new(name);
    for (field, node) in entries {
        if field == "schema" {
            continue;
        }
        let ty_text = node.as_str()?;
        let (ty_text, required) = match ty_text.strip_suffix('!') {
            Some(t) => (t, true),
            None => (ty_text, false),
        };
        let ty = FieldType::parse(ty_text)?;
        let mut spec = FieldSpec::new(field.clone(), ty);
        spec.required = required;
        for ann in &node.annotations {
            spec.annotations.push(Annotation::parse(ann));
        }
        schema = schema.field(spec);
    }
    if schema.fields.is_empty() {
        return Err(Error::SchemaViolation(format!(
            "schema {} declares no fields",
            schema.name
        )));
    }
    Ok(schema)
}

/// Render a schema back to the file format.
pub fn schema_to_yaml(schema: &Schema) -> String {
    let mut entries = vec![(
        "schema".to_string(),
        knactor_yamlish::Node::scalar(schema.name.as_str()),
    )];
    for f in &schema.fields {
        let ty = if f.required {
            format!("{}!", f.ty)
        } else {
            f.ty.to_string()
        };
        let mut node = knactor_yamlish::Node::scalar(ty);
        for a in &f.annotations {
            node = node.with_annotation(a.to_string());
        }
        entries.push((f.name.clone(), node));
    }
    knactor_yamlish::to_string(&knactor_yamlish::Node::map(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG5: &str = "\
schema: OnlineRetail/v1/Checkout/Order
items: object
address: string!
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
";

    #[test]
    fn parses_fig5() {
        let schema = parse_schema(FIG5).unwrap();
        assert_eq!(schema.name.as_str(), "OnlineRetail/v1/Checkout/Order");
        assert_eq!(schema.fields.len(), 8);
        assert!(schema.get("address").unwrap().required);
        assert!(!schema.get("cost").unwrap().required);
        let external: Vec<_> = schema.external_fields().map(|f| f.name.as_str()).collect();
        assert_eq!(external, vec!["shippingCost", "paymentID", "trackingID"]);
    }

    #[test]
    fn roundtrips() {
        let schema = parse_schema(FIG5).unwrap();
        let text = schema_to_yaml(&schema);
        let back = parse_schema(&text).unwrap();
        assert_eq!(back, schema);
    }

    #[test]
    fn missing_name_or_fields_rejected() {
        assert!(parse_schema("a: string\n").is_err());
        assert!(parse_schema("schema: X/v1/Y/Z\n").is_err());
    }

    #[test]
    fn bad_type_rejected() {
        assert!(parse_schema("schema: X/v1/Y/Z\nf: quux\n").is_err());
    }
}
