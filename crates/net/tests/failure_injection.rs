//! Failure injection: how clients and servers behave when the other side
//! disappears or sends garbage.

use knactor_net::frame::FrameWriter;
use knactor_net::proto::encode;
use knactor_net::server::test_server;
use knactor_net::{ExchangeApi, TcpClient};
use knactor_rbac::Subject;
use knactor_types::{Error, ObjectKey, Revision, StoreId};
use serde_json::json;
use std::time::Duration;

#[tokio::test]
async fn server_shutdown_fails_pending_and_ends_watches() {
    let server = test_server(&["s/x"], &[]).await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::operator("c"))
        .await
        .unwrap();
    let mut watch = client
        .watch(StoreId::new("s/x"), Revision::ZERO)
        .await
        .unwrap();
    client
        .create(StoreId::new("s/x"), ObjectKey::new("k"), json!(1))
        .await
        .unwrap();
    assert!(watch.recv().await.is_some());

    server.shutdown().await;

    // The watch stream ends rather than hanging.
    let next = tokio::time::timeout(Duration::from_secs(5), watch.recv()).await;
    assert!(
        matches!(next, Ok(None)),
        "watch must end on server shutdown: {next:?}"
    );

    // New requests fail with a transport error rather than hanging.
    let result = tokio::time::timeout(
        Duration::from_secs(5),
        client.get(StoreId::new("s/x"), ObjectKey::new("k")),
    )
    .await
    .expect("request must not hang");
    assert!(matches!(result, Err(Error::Transport(_))), "{result:?}");
}

#[tokio::test]
async fn garbage_frames_kill_only_that_connection() {
    let server = test_server(&["s/x"], &[]).await.unwrap();

    // A raw connection that sends a valid hello, then garbage.
    let socket = tokio::net::TcpStream::connect(server.local_addr())
        .await
        .unwrap();
    let mut writer = FrameWriter::new(socket);
    writer
        .write_frame(
            &encode(&knactor_net::proto::Hello {
                subject_kind: "operator".into(),
                subject_name: "vandal".into(),
            })
            .unwrap(),
        )
        .await
        .unwrap();
    writer.write_frame(b"this is not json").await.unwrap();
    // Give the server a moment to process and drop the connection.
    tokio::time::sleep(Duration::from_millis(50)).await;

    // A well-behaved client still works.
    let client = TcpClient::connect(server.local_addr(), Subject::operator("good"))
        .await
        .unwrap();
    client.ping().await.unwrap();
    client
        .create(StoreId::new("s/x"), ObjectKey::new("k"), json!(1))
        .await
        .unwrap();
    server.shutdown().await;
}

#[tokio::test]
async fn bad_hello_subject_kind_rejected_gracefully() {
    let server = test_server(&["s/x"], &[]).await.unwrap();
    let socket = tokio::net::TcpStream::connect(server.local_addr())
        .await
        .unwrap();
    let mut writer = FrameWriter::new(socket);
    writer
        .write_frame(
            &encode(&knactor_net::proto::Hello {
                subject_kind: "alien".into(),
                subject_name: "x".into(),
            })
            .unwrap(),
        )
        .await
        .unwrap();
    tokio::time::sleep(Duration::from_millis(50)).await;
    // Server is still healthy.
    let client = TcpClient::connect(server.local_addr(), Subject::operator("good"))
        .await
        .unwrap();
    client.ping().await.unwrap();
    server.shutdown().await;
}

#[tokio::test]
async fn unwatch_stops_event_flow() {
    let server = test_server(&["s/x"], &[]).await.unwrap();
    let client = TcpClient::connect(server.local_addr(), Subject::operator("c"))
        .await
        .unwrap();
    // Drop the stream receiver: the demux prunes the subscription and the
    // server's pushes land nowhere without wedging the connection.
    let watch = client
        .watch(StoreId::new("s/x"), Revision::ZERO)
        .await
        .unwrap();
    drop(watch);
    for i in 0..10 {
        client
            .create(
                StoreId::new("s/x"),
                ObjectKey::new(format!("k{i}")),
                json!(i),
            )
            .await
            .unwrap();
    }
    client.ping().await.unwrap();
    server.shutdown().await;
}

/// The decoder never panics on arbitrary bytes (fuzz-lite).
#[test]
fn decode_total_on_garbage() {
    let samples: &[&[u8]] = &[
        b"",
        b"{",
        b"null",
        b"[1,2,3]",
        b"{\"type\":\"nope\"}",
        b"{\"id\":9}",
        &[0xff, 0xfe, 0x00, 0x01],
    ];
    for bytes in samples {
        let _ = knactor_net::proto::decode::<knactor_net::proto::RequestEnvelope>(bytes);
        let _ = knactor_net::proto::decode::<knactor_net::proto::ServerMsg>(bytes);
        let _ = knactor_net::proto::decode::<knactor_net::proto::Hello>(bytes);
    }
}
