//! The smart-home case study (Fig. 4), end to end — including the
//! sleep-hours access-control policy of §3.3.
//!
//! ```text
//! cargo run --example smart_home
//! ```

use knactor::apps::smarthome::knactor_app::{self, sleep_hours_policy, STATE_KEY};
use knactor::prelude::*;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() -> Result<()> {
    let (object, _log, client) = knactor::net::loopback::in_process(Subject::integrator("home"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    println!("deploying House, Motion, Lamp (each: Object store + Log store)...");
    let app = knactor_app::deploy(Arc::clone(&api)).await?;

    // Motion fires → the Cast raises the lamp to the house target.
    println!("\nmotion detected:");
    app.sense_motion(true).await?;
    app.wait_for_brightness(8.0, Duration::from_secs(5)).await?;
    println!("  lamp brightness -> {}", app.lamp_brightness().await?);

    // Motion clears → lamp off.
    app.sense_motion(false).await?;
    app.wait_for_brightness(0.0, Duration::from_secs(5)).await?;
    println!(
        "motion cleared:\n  lamp brightness -> {}",
        app.lamp_brightness().await?
    );

    // Telemetry: motion readings arrive in the House log, renamed by the
    // Sync integrator; energy rolls up into House state.
    tokio::time::sleep(Duration::from_millis(100)).await;
    let house_log = api.log_read("house/telemetry".into(), 0).await?;
    println!("\nhouse telemetry (via Sync, `triggered` renamed to `motion`):");
    for rec in &house_log {
        println!("  #{} {}", rec.seq, rec.fields);
    }
    if let Some(energy) = app.house_energy().await? {
        println!("house energy rollup: {energy:.3} kWh");
    }

    // Sleep hours: the integrator may not touch the lamp 22:00–07:00.
    println!("\nenabling sleep-hours policy (22:00-07:00)...");
    object.configure_access(sleep_hours_policy);
    object.set_access_context(AccessContext::at(23, 30));
    // The device writes through its own store (it is not the integrator).
    let motion = object.store(&"motion/config".into())?;
    motion.patch(
        &ObjectKey::new(STATE_KEY),
        &json!({"triggered": true}),
        false,
    )?;
    tokio::time::sleep(Duration::from_millis(200)).await;
    let lamp = object.store(&"lamp/config".into())?;
    let brightness = lamp.get(&ObjectKey::new(STATE_KEY))?.value["brightness"].clone();
    println!("  23:30, motion fired -> lamp stays at {brightness} (write denied)");
    assert_eq!(brightness, json!(0.0));

    object.set_access_context(AccessContext::at(8, 0));
    motion.patch(
        &ObjectKey::new(STATE_KEY),
        &json!({"triggered": false}),
        false,
    )?;
    motion.patch(
        &ObjectKey::new(STATE_KEY),
        &json!({"triggered": true}),
        false,
    )?;
    let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
    loop {
        let v = lamp.get(&ObjectKey::new(STATE_KEY))?.value["brightness"].clone();
        if v == json!(8.0) {
            println!("  08:00, motion fired -> lamp at {v} (policy allows again)");
            break;
        }
        assert!(
            tokio::time::Instant::now() < deadline,
            "lamp never lit after wake"
        );
        tokio::time::sleep(Duration::from_millis(10)).await;
    }

    app.shutdown().await;
    println!("done");
    Ok(())
}
