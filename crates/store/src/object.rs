//! Stored objects and state-retention bookkeeping.

use knactor_types::{ObjectKey, Revision, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How long a store keeps state objects around (§3.3, *State retention*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum RetentionPolicy {
    /// Objects live until explicitly deleted. The default.
    #[default]
    Forever,
    /// Objects are garbage-collected once every registered consumer has
    /// marked them processed (reference counting over state usage).
    RefCounted,
    /// Like `RefCounted`, but fully-consumed objects are retained for
    /// archival until the store holds more than `keep` of them, then the
    /// oldest are collected ("customized state retention policies for
    /// archival or analytical purposes").
    Archive { keep: usize },
}

/// One state object plus its retention metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredObject {
    pub key: ObjectKey,
    /// Shared with watch events and histories: reads hand out a reference
    /// bump, never a deep copy of the JSON tree.
    pub value: Arc<Value>,
    /// Store revision at which this object was last mutated.
    pub revision: Revision,
    /// Store revision at which this object was created.
    pub created_revision: Revision,
    /// Consumer name → has it finished processing the current value?
    /// Re-mutating the object resets all flags to `false`.
    #[serde(default)]
    pub consumers: BTreeMap<String, bool>,
}

impl StoredObject {
    pub fn new(key: ObjectKey, value: impl Into<Arc<Value>>, revision: Revision) -> StoredObject {
        StoredObject {
            key,
            value: value.into(),
            revision,
            created_revision: revision,
            consumers: BTreeMap::new(),
        }
    }

    /// True when at least one consumer is registered and all of them have
    /// processed the current value.
    pub fn fully_consumed(&self) -> bool {
        !self.consumers.is_empty() && self.consumers.values().all(|done| *done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn consumption_lifecycle() {
        let mut o = StoredObject::new(ObjectKey::new("k"), json!({}), Revision(1));
        assert!(!o.fully_consumed(), "no consumers registered yet");
        o.consumers.insert("cast".into(), false);
        o.consumers.insert("reconciler".into(), false);
        assert!(!o.fully_consumed());
        o.consumers.insert("cast".into(), true);
        assert!(!o.fully_consumed());
        o.consumers.insert("reconciler".into(), true);
        assert!(o.fully_consumed());
    }

    #[test]
    fn default_policy_is_forever() {
        assert_eq!(RetentionPolicy::default(), RetentionPolicy::Forever);
    }
}
