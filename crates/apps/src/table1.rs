//! Table 1 manifests: the composition tasks and the artifacts each one
//! touches, per approach.
//!
//! The paper compares the cost of three composition tasks in the retail
//! app under the API-centric approach vs Knactor, counting the required
//! operations (code change / config change / rebuild / redeploy), the
//! number of files, and the SLOC changed or used. This module declares,
//! for every task and approach, exactly which **real files in this
//! repository** implement the task; `knactor-bench`'s `table1` binary
//! measures them.
//!
//! Files created for a task count whole; regions of shared files are
//! delimited by `>>> TAG` / `<<< TAG` markers and only those lines count.

use std::collections::BTreeSet;
use std::path::PathBuf;

/// Table 1's operation kinds (the paper's c / f / b / d annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// `c` — source-code change.
    Code,
    /// `f` — configuration change.
    Config,
    /// `b` — service rebuild.
    Build,
    /// `d` — service redeploy.
    Deploy,
}

impl Op {
    pub fn letter(&self) -> char {
        match self {
            Op::Code => 'c',
            Op::Config => 'f',
            Op::Build => 'b',
            Op::Deploy => 'd',
        }
    }
}

/// One file (or marked region) a task touches.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Path relative to the `knactor-apps` crate root.
    pub path: &'static str,
    /// `Some(tag)` counts only lines inside `>>> tag` / `<<< tag` regions.
    pub marker: Option<&'static str>,
    pub ops: &'static [Op],
}

/// One Table 1 task with both approaches' artifact lists.
#[derive(Debug, Clone)]
pub struct TaskManifest {
    pub id: &'static str,
    pub description: &'static str,
    pub api: Vec<Artifact>,
    pub kn: Vec<Artifact>,
}

/// Measured cost of one approach to one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCost {
    pub ops: BTreeSet<Op>,
    pub files: usize,
    pub sloc: usize,
}

impl TaskCost {
    /// The paper's operations string, e.g. `c / f / b / d`.
    pub fn ops_string(&self) -> String {
        self.ops
            .iter()
            .map(|o| o.letter().to_string())
            .collect::<Vec<_>>()
            .join(" / ")
    }
}

/// The three tasks of Table 1.
pub fn manifests() -> Vec<TaskManifest> {
    vec![
        TaskManifest {
            id: "T1",
            description: "Compose Payment and Shipping with Checkout",
            api: vec![
                Artifact {
                    path: "assets/api/shipping_v1.proto",
                    marker: None,
                    ops: &[Op::Config],
                },
                Artifact {
                    path: "assets/api/payment_v1.proto",
                    marker: None,
                    ops: &[Op::Config],
                },
                Artifact {
                    path: "src/retail/stubs/shipping_v1.rs",
                    marker: None,
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "src/retail/stubs/payment_v1.rs",
                    marker: None,
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "src/retail/stubs/currency_v1.rs",
                    marker: None,
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "src/retail/rpc_app.rs",
                    marker: Some("T1-API"),
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "assets/api/checkout-endpoints.yaml",
                    marker: Some("T1-API"),
                    ops: &[Op::Config],
                },
                Artifact {
                    path: "assets/api/checkout-deployment.yaml",
                    marker: Some("T1-API"),
                    ops: &[Op::Config, Op::Deploy],
                },
            ],
            kn: vec![Artifact {
                path: "assets/retail_dxg.yaml",
                marker: None,
                ops: &[Op::Config],
            }],
        },
        TaskManifest {
            id: "T2",
            description: "Add a shipment policy based on the order price",
            api: vec![
                Artifact {
                    path: "src/retail/rpc_app.rs",
                    marker: Some("T2-API"),
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "assets/api/checkout-deployment-t2.yaml",
                    marker: Some("T2-API"),
                    ops: &[Op::Config, Op::Deploy],
                },
            ],
            kn: vec![Artifact {
                path: "assets/retail_dxg.yaml",
                marker: Some("T2-KN"),
                ops: &[Op::Config],
            }],
        },
        TaskManifest {
            id: "T3",
            description: "Update the Shipping schema (v1 → v2)",
            api: vec![
                Artifact {
                    path: "assets/api/shipping_v2.proto",
                    marker: None,
                    ops: &[Op::Config],
                },
                Artifact {
                    path: "src/retail/stubs/shipping_v2.rs",
                    marker: None,
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "src/retail/rpc_app.rs",
                    marker: Some("T3-API"),
                    ops: &[Op::Code, Op::Build],
                },
                Artifact {
                    path: "assets/api/shipping-endpoints-v2.yaml",
                    marker: Some("T3-API"),
                    ops: &[Op::Config],
                },
                Artifact {
                    path: "assets/api/checkout-deployment-t3.yaml",
                    marker: Some("T3-API"),
                    ops: &[Op::Config, Op::Deploy],
                },
            ],
            kn: vec![Artifact {
                path: "assets/retail_dxg_t3.yaml",
                marker: Some("T3-KN"),
                ops: &[Op::Config],
            }],
        },
    ]
}

fn apps_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// True for lines that count as source (non-blank, non-comment-only).
fn is_sloc(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty() && !t.starts_with("//") && !t.starts_with('#')
}

/// Count one artifact's SLOC.
pub fn count_sloc(artifact: &Artifact) -> std::io::Result<usize> {
    let path = apps_root().join(artifact.path);
    let text = std::fs::read_to_string(&path)?;
    Ok(match artifact.marker {
        None => text.lines().filter(|l| is_sloc(l)).count(),
        Some(tag) => {
            let open = format!(">>> {tag}");
            let close = format!("<<< {tag}");
            let mut inside = false;
            let mut count = 0;
            for line in text.lines() {
                if line.contains(&open) {
                    inside = true;
                } else if line.contains(&close) {
                    inside = false;
                } else if inside && is_sloc(line) {
                    count += 1;
                }
            }
            count
        }
    })
}

/// Measure one approach's artifacts.
pub fn measure(artifacts: &[Artifact]) -> std::io::Result<TaskCost> {
    let mut ops = BTreeSet::new();
    let mut files = BTreeSet::new();
    let mut sloc = 0;
    for a in artifacts {
        sloc += count_sloc(a)?;
        files.insert(a.path);
        ops.extend(a.ops.iter().copied());
    }
    Ok(TaskCost {
        ops,
        files: files.len(),
        sloc,
    })
}

/// Workspace path of an artifact, for reporting.
pub fn artifact_path(a: &Artifact) -> PathBuf {
    apps_root().join(a.path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_exists_and_counts_nonzero() {
        for task in manifests() {
            for a in task.api.iter().chain(task.kn.iter()) {
                let path = artifact_path(a);
                assert!(path.exists(), "{} missing", path.display());
                let sloc = count_sloc(a).unwrap();
                assert!(sloc > 0, "{} ({:?}) counted 0 SLOC", a.path, a.marker);
            }
        }
    }

    #[test]
    fn knactor_needs_only_config_changes() {
        for task in manifests() {
            let kn = measure(&task.kn).unwrap();
            assert_eq!(
                kn.ops.iter().copied().collect::<Vec<_>>(),
                vec![Op::Config],
                "{}: Knactor must be config-only",
                task.id
            );
            assert_eq!(kn.files, 1, "{}: Knactor touches one file", task.id);
        }
    }

    #[test]
    fn api_needs_code_build_deploy() {
        for task in manifests() {
            let api = measure(&task.api).unwrap();
            for op in [Op::Code, Op::Config, Op::Build, Op::Deploy] {
                assert!(api.ops.contains(&op), "{}: API side lacks {op:?}", task.id);
            }
        }
    }

    #[test]
    fn knactor_sloc_is_smaller_every_task() {
        for task in manifests() {
            let api = measure(&task.api).unwrap();
            let kn = measure(&task.kn).unwrap();
            assert!(
                kn.sloc < api.sloc,
                "{}: KN {} SLOC !< API {} SLOC",
                task.id,
                kn.sloc,
                api.sloc
            );
            assert!(kn.files <= api.files);
        }
    }

    #[test]
    fn t2_kn_is_tiny() {
        let t2 = &manifests()[1];
        let kn = measure(&t2.kn).unwrap();
        // The policy is a couple of spec lines.
        assert!(kn.sloc <= 3, "T2-KN should be ~2 lines, got {}", kn.sloc);
    }

    #[test]
    fn ops_string_formats_like_the_paper() {
        let cost = TaskCost {
            ops: [Op::Code, Op::Config, Op::Build, Op::Deploy]
                .into_iter()
                .collect(),
            files: 8,
            sloc: 109,
        };
        assert_eq!(cost.ops_string(), "c / f / b / d");
    }
}
