//! SLO reporting: read the percentiles back out of the metrics
//! registry and shape one JSON row per sweep config.
//!
//! The driver records latencies into the process-global registry (the
//! same one the server exports over `Request::Metrics` and
//! `to_prometheus`), so the report is computed from exactly the series
//! an operator would scrape — the harness has no private math to
//! disagree with production dashboards.

use crate::driver::RunOutcome;
use knactor_types::metrics::{self, HistogramSnapshot, MetricsSnapshot};
use serde_json::{json, Value};

/// Find the latency series for `(app, config)` in a snapshot.
pub fn latency_series<'s>(
    snapshot: &'s MetricsSnapshot,
    app: &str,
    config: &str,
) -> Option<&'s HistogramSnapshot> {
    snapshot.histograms.iter().find(|h| {
        h.name == "knactor_load_op_seconds"
            && h.labels.iter().any(|(k, v)| k == "app" && v == app)
            && h.labels.iter().any(|(k, v)| k == "config" && v == config)
    })
}

/// One report row: the outcome tallies joined with the registry's
/// percentile view of the same run. Latencies are milliseconds.
pub fn config_row(app: &str, outcome: &RunOutcome, snapshot: &MetricsSnapshot) -> Value {
    let series = latency_series(snapshot, app, &outcome.label);
    let ms = |q: Option<f64>| q.map(|s| s * 1e3);
    let (p50, p95, p99, max) = match series {
        Some(h) => (ms(h.p50()), ms(h.p95()), ms(h.p99()), ms(h.max_seconds())),
        None => (None, None, None, None),
    };
    json!({
        "app": app,
        "config": outcome.label,
        "target_rate": outcome.target_rate,
        "achieved_rate": outcome.achieved_rate,
        "issued": outcome.issued,
        "completed": outcome.completed(),
        "ok": outcome.ok,
        "miss": outcome.miss,
        "shed": outcome.shed,
        "errors": outcome.errors,
        "unsent": outcome.unsent,
        "abandoned": outcome.abandoned,
        "shed_rate": outcome.shed as f64 / outcome.issued.max(1) as f64,
        "error_rate": outcome.errors as f64 / outcome.issued.max(1) as f64,
        "p50_ms": p50,
        "p95_ms": p95,
        "p99_ms": p99,
        "max_ms": max,
        "watch_events": outcome.watch_events,
        "watch_sessions": outcome.watch_sessions,
        "elapsed_secs": outcome.elapsed.as_secs_f64(),
    })
}

/// Snapshot the global registry (the bin also dumps this to
/// `metrics.prom` beside the JSON report).
pub fn global_snapshot() -> MetricsSnapshot {
    metrics::global().snapshot()
}
