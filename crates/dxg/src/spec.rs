//! DXG specification model and parser.

use knactor_expr::Expr;
use knactor_types::{Error, FieldPath, Result};
use knactor_yamlish::{Node, Yaml};
use std::collections::BTreeMap;

/// A parsed `Input` entry: `C: OnlineRetail/v1/Checkout/knactor-checkout`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputRef {
    pub raw: String,
    /// `group/version/service` when the reference is fully qualified.
    pub group: Option<String>,
    pub version: Option<String>,
    pub service: Option<String>,
    /// The knactor name (last path component).
    pub knactor: String,
}

impl InputRef {
    pub fn parse(raw: &str) -> InputRef {
        let parts: Vec<&str> = raw.split('/').collect();
        match parts.as_slice() {
            [group, version, service, knactor] => InputRef {
                raw: raw.to_string(),
                group: Some(group.to_string()),
                version: Some(version.to_string()),
                service: Some(service.to_string()),
                knactor: knactor.to_string(),
            },
            _ => InputRef {
                raw: raw.to_string(),
                group: None,
                version: None,
                service: None,
                knactor: parts.last().unwrap_or(&raw).to_string(),
            },
        }
    }
}

/// One assignment: write `expr` to `target_alias` at `base + path`.
#[derive(Debug, Clone)]
pub struct Assignment {
    pub target_alias: String,
    /// Base path from a dotted DXG key (`C.order` → base `order`).
    pub target_base: FieldPath,
    /// Path below the base (nested mapping keys).
    pub target_field: FieldPath,
    /// The expression with `this` already resolved to the target alias +
    /// base (so dependency analysis and pushdown see real references).
    pub expr: Expr,
    /// Original source text, for diagnostics and serialization.
    pub source: String,
    /// Source line of the assignment in the spec document.
    pub line: usize,
}

impl Assignment {
    /// Full path written inside the target object.
    pub fn target_path(&self) -> FieldPath {
        let mut segments = self.target_base.segments.clone();
        segments.extend(self.target_field.segments.iter().cloned());
        FieldPath { segments }
    }

    /// The write, rendered as `alias.path` (diagnostics, graph nodes).
    pub fn write_ref(&self) -> String {
        let p = self.target_path();
        if p.is_root() {
            self.target_alias.clone()
        } else {
            format!("{}.{}", self.target_alias, p)
        }
    }

    /// The reads, rendered as `alias.path` strings.
    pub fn read_refs(&self) -> Vec<String> {
        self.expr.reference_paths()
    }
}

/// A parsed DXG document.
#[derive(Debug, Clone)]
pub struct Dxg {
    pub inputs: BTreeMap<String, InputRef>,
    pub assignments: Vec<Assignment>,
}

impl Dxg {
    /// Parse a YAML-subset DXG document (Fig. 6 format).
    pub fn parse(text: &str) -> Result<Dxg> {
        let doc = knactor_yamlish::parse(text)?;
        Self::from_node(&doc)
    }

    /// Build from an already-parsed YAML node.
    pub fn from_node(doc: &Node) -> Result<Dxg> {
        let mut inputs = BTreeMap::new();
        let input_node = doc
            .get("Input")
            .ok_or_else(|| Error::Dxg("missing 'Input' section".to_string()))?;
        for (alias, value) in input_node.entries()? {
            if alias == "this" {
                return Err(Error::Dxg("'this' cannot be an input alias".to_string()));
            }
            inputs.insert(alias.clone(), InputRef::parse(value.as_str()?));
        }
        if inputs.is_empty() {
            return Err(Error::Dxg("'Input' section is empty".to_string()));
        }

        let dxg_node = doc
            .get("DXG")
            .ok_or_else(|| Error::Dxg("missing 'DXG' section".to_string()))?;
        let mut assignments = Vec::new();
        for (key, value) in dxg_node.entries()? {
            // `C` or `C.order` — alias plus optional base path.
            let (alias, base) = match key.split_once('.') {
                Some((alias, base)) => (alias.to_string(), FieldPath::parse(base)?),
                None => (key.clone(), FieldPath::root()),
            };
            if !inputs.contains_key(&alias) {
                return Err(Error::Dxg(format!(
                    "DXG key '{key}' references undeclared alias '{alias}'"
                )));
            }
            collect_assignments(
                &alias,
                &base,
                FieldPath::root(),
                value,
                &inputs,
                &mut assignments,
            )?;
        }
        if assignments.is_empty() {
            return Err(Error::Dxg(
                "'DXG' section declares no assignments".to_string(),
            ));
        }
        Ok(Dxg {
            inputs,
            assignments,
        })
    }

    /// Aliases that some assignment writes to.
    pub fn target_aliases(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .assignments
            .iter()
            .map(|a| a.target_alias.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Aliases read by at least one expression.
    pub fn source_aliases(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .assignments
            .iter()
            .flat_map(|a| a.expr.free_roots())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The per-target-alias slice of this graph: every assignment that
    /// writes `target`, with `Input` restricted to the aliases that
    /// slice reads or writes. This is the **edge** unit of live
    /// reconfiguration — the composer runs one integrator per edge, so
    /// a change confined to one target alias disturbs only that
    /// integrator. Returns `None` when nothing writes `target`.
    pub fn edge(&self, target: &str) -> Option<Dxg> {
        let assignments: Vec<Assignment> = self
            .assignments
            .iter()
            .filter(|a| a.target_alias == target)
            .cloned()
            .collect();
        if assignments.is_empty() {
            return None;
        }
        let mut aliases: std::collections::BTreeSet<String> = assignments
            .iter()
            .flat_map(|a| a.expr.free_roots())
            .collect();
        aliases.insert(target.to_string());
        let inputs = self
            .inputs
            .iter()
            .filter(|(alias, _)| aliases.contains(*alias))
            .map(|(alias, r)| (alias.clone(), r.clone()))
            .collect();
        Some(Dxg {
            inputs,
            assignments,
        })
    }

    /// All edges of the graph, keyed by target alias (see [`Dxg::edge`]).
    pub fn edges(&self) -> BTreeMap<String, Dxg> {
        self.target_aliases()
            .into_iter()
            .filter_map(|t| self.edge(&t).map(|e| (t, e)))
            .collect()
    }
}

fn collect_assignments(
    alias: &str,
    base: &FieldPath,
    at: FieldPath,
    node: &Node,
    inputs: &BTreeMap<String, InputRef>,
    out: &mut Vec<Assignment>,
) -> Result<()> {
    match &node.yaml {
        Yaml::Map(entries) => {
            for (field, child) in entries {
                let path = extend(&at, field)?;
                collect_assignments(alias, base, path, child, inputs, out)?;
            }
            Ok(())
        }
        Yaml::Scalar(v) => {
            let src = v.as_str().ok_or_else(|| {
                Error::Dxg(format!(
                    "assignment '{}.{at}' must be an expression string, got {v}",
                    alias
                ))
            })?;
            let raw = knactor_expr::parse_expr(src)?;
            // Resolve `this` to the target alias + base so everything
            // downstream sees concrete references.
            let expr = substitute_this(&raw, alias, base);
            for root in expr.free_roots() {
                if !inputs.contains_key(&root) {
                    return Err(Error::Dxg(format!(
                        "expression '{src}' references undeclared alias '{root}' (line {})",
                        node.line
                    )));
                }
            }
            out.push(Assignment {
                target_alias: alias.to_string(),
                target_base: base.clone(),
                target_field: at,
                expr,
                source: src.to_string(),
                line: node.line,
            });
            Ok(())
        }
        Yaml::Seq(_) => Err(Error::Dxg(format!(
            "unexpected sequence at '{alias}.{at}' (line {})",
            node.line
        ))),
    }
}

fn extend(base: &FieldPath, key: &str) -> Result<FieldPath> {
    let rel = FieldPath::parse(key)?;
    let mut segments = base.segments.clone();
    segments.extend(rel.segments);
    Ok(FieldPath { segments })
}

/// Replace free occurrences of `this` with `alias` followed by `base`.
pub fn substitute_this(expr: &Expr, alias: &str, base: &FieldPath) -> Expr {
    fn target_expr(alias: &str, base: &FieldPath) -> Expr {
        let mut e = Expr::Ident(alias.to_string());
        for seg in &base.segments {
            match seg {
                knactor_types::path::Segment::Field(f) => {
                    e = Expr::Member(Box::new(e), f.clone());
                }
                knactor_types::path::Segment::Index(i) => {
                    e = Expr::Index(
                        Box::new(e),
                        Box::new(Expr::Literal(serde_json::Value::from(*i as u64))),
                    );
                }
            }
        }
        e
    }
    fn walk(expr: &Expr, alias: &str, base: &FieldPath, bound: &mut Vec<String>) -> Expr {
        match expr {
            Expr::Ident(name) if name == "this" && !bound.iter().any(|b| b == "this") => {
                target_expr(alias, base)
            }
            Expr::Ident(_) | Expr::Literal(_) => expr.clone(),
            Expr::Member(b, f) => Expr::Member(Box::new(walk(b, alias, base, bound)), f.clone()),
            Expr::Index(b, i) => Expr::Index(
                Box::new(walk(b, alias, base, bound)),
                Box::new(walk(i, alias, base, bound)),
            ),
            Expr::Call(name, args) => Expr::Call(
                name.clone(),
                args.iter().map(|a| walk(a, alias, base, bound)).collect(),
            ),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(walk(l, alias, base, bound)),
                Box::new(walk(r, alias, base, bound)),
            ),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(walk(e, alias, base, bound))),
            Expr::If {
                then,
                cond,
                otherwise,
            } => Expr::If {
                then: Box::new(walk(then, alias, base, bound)),
                cond: Box::new(walk(cond, alias, base, bound)),
                otherwise: Box::new(walk(otherwise, alias, base, bound)),
            },
            Expr::Comprehension {
                body,
                var,
                source,
                filter,
            } => {
                let source = Box::new(walk(source, alias, base, bound));
                bound.push(var.clone());
                let body = Box::new(walk(body, alias, base, bound));
                let filter = filter
                    .as_ref()
                    .map(|f| Box::new(walk(f, alias, base, bound)));
                bound.pop();
                Expr::Comprehension {
                    body,
                    var: var.clone(),
                    source,
                    filter,
                }
            }
            Expr::List(items) => {
                Expr::List(items.iter().map(|i| walk(i, alias, base, bound)).collect())
            }
        }
    }
    walk(expr, alias, base, &mut Vec::new())
}

/// The paper's Fig. 6 spec, verbatim-equivalent, used by tests, examples,
/// and benchmarks.
pub const FIG6_RETAIL_DXG: &str = r#"
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig6() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        assert_eq!(dxg.inputs.len(), 3);
        assert_eq!(dxg.inputs["C"].service.as_deref(), Some("Checkout"));
        assert_eq!(dxg.inputs["C"].knactor, "knactor-checkout");
        assert_eq!(dxg.assignments.len(), 8);
        let aliases = dxg.target_aliases();
        assert_eq!(aliases, vec!["C", "P", "S"]);
        assert_eq!(dxg.source_aliases(), vec!["C", "P", "S"]);
    }

    #[test]
    fn this_resolves_to_target_base() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let shipping_cost = dxg
            .assignments
            .iter()
            .find(|a| a.write_ref() == "C.order.shippingCost")
            .unwrap();
        // this.currency became C.order.currency.
        assert!(shipping_cost
            .read_refs()
            .contains(&"C.order.currency".to_string()));
        assert!(!shipping_cost.source.is_empty());
    }

    #[test]
    fn target_paths_compose_base_and_field() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let pay = dxg
            .assignments
            .iter()
            .find(|a| a.target_alias == "P" && a.target_field.to_string() == "amount")
            .unwrap();
        assert!(pay.target_base.is_root());
        assert_eq!(pay.target_path().to_string(), "amount");
        assert_eq!(pay.write_ref(), "P.amount");
    }

    #[test]
    fn nested_mapping_extends_path() {
        let src = r#"
Input:
  A: g/v/s/k
DXG:
  A:
    outer:
      inner: "1"
      other: "2"
"#;
        let dxg = Dxg::parse(src).unwrap();
        let refs: Vec<String> = dxg.assignments.iter().map(|a| a.write_ref()).collect();
        assert_eq!(refs, vec!["A.outer.inner", "A.outer.other"]);
    }

    #[test]
    fn undeclared_alias_in_key_rejected() {
        let src = "Input:\n  A: g/v/s/k\nDXG:\n  B:\n    x: '1'\n";
        assert!(matches!(Dxg::parse(src), Err(Error::Dxg(_))));
    }

    #[test]
    fn undeclared_alias_in_expr_rejected() {
        let src = "Input:\n  A: g/v/s/k\nDXG:\n  A:\n    x: B.y\n";
        let err = Dxg::parse(src).unwrap_err();
        assert!(matches!(err, Error::Dxg(ref m) if m.contains("'B'")));
    }

    #[test]
    fn this_cannot_be_alias() {
        let src = "Input:\n  this: g/v/s/k\nDXG:\n  this:\n    x: '1'\n";
        assert!(Dxg::parse(src).is_err());
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(Dxg::parse("DXG:\n  A:\n    x: '1'\n").is_err());
        assert!(Dxg::parse("Input:\n  A: g/v/s/k\n").is_err());
        assert!(Dxg::parse("Input:\n  A: g/v/s/k\nDXG:\n").is_err());
    }

    #[test]
    fn non_string_assignment_rejected() {
        let src = "Input:\n  A: g/v/s/k\nDXG:\n  A:\n    x: 42\n";
        assert!(matches!(Dxg::parse(src), Err(Error::Dxg(_))));
    }

    #[test]
    fn bad_expression_rejected() {
        let src = "Input:\n  A: g/v/s/k\nDXG:\n  A:\n    x: 'A.y +'\n";
        assert!(Dxg::parse(src).is_err());
    }

    #[test]
    fn input_ref_parsing() {
        let full = InputRef::parse("OnlineRetail/v1/Checkout/knactor-checkout");
        assert_eq!(full.group.as_deref(), Some("OnlineRetail"));
        assert_eq!(full.version.as_deref(), Some("v1"));
        assert_eq!(full.knactor, "knactor-checkout");
        let short = InputRef::parse("just-a-name");
        assert_eq!(short.group, None);
        assert_eq!(short.knactor, "just-a-name");
    }

    #[test]
    fn substitute_this_respects_comprehension_shadowing() {
        let expr = knactor_expr::parse_expr("[this for this in this.items]").unwrap();
        let base = FieldPath::parse("order").unwrap();
        let out = substitute_this(&expr, "C", &base);
        // The *source* `this.items` resolves; the body `this` is the bound
        // comprehension variable and stays.
        assert_eq!(out.to_string(), "[this for this in C.order.items]");
    }
}
