//! Offline stand-in for `proptest`: deterministic pseudo-random input
//! generation with the same macro-level API surface. Strategies generate
//! values directly (no shrinking); each test's RNG is seeded from the test
//! name so failures reproduce exactly across runs.
#![allow(clippy::all)]

pub mod test_runner {
    /// Number of generated cases per property.
    pub const CASES: usize = 96;

    /// xorshift64* generator — deterministic and dependency-free.
    pub struct Rng(u64);

    impl Rng {
        pub fn seed_from_name(name: &str) -> Rng {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Rng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        /// The inputs did not satisfy an assumption; generate a fresh case.
        Reject,
        Fail(String),
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::Range;
    use std::sync::Arc;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy {
                gen: Arc::new(move |rng| s.generate(rng)),
            }
        }

        /// Build a recursive strategy: `depth` levels of `recurse` layered
        /// over the base, choosing base vs deeper uniformly at each level.
        fn prop_recursive<R>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: impl Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::new(vec![base.clone(), deeper]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        gen: Arc<dyn Fn(&mut Rng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Arc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            (self.gen)(rng)
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut Rng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.whence
            );
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-typed strategies (used by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    // ---- primitive strategies ----

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+);)+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// `&'static str` patterns generate strings from a small regex subset:
    /// literals, escapes, `[...]` classes with ranges, `(...)` groups, and
    /// `{n}`/`{m,n}` quantifiers — covering every pattern in this workspace.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut Rng) -> String {
            let atoms = parse_pattern(self.as_bytes());
            let mut out = String::new();
            gen_atoms(&atoms, rng, &mut out);
            out
        }
    }

    enum Atom {
        Lit(char),
        Class(Vec<char>),
        Group(Vec<(Atom, (usize, usize))>),
    }

    type Quantified = (Atom, (usize, usize));

    fn parse_pattern(mut s: &[u8]) -> Vec<Quantified> {
        let mut atoms = Vec::new();
        while !s.is_empty() {
            let (atom, rest) = parse_atom(s);
            let (quant, rest) = parse_quant(rest);
            atoms.push((atom, quant));
            s = rest;
        }
        atoms
    }

    fn parse_atom(s: &[u8]) -> (Atom, &[u8]) {
        match s[0] {
            b'[' => {
                let close = find_class_end(s);
                (Atom::Class(expand_class(&s[1..close])), &s[close + 1..])
            }
            b'(' => {
                let close = find_group_end(s);
                (Atom::Group(parse_pattern(&s[1..close])), &s[close + 1..])
            }
            b'\\' => (Atom::Lit(unescape(s[1])), &s[2..]),
            c => (Atom::Lit(c as char), &s[1..]),
        }
    }

    fn find_class_end(s: &[u8]) -> usize {
        let mut i = 1;
        while i < s.len() {
            match s[i] {
                b'\\' => i += 2,
                b']' => return i,
                _ => i += 1,
            }
        }
        panic!("unterminated character class in pattern");
    }

    fn find_group_end(s: &[u8]) -> usize {
        let mut depth = 0usize;
        let mut i = 0;
        while i < s.len() {
            match s[i] {
                b'\\' => i += 2,
                b'(' => {
                    depth += 1;
                    i += 1;
                }
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        panic!("unterminated group in pattern");
    }

    fn unescape(c: u8) -> char {
        match c {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            other => other as char,
        }
    }

    fn expand_class(body: &[u8]) -> Vec<char> {
        let mut chars = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let c = if body[i] == b'\\' {
                i += 1;
                unescape(body[i])
            } else {
                body[i] as char
            };
            // Range like `a-z` (a trailing `-` is a literal).
            if i + 2 < body.len() && body[i + 1] == b'-' {
                let hi = body[i + 2] as char;
                for v in (c as u32)..=(hi as u32) {
                    chars.push(char::from_u32(v).unwrap());
                }
                i += 3;
            } else {
                chars.push(c);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty character class in pattern");
        chars
    }

    /// Parse an optional `{n}` / `{m,n}` quantifier; default is exactly one.
    fn parse_quant(s: &[u8]) -> ((usize, usize), &[u8]) {
        if s.first() != Some(&b'{') {
            return ((1, 1), s);
        }
        let close = s
            .iter()
            .position(|&b| b == b'}')
            .expect("unterminated quantifier");
        let body = std::str::from_utf8(&s[1..close]).unwrap();
        let (lo, hi) = match body.split_once(',') {
            Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
            None => {
                let n = body.parse().unwrap();
                (n, n)
            }
        };
        ((lo, hi), &s[close + 1..])
    }

    fn gen_atoms(atoms: &[Quantified], rng: &mut Rng, out: &mut String) {
        for (atom, (lo, hi)) in atoms {
            let count = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
            for _ in 0..count {
                match atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(chars) => out.push(chars[rng.below(chars.len())]),
                    Atom::Group(inner) => gen_atoms(inner, rng, out),
                }
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut Rng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut Rng) -> BTreeSet<S::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::Rng::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __cases = 0usize;
                let mut __rejects = 0usize;
                while __cases < $crate::test_runner::CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __cases += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < 4096,
                                "{}: too many rejected cases",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("{} failed at case {}: {}", stringify!($name), __cases, msg);
                        }
                    }
                }
            }
        )+
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_patterns_generate_expected_shapes() {
        let mut rng = crate::test_runner::Rng::seed_from_name("shapes");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}/[a-z]{1,6}", &mut rng);
            let (a, b) = s.split_once('/').expect("slash literal");
            assert!((1..=6).contains(&a.len()) && a.bytes().all(|c| c.is_ascii_lowercase()));
            assert!((1..=6).contains(&b.len()) && b.bytes().all(|c| c.is_ascii_lowercase()));

            let p = Strategy::generate(&"[a-z]{1,5}(\\.[a-z]{1,5}){0,2}", &mut rng);
            assert!(p.split('.').count() <= 3 && p.split('.').all(|seg| !seg.is_empty()));

            let h = Strategy::generate(&"[a-z0-9-]{1,8}", &mut rng);
            assert!((1..=8).contains(&h.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(v in 0usize..50, flag in any::<bool>()) {
            prop_assume!(v != 13);
            prop_assert!(v < 50);
            if flag {
                prop_assert_ne!(v, 13);
            }
        }
    }
}
