//! The online-retail application (the paper's first case study).
//!
//! Eleven services, mirroring the microservices demo the paper studied:
//! Frontend, ProductCatalog, Cart, Checkout, Shipping, Payment, Currency,
//! Email, Recommendation, Ad, Inventory. The flow under the microscope is
//! the **shipment request** (Fig. 3): an order checked out in Checkout
//! must produce a payment in Payment and a shipment in Shipping, with the
//! shipping cost, payment id, and tracking id flowing back into the
//! order.

pub mod knactor_app;
pub mod rpc_app;
pub mod stubs;

use knactor_types::Value;
use serde_json::json;

/// The eleven service names.
pub const SERVICES: [&str; 11] = [
    "frontend",
    "productcatalog",
    "cart",
    "checkout",
    "shipping",
    "payment",
    "currency",
    "email",
    "recommendation",
    "ad",
    "inventory",
];

/// A checked-out order, in the shape of the Fig. 5 Checkout schema.
pub fn sample_order(cost: f64) -> Value {
    json!({
        "order": {
            // `items: object` per Fig. 5 — a map keyed by product id
            // (the comprehension in the DXG iterates its values).
            "items": {
                "mug": {"name": "mug", "qty": 2, "unitPrice": cost / 4.0},
                "poster": {"name": "poster", "qty": 1, "unitPrice": cost / 2.0}
            },
            "address": "2570 Soda Hall, Berkeley CA",
            "cost": cost,
            "totalCost": cost * 1.0825,
            "currency": "USD"
        }
    })
}

/// Simulated carrier quote for a shipment (deterministic in the item
/// count so tests can assert on it).
pub fn carrier_quote(item_count: usize) -> Value {
    json!({
        "price": 4.0 + item_count as f64 * 2.5,
        "currency": "USD"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_order_matches_schema_shape() {
        let schema = knactor_core::parse_schema(
            &std::fs::read_to_string(crate::crate_file("assets/checkout_schema.yaml")).unwrap(),
        )
        .unwrap();
        let order = sample_order(100.0);
        schema.validate(&order["order"]).unwrap();
    }

    #[test]
    fn carrier_quote_is_deterministic() {
        assert_eq!(carrier_quote(2), carrier_quote(2));
        assert_eq!(carrier_quote(2)["price"], json!(9.0));
    }
}
