//! Structural diffing of DXG specifications.
//!
//! Run-time reconfiguration (§3.3) swaps one spec for another; operators
//! reviewing such a change want to know *what the exchange will do
//! differently*, not a textual diff of YAML. [`diff`] compares two specs
//! at the assignment level: added, removed, and rewritten assignments,
//! plus input-binding changes. `knactorctl dxg diff` exposes it, and it
//! is exactly the audit record a marketplace of shared integrators
//! (§5, *Ecosystem*) would attach to an upgrade.

use crate::spec::Dxg;
use std::collections::{BTreeMap, BTreeSet};

/// One assignment-level change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// Present in `new` only: this state starts being filled.
    Added { target: String, expr: String },
    /// Present in `old` only: this state stops being filled.
    Removed { target: String, expr: String },
    /// Same target, different expression.
    Rewritten {
        target: String,
        old_expr: String,
        new_expr: String,
    },
    /// An input alias appeared or disappeared, or its reference changed.
    InputChanged {
        alias: String,
        old: Option<String>,
        new: Option<String>,
    },
}

impl Change {
    /// The target alias this change writes through (`S.method` → `S`).
    /// `None` for input-binding changes, which have no single target —
    /// use [`affected_targets`] to expand those.
    pub fn target_alias(&self) -> Option<&str> {
        match self {
            Change::Added { target, .. }
            | Change::Removed { target, .. }
            | Change::Rewritten { target, .. } => Some(target.split('.').next().unwrap_or(target)),
            Change::InputChanged { .. } => None,
        }
    }
}

/// The set of target aliases (edges, in the [`crate::Dxg::edge`] sense)
/// a change list disturbs. Assignment-level changes map to the alias
/// they write; an input change touches every edge that reads *or*
/// writes the changed alias in either spec. `Composer::apply` restarts
/// exactly this set and nothing else.
pub fn affected_targets(old: &Dxg, new: &Dxg, changes: &[Change]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for change in changes {
        match change.target_alias() {
            Some(alias) => {
                out.insert(alias.to_string());
            }
            None => {
                let Change::InputChanged { alias, .. } = change else {
                    continue;
                };
                for dxg in [old, new] {
                    for a in &dxg.assignments {
                        if a.target_alias == *alias || a.expr.free_roots().contains(alias) {
                            out.insert(a.target_alias.clone());
                        }
                    }
                }
            }
        }
    }
    out
}

impl std::fmt::Display for Change {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Change::Added { target, expr } => write!(f, "+ {target} = {expr}"),
            Change::Removed { target, expr } => write!(f, "- {target} = {expr}"),
            Change::Rewritten {
                target,
                old_expr,
                new_expr,
            } => {
                write!(f, "~ {target}: {old_expr}  ->  {new_expr}")
            }
            Change::InputChanged { alias, old, new } => match (old, new) {
                (None, Some(n)) => write!(f, "+ input {alias}: {n}"),
                (Some(o), None) => write!(f, "- input {alias}: {o}"),
                (Some(o), Some(n)) => write!(f, "~ input {alias}: {o} -> {n}"),
                (None, None) => write!(f, "? input {alias}"),
            },
        }
    }
}

/// Compare two specs. Assignments are keyed by their write reference
/// (`alias.path`); expressions compare by printed form, so formatting
/// and `this`-sugar differences do not register as changes.
pub fn diff(old: &Dxg, new: &Dxg) -> Vec<Change> {
    let mut changes = Vec::new();

    // Inputs.
    let mut aliases: Vec<&String> = old.inputs.keys().chain(new.inputs.keys()).collect();
    aliases.sort();
    aliases.dedup();
    for alias in aliases {
        let o = old.inputs.get(alias).map(|r| r.raw.clone());
        let n = new.inputs.get(alias).map(|r| r.raw.clone());
        if o != n {
            changes.push(Change::InputChanged {
                alias: alias.clone(),
                old: o,
                new: n,
            });
        }
    }

    // Assignments by write ref.
    let index = |dxg: &Dxg| -> BTreeMap<String, String> {
        dxg.assignments
            .iter()
            .map(|a| (a.write_ref(), a.expr.to_string()))
            .collect()
    };
    let old_map = index(old);
    let new_map = index(new);
    for (target, old_expr) in &old_map {
        match new_map.get(target) {
            None => changes.push(Change::Removed {
                target: target.clone(),
                expr: old_expr.clone(),
            }),
            Some(new_expr) if new_expr != old_expr => changes.push(Change::Rewritten {
                target: target.clone(),
                old_expr: old_expr.clone(),
                new_expr: new_expr.clone(),
            }),
            Some(_) => {}
        }
    }
    for (target, expr) in &new_map {
        if !old_map.contains_key(target) {
            changes.push(Change::Added {
                target: target.clone(),
                expr: expr.clone(),
            });
        }
    }
    changes
}

/// True when the two specs produce identical exchanges.
pub fn equivalent(old: &Dxg, new: &Dxg) -> bool {
    diff(old, new).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FIG6_RETAIL_DXG;

    #[test]
    fn identical_specs_are_equivalent() {
        let a = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let b = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn formatting_differences_do_not_register() {
        let a = Dxg::parse("Input:\n  A: g/v/s/a\nDXG:\n  A:\n    x: 1 +   2\n").unwrap();
        let b = Dxg::parse("Input:\n  A: g/v/s/a\nDXG:\n  A:\n    x: >\n      1 + 2\n").unwrap();
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn policy_change_is_a_rewrite() {
        let old = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let new =
            Dxg::parse(&FIG6_RETAIL_DXG.replace("C.order.cost > 1000", "C.order.cost > 2000"))
                .unwrap();
        let changes = diff(&old, &new);
        assert_eq!(changes.len(), 1);
        match &changes[0] {
            Change::Rewritten {
                target,
                old_expr,
                new_expr,
            } => {
                assert_eq!(target, "S.method");
                assert!(old_expr.contains("1000"));
                assert!(new_expr.contains("2000"));
            }
            other => panic!("expected rewrite, got {other:?}"),
        }
        assert!(changes[0].to_string().starts_with("~ S.method"));
    }

    #[test]
    fn added_and_removed_assignments() {
        let old = Dxg::parse("Input:\n  A: g/v/s/a\nDXG:\n  A:\n    x: '1'\n    y: '2'\n").unwrap();
        let new = Dxg::parse("Input:\n  A: g/v/s/a\nDXG:\n  A:\n    x: '1'\n    z: '3'\n").unwrap();
        let changes = diff(&old, &new);
        // The YAML-quoted '2' is the expression `2`, printed as `2.0`.
        assert!(changes.contains(&Change::Removed {
            target: "A.y".into(),
            expr: "2.0".into()
        }));
        assert!(changes.contains(&Change::Added {
            target: "A.z".into(),
            expr: "3.0".into()
        }));
        assert_eq!(changes.len(), 2);
    }

    #[test]
    fn edge_retarget_is_remove_plus_add() {
        // The same field moves to a new destination alias: the old edge
        // stops being filled, the new one starts — never a rewrite.
        let old = Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\n  C: g/v/s/c\nDXG:\n  B:\n    x: A.v\n",
        )
        .unwrap();
        let new = Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\n  C: g/v/s/c\nDXG:\n  C:\n    x: A.v\n",
        )
        .unwrap();
        let changes = diff(&old, &new);
        assert_eq!(changes.len(), 2);
        assert!(changes
            .iter()
            .any(|c| matches!(c, Change::Removed { target, .. } if target == "B.x")));
        assert!(changes
            .iter()
            .any(|c| matches!(c, Change::Added { target, .. } if target == "C.x")));
        // Exactly the two destinations' edges are disturbed; A's is not.
        let affected = affected_targets(&old, &new, &changes);
        assert_eq!(
            affected.into_iter().collect::<Vec<_>>(),
            vec!["B".to_string(), "C".to_string()]
        );
    }

    #[test]
    fn expression_only_change_touches_one_edge() {
        let old = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let new =
            Dxg::parse(&FIG6_RETAIL_DXG.replace("C.order.cost > 1000", "C.order.cost > 2000"))
                .unwrap();
        let changes = diff(&old, &new);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].target_alias(), Some("S"));
        let affected = affected_targets(&old, &new, &changes);
        assert_eq!(affected.into_iter().collect::<Vec<_>>(), vec!["S"]);
    }

    #[test]
    fn store_rename_affects_every_edge_touching_the_alias() {
        // Shipping's input reference changes (store/service rename):
        // every edge reading or writing S must restart — C (reads S.quote,
        // S.id) and S (written) — but P's edge reads only C and survives.
        let old = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let new = Dxg::parse(
            &FIG6_RETAIL_DXG.replace("OnlineRetail/v1/Shipping", "OnlineRetail/v1/ShippingEU"),
        )
        .unwrap();
        let changes = diff(&old, &new);
        assert_eq!(changes.len(), 1);
        assert!(matches!(&changes[0], Change::InputChanged { alias, .. } if alias == "S"));
        assert_eq!(changes[0].target_alias(), None);
        let affected = affected_targets(&old, &new, &changes);
        assert_eq!(
            affected.into_iter().collect::<Vec<_>>(),
            vec!["C".to_string(), "S".to_string()]
        );
    }

    #[test]
    fn reordered_but_identical_graphs_are_equivalent() {
        // Same inputs and assignments, declared in a different order:
        // no exchange-level change, so a composer apply must not restart
        // anything.
        let a = Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\nDXG:\n  A:\n    x: B.u\n    y: B.v\n  B:\n    w: '1'\n",
        )
        .unwrap();
        let b = Dxg::parse(
            "Input:\n  B: g/v/s/b\n  A: g/v/s/a\nDXG:\n  B:\n    w: '1'\n  A:\n    y: B.v\n    x: B.u\n",
        )
        .unwrap();
        assert!(equivalent(&a, &b));
        assert!(affected_targets(&a, &b, &diff(&a, &b)).is_empty());
    }

    #[test]
    fn input_changes_detected() {
        let old = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        // Shipping evolves to v2 (task T3's Input line).
        let new = Dxg::parse(
            &FIG6_RETAIL_DXG.replace("OnlineRetail/v1/Shipping", "OnlineRetail/v2/Shipping"),
        )
        .unwrap();
        let changes = diff(&old, &new);
        assert!(changes.iter().any(|c| matches!(
            c,
            Change::InputChanged { alias, old: Some(o), new: Some(n) }
                if alias == "S" && o.contains("/v1/") && n.contains("/v2/")
        )));
    }
}
