//! In-process transport: the zero-copy deployment.
//!
//! A [`LoopbackClient`] implements [`ExchangeApi`] directly against
//! in-process exchanges. Values move as `serde_json::Value` clones with
//! **no serialization, framing, or syscalls** — this is the §3.3
//! "zero-copy data exchange between DE and integrator" configuration, and
//! the baseline the TCP transport is benchmarked against.
//!
//! Access control and engine-profile latency still apply: they are
//! properties of the exchange, not of the transport.

use crate::api::{BoxFuture, ExchangeApi, TailRx, WatchRx};
use crate::proto::{ProfileSpec, QuerySpec};
use knactor_logstore::{LogExchange, LogRecord};
use knactor_rbac::Subject;
use knactor_store::udf::UdfAssignment;
use knactor_store::{BatchOp, DataExchange, ItemResult, StoredObject, TxOp, UdfBinding};
use knactor_types::{ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use std::path::PathBuf;
use std::sync::Arc;

/// Client bound directly to in-process exchanges.
#[derive(Clone)]
pub struct LoopbackClient {
    object: Arc<DataExchange>,
    log: Arc<LogExchange>,
    subject: Subject,
    /// Where `ProfileSpec::Apiserver` stores roots its WAL files.
    data_dir: PathBuf,
}

impl LoopbackClient {
    pub fn new(object: Arc<DataExchange>, log: Arc<LogExchange>, subject: Subject) -> Self {
        LoopbackClient {
            object,
            log,
            subject,
            data_dir: std::env::temp_dir().join("knactor-loopback"),
        }
    }

    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = dir.into();
        self
    }

    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The same exchanges viewed as a different subject.
    pub fn as_subject(&self, subject: Subject) -> LoopbackClient {
        LoopbackClient {
            subject,
            ..self.clone()
        }
    }

    fn subject_str(&self) -> String {
        self.subject.to_string()
    }
}

impl ExchangeApi for LoopbackClient {
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            let profile = profile.materialize(&self.data_dir, &store);
            self.object.create_store(store, profile)?;
            Ok(())
        })
    }

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .create(key, value)
                .await
        })
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .get(&key)
                .await
        })
    }

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .list()
                .await
        })
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .update(&key, value, expected)
                .await
        })
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .patch(&key, patch, upsert)
                .await
        })
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .delete(&key)
                .await
        })
    }

    fn batch_get(
        &self,
        store: StoreId,
        keys: Vec<ObjectKey>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .batch_get(&keys)
                .await
        })
    }

    // batch_put keeps the trait default (convert to patch ops, call
    // batch_commit) — identical to what the server does with a BatchPut.

    fn batch_commit(
        &self,
        store: StoreId,
        ops: Vec<BatchOp>,
    ) -> BoxFuture<'_, Result<Vec<ItemResult>>> {
        // Same handle entry point the TCP server dispatches to, so both
        // transports share one batch semantics (per-item outcomes, one
        // fan-out drain, one WAL group fsync).
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .batch_commit(ops)
                .await
        })
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .register_consumer(&key, &consumer)
                .await
        })
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        Box::pin(async move {
            self.object
                .handle(&store, self.subject.clone())?
                .mark_processed(&key, &consumer)
                .await
        })
    }

    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        Box::pin(async move {
            let stream = self
                .object
                .handle(&store, self.subject.clone())?
                .watch_from(from)?;
            Ok(stream.into_receiver())
        })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move { self.object.register_schema(schema) })
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move { self.object.bind_schema(&store, &schema) })
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        Box::pin(async move { self.object.schema(&schema) })
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move { self.object.register_udf(name, inputs, &assignments) })
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            // Pushing logic down still costs one command round trip to
            // the exchange (what Redis Functions cost); model it with the
            // priciest bound store's per-op delays once, instead of once
            // per read/write as the non-pushdown path pays.
            let mut round_trip = std::time::Duration::ZERO;
            for b in &bindings {
                if let Ok(store) = self.object.store(&b.store) {
                    let p = store.profile();
                    round_trip = round_trip.max(p.read_delay + p.write_delay);
                }
            }
            knactor_store::profile::precise_sleep(round_trip).await;
            let revs = self.object.execute_udf(&self.subject, &name, &bindings)?;
            Ok(revs.into_iter().collect())
        })
    }

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            let revs = self.object.transact(&self.subject, &ops)?;
            Ok(revs.into_iter().collect())
        })
    }

    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            self.log.create_store(store)?;
            Ok(())
        })
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move { self.log.ingest(&self.subject_str(), &store, fields) })
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move { self.log.ingest_batch(&self.subject_str(), &store, batch) })
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        Box::pin(async move { Ok(self.log.store(&store)?.read_from(from)) })
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        Box::pin(async move {
            let compiled = query.compile()?;
            self.log.query(&self.subject_str(), &store, &compiled)
        })
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        Box::pin(async move { Ok(self.log.store(&store)?.tail(from)) })
    }

    fn metrics(&self) -> BoxFuture<'_, Result<knactor_types::metrics::MetricsSnapshot>> {
        // In-process deployment: the client and the exchange share one
        // process, so the global registry *is* the exchange's registry.
        Box::pin(async move { Ok(knactor_types::metrics::global().snapshot()) })
    }
}

/// Bundle of fresh in-process exchanges plus a client, for tests and
/// single-process apps.
pub fn in_process(subject: Subject) -> (Arc<DataExchange>, Arc<LogExchange>, LoopbackClient) {
    let object = Arc::new(DataExchange::new());
    let log = Arc::new(LogExchange::new());
    let client = LoopbackClient::new(Arc::clone(&object), Arc::clone(&log), subject);
    (object, log, client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[tokio::test]
    async fn loopback_object_roundtrip() {
        let (_, _, client) = in_process(Subject::operator("test"));
        let store = StoreId::new("t/s");
        client
            .create_store(store.clone(), ProfileSpec::Instant)
            .await
            .unwrap();
        client
            .create(store.clone(), ObjectKey::new("a"), json!({"x": 1}))
            .await
            .unwrap();
        let obj = client
            .get(store.clone(), ObjectKey::new("a"))
            .await
            .unwrap();
        assert_eq!(obj.value, json!({"x": 1}));
        let mut rx = client.watch(store.clone(), Revision::ZERO).await.unwrap();
        let e = rx.recv().await.unwrap();
        assert_eq!(e.key, ObjectKey::new("a"));
    }

    #[tokio::test]
    async fn loopback_log_roundtrip() {
        let (_, _, client) = in_process(Subject::operator("test"));
        let store = StoreId::new("t/log");
        client.log_create_store(store.clone()).await.unwrap();
        client
            .log_append(store.clone(), json!({"n": 1}))
            .await
            .unwrap();
        client
            .log_append_batch(store.clone(), vec![json!({"n": 2}), json!({"n": 3})])
            .await
            .unwrap();
        let recs = client.log_read(store.clone(), 0).await.unwrap();
        assert_eq!(recs.len(), 3);
        let rows = client
            .log_query(
                store.clone(),
                QuerySpec {
                    ops: vec![crate::proto::OpSpec::Filter {
                        expr: "this.n > 1".into(),
                    }],
                },
            )
            .await
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[tokio::test]
    async fn as_subject_switches_identity() {
        let (_, _, client) = in_process(Subject::operator("a"));
        let other = client.as_subject(Subject::integrator("b"));
        assert_eq!(other.subject().to_string(), "integrator:b");
        assert_eq!(client.subject().to_string(), "operator:a");
    }
}
