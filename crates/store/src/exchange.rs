//! The Data Exchange: hosts stores, schemas, access control, and UDFs.
//!
//! A [`DataExchange`] is the logically centralized service of Fig. 1b.
//! Knactors never talk to each other — each talks to its own store(s) on
//! an exchange, and integrators move state between stores. The exchange
//! therefore concentrates exactly the capabilities the paper lists:
//! state storage, access management, and (via [`crate::udf`]) pushed-down
//! composition logic.

use crate::handle::StoreHandle;
use crate::profile::EngineProfile;
use crate::store::ObjectStore;
use crate::udf::{Udf, UdfAssignment, UdfBinding};
use knactor_expr::{Env, FnRegistry};
use knactor_rbac::{AccessContext, AccessController, Subject, Verb};
use knactor_types::{Error, Result, Revision, Schema, SchemaName, SchemaRegistry, StoreId};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One write inside a [`DataExchange::transact`] call.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, PartialEq)]
pub struct TxOp {
    pub store: StoreId,
    pub key: knactor_types::ObjectKey,
    pub patch: serde_json::Value,
    pub upsert: bool,
    /// Optional precondition: the object must be at this revision
    /// (`Revision::ZERO` with `upsert` = "must not exist yet").
    pub expected: Option<Revision>,
}

/// A logically centralized Object data exchange.
pub struct DataExchange {
    stores: RwLock<BTreeMap<StoreId, Arc<ObjectStore>>>,
    schemas: RwLock<SchemaRegistry>,
    access: Arc<RwLock<AccessController>>,
    ctx: Arc<RwLock<AccessContext>>,
    udfs: RwLock<BTreeMap<String, Udf>>,
    fns: RwLock<FnRegistry>,
}

impl Default for DataExchange {
    fn default() -> Self {
        DataExchange::new()
    }
}

impl std::fmt::Debug for DataExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataExchange")
            .field("stores", &self.stores.read().keys().collect::<Vec<_>>())
            .field("schemas", &self.schemas.read().len())
            .field("udfs", &self.udfs.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl DataExchange {
    /// An exchange with open access control and the standard function
    /// registry.
    pub fn new() -> DataExchange {
        DataExchange {
            stores: RwLock::new(BTreeMap::new()),
            schemas: RwLock::new(SchemaRegistry::new()),
            access: Arc::new(RwLock::new(AccessController::new())),
            ctx: Arc::new(RwLock::new(AccessContext::default())),
            udfs: RwLock::new(BTreeMap::new()),
            fns: RwLock::new(FnRegistry::standard()),
        }
    }

    // ---- stores ----------------------------------------------------------

    /// Create a store with the given engine profile.
    pub fn create_store(
        &self,
        id: impl Into<StoreId>,
        profile: EngineProfile,
    ) -> Result<Arc<ObjectStore>> {
        let id = id.into();
        let mut stores = self.stores.write();
        if stores.contains_key(&id) {
            return Err(Error::AlreadyExists(format!("store {id}")));
        }
        let store = Arc::new(ObjectStore::open(id.clone(), profile)?);
        stores.insert(id, Arc::clone(&store));
        Ok(store)
    }

    /// Look up a store.
    pub fn store(&self, id: &StoreId) -> Result<Arc<ObjectStore>> {
        self.stores
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("store {id}")))
    }

    pub fn store_ids(&self) -> Vec<StoreId> {
        self.stores.read().keys().cloned().collect()
    }

    /// Remove a store entirely (tooling; running watches end).
    pub fn drop_store(&self, id: &StoreId) -> Result<()> {
        self.stores
            .write()
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("store {id}")))
    }

    /// A client handle for `subject`, enforcing this exchange's policies.
    pub fn handle(&self, id: &StoreId, subject: Subject) -> Result<StoreHandle> {
        let store = self.store(id)?;
        Ok(StoreHandle::new(
            store,
            subject,
            Arc::clone(&self.access),
            Arc::clone(&self.ctx),
        ))
    }

    // ---- schemas (the *Externalize* workflow step) ------------------------

    /// Register a schema with the exchange.
    pub fn register_schema(&self, schema: Schema) -> Result<()> {
        self.schemas.write().register(schema)
    }

    /// Bind a registered schema to a store; subsequent writes validate.
    pub fn bind_schema(&self, store: &StoreId, schema: &SchemaName) -> Result<()> {
        let schema = self.schemas.read().resolve(schema)?.clone();
        self.store(store)?.set_schema(schema);
        Ok(())
    }

    pub fn schema(&self, name: &SchemaName) -> Result<Schema> {
        Ok(self.schemas.read().resolve(name)?.clone())
    }

    pub fn schema_names(&self) -> Vec<SchemaName> {
        self.schemas.read().names().cloned().collect()
    }

    // ---- access control ---------------------------------------------------

    /// Mutate the access controller (add roles, bindings, …).
    pub fn configure_access<R>(&self, f: impl FnOnce(&mut AccessController) -> R) -> R {
        f(&mut self.access.write())
    }

    /// Set the context (logical time of day) used by conditional policies.
    pub fn set_access_context(&self, ctx: AccessContext) {
        *self.ctx.write() = ctx;
    }

    pub fn access_context(&self) -> AccessContext {
        *self.ctx.read()
    }

    // ---- functions & UDFs (§3.3 pushdown) ----------------------------------

    /// Register an application transform usable in expressions and UDFs.
    pub fn register_function(
        &self,
        name: impl Into<String>,
        f: impl Fn(&[serde_json::Value]) -> Result<serde_json::Value> + Send + Sync + 'static,
    ) {
        self.fns.write().register(name, f);
    }

    /// Register (or replace) a UDF. Compilation validates all expressions.
    pub fn register_udf(
        &self,
        name: impl Into<String>,
        inputs: Vec<String>,
        assignments: &[UdfAssignment],
    ) -> Result<()> {
        let udf = Udf::compile(name, inputs, assignments)?;
        self.udfs.write().insert(udf.name.clone(), udf);
        Ok(())
    }

    pub fn udf_names(&self) -> Vec<String> {
        self.udfs.read().keys().cloned().collect()
    }

    /// Apply a set of writes across stores **atomically**: either every
    /// precondition holds and every write commits, or nothing does.
    ///
    /// The paper lists run-time transaction primitives as framework
    /// support for large-scale composition (§5). On a logically
    /// centralized exchange the implementation is validation under a
    /// global ordering: per-store locks are taken in `StoreId` order
    /// (deadlock-free), preconditions are checked, then all writes apply.
    pub fn transact(&self, subject: &Subject, ops: &[TxOp]) -> Result<BTreeMap<StoreId, Revision>> {
        let ctx = *self.ctx.read();
        {
            let access = self.access.read();
            for op in ops {
                let d = access.check(subject, Verb::Update, &op.store, &ctx);
                if !d.allowed() {
                    return Err(Error::Forbidden(d.reason().to_string()));
                }
            }
        }
        // Collect the distinct stores in id order (stable lock order).
        let mut store_ids: Vec<StoreId> = ops.iter().map(|o| o.store.clone()).collect();
        store_ids.sort();
        store_ids.dedup();
        let mut stores = Vec::with_capacity(store_ids.len());
        for id in &store_ids {
            stores.push((id.clone(), self.store(id)?));
        }
        // Validation phase: every precondition must hold *now*. Because
        // this method holds the only path that writes multiple stores at
        // once and individual writes go through the same store mutexes,
        // checking then applying under the exchange's stores read lock is
        // linearizable enough for the single-process exchange; races with
        // concurrent single-store writers surface as OCC conflicts below.
        for op in ops {
            if let Some(expected) = op.expected {
                let store = &stores
                    .iter()
                    .find(|(id, _)| *id == op.store)
                    .expect("collected")
                    .1;
                let actual = match store.get(&op.key) {
                    Ok(obj) => obj.revision,
                    Err(Error::NotFound(_)) if op.upsert => Revision::ZERO,
                    Err(e) => return Err(e),
                };
                if actual != expected {
                    return Err(Error::Conflict {
                        expected: expected.0,
                        actual: actual.0,
                    });
                }
            }
        }
        // Apply phase.
        let mut out = BTreeMap::new();
        for op in ops {
            let store = &stores
                .iter()
                .find(|(id, _)| *id == op.store)
                .expect("collected")
                .1;
            let rev = store.patch(&op.key, &op.patch, op.upsert)?;
            out.insert(op.store.clone(), rev);
        }
        Ok(out)
    }

    /// Execute a registered UDF entirely inside the exchange: read the
    /// bound objects, evaluate every assignment, merge the patches into
    /// the target objects. One call — no per-store round trips for the
    /// caller.
    ///
    /// `subject` needs `Execute` on every bound store, plus the exchange
    /// checks nothing else: the UDF runs with exchange authority, which is
    /// exactly the trust model of Redis Functions / stored procedures.
    /// Returns the new revision of each written store.
    pub fn execute_udf(
        &self,
        subject: &Subject,
        name: &str,
        bindings: &[UdfBinding],
    ) -> Result<BTreeMap<StoreId, Revision>> {
        let udf = self
            .udfs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("udf {name}")))?;
        let ctx = *self.ctx.read();
        {
            let access = self.access.read();
            for b in bindings {
                let d = access.check(subject, Verb::Execute, &b.store, &ctx);
                if !d.allowed() {
                    return Err(Error::Forbidden(d.reason().to_string()));
                }
            }
        }
        let mut by_alias: BTreeMap<String, &UdfBinding> = BTreeMap::new();
        for b in bindings {
            by_alias.insert(b.alias.clone(), b);
        }
        for input in &udf.inputs {
            if !by_alias.contains_key(input) {
                return Err(Error::Dxg(format!(
                    "udf {name}: missing binding for '{input}'"
                )));
            }
        }
        // Read phase.
        let mut env = Env::new();
        for (alias, b) in &by_alias {
            let store = self.store(&b.store)?;
            let value = match store.get(&b.key) {
                Ok(obj) => obj.value,
                // Absent targets start empty; the write phase upserts.
                Err(Error::NotFound(_)) => {
                    std::sync::Arc::new(serde_json::Value::Object(serde_json::Map::new()))
                }
                Err(e) => return Err(e),
            };
            env.bind(alias.clone(), value);
        }
        // Evaluate phase.
        let patches = {
            let fns = self.fns.read();
            udf.evaluate(&env, &fns)?
        };
        // Write phase.
        let mut out = BTreeMap::new();
        for (alias, patch) in patches {
            let b = by_alias[&alias];
            let store = self.store(&b.store)?;
            let rev = store.patch(&b.key, &patch, true)?;
            out.insert(b.store.clone(), rev);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_rbac::{Role, RoleBinding};
    use knactor_types::schema::{FieldSpec, FieldType};
    use knactor_types::ObjectKey;
    use serde_json::json;

    fn exchange_with_stores() -> DataExchange {
        let de = DataExchange::new();
        de.create_store("checkout/state", EngineProfile::instant())
            .unwrap();
        de.create_store("shipping/state", EngineProfile::instant())
            .unwrap();
        de
    }

    #[test]
    fn store_lifecycle() {
        let de = exchange_with_stores();
        assert_eq!(de.store_ids().len(), 2);
        assert!(de
            .create_store("checkout/state", EngineProfile::instant())
            .is_err());
        de.drop_store(&StoreId::new("shipping/state")).unwrap();
        assert!(de.store(&StoreId::new("shipping/state")).is_err());
    }

    #[test]
    fn schema_registration_and_binding() {
        let de = exchange_with_stores();
        let schema = Schema::new("OnlineRetail/v1/Checkout/Order")
            .field(FieldSpec::new("address", FieldType::String).required());
        de.register_schema(schema).unwrap();
        de.bind_schema(
            &StoreId::new("checkout/state"),
            &SchemaName::new("OnlineRetail/v1/Checkout/Order"),
        )
        .unwrap();
        let store = de.store(&StoreId::new("checkout/state")).unwrap();
        assert!(store.create(ObjectKey::new("o"), json!({})).is_err());
        assert!(store
            .create(ObjectKey::new("o"), json!({"address": "x"}))
            .is_ok());
        // Binding an unknown schema fails.
        assert!(de
            .bind_schema(&StoreId::new("shipping/state"), &SchemaName::new("nope"))
            .is_err());
    }

    #[test]
    fn udf_end_to_end() {
        let de = exchange_with_stores();
        let checkout = de.store(&StoreId::new("checkout/state")).unwrap();
        checkout
            .create(
                ObjectKey::new("order-1"),
                json!({"order": {"address": "Soda Hall", "cost": 1500, "items": [{"name": "mug"}]}}),
            )
            .unwrap();
        de.register_udf(
            "ship-order",
            vec!["C".into(), "S".into()],
            &[
                UdfAssignment {
                    target_alias: "S".into(),
                    target_path: "addr".into(),
                    expr: "C.order.address".into(),
                },
                UdfAssignment {
                    target_alias: "S".into(),
                    target_path: "items".into(),
                    expr: "[i.name for i in C.order.items]".into(),
                },
                UdfAssignment {
                    target_alias: "S".into(),
                    target_path: "method".into(),
                    expr: r#""air" if C.order.cost > 1000 else "ground""#.into(),
                },
            ],
        )
        .unwrap();
        let revs = de
            .execute_udf(
                &Subject::integrator("cast"),
                "ship-order",
                &[
                    UdfBinding::new("C", "checkout/state", "order-1"),
                    UdfBinding::new("S", "shipping/state", "ship-order-1"),
                ],
            )
            .unwrap();
        assert_eq!(revs.len(), 1);
        let shipping = de.store(&StoreId::new("shipping/state")).unwrap();
        let obj = shipping.get(&ObjectKey::new("ship-order-1")).unwrap();
        assert_eq!(
            obj.value,
            json!({"addr": "Soda Hall", "items": ["mug"], "method": "air"})
        );
    }

    #[test]
    fn udf_requires_execute_permission() {
        let de = exchange_with_stores();
        de.configure_access(|ac| {
            ac.always_enforce = true;
            ac.add_role(Role::full_access("owner", "checkout/state"));
            ac.bind(RoleBinding::new(Subject::integrator("cast"), "owner"));
        });
        de.register_udf(
            "noop",
            vec!["C".into()],
            &[UdfAssignment {
                target_alias: "C".into(),
                target_path: "x".into(),
                expr: "1".into(),
            }],
        )
        .unwrap();
        // Allowed on checkout (full access includes Execute)…
        assert!(de
            .execute_udf(
                &Subject::integrator("cast"),
                "noop",
                &[UdfBinding::new("C", "checkout/state", "k")],
            )
            .is_ok());
        // …but not on shipping.
        assert!(matches!(
            de.execute_udf(
                &Subject::integrator("cast"),
                "noop",
                &[UdfBinding::new("C", "shipping/state", "k")],
            ),
            Err(Error::Forbidden(_))
        ));
    }

    #[test]
    fn udf_missing_binding_rejected() {
        let de = exchange_with_stores();
        de.register_udf(
            "two",
            vec!["A".into(), "B".into()],
            &[UdfAssignment {
                target_alias: "B".into(),
                target_path: "x".into(),
                expr: "A.v".into(),
            }],
        )
        .unwrap();
        assert!(matches!(
            de.execute_udf(
                &Subject::integrator("i"),
                "two",
                &[UdfBinding::new("A", "checkout/state", "k")],
            ),
            Err(Error::Dxg(_))
        ));
        assert!(matches!(
            de.execute_udf(&Subject::integrator("i"), "ghost", &[]),
            Err(Error::NotFound(_))
        ));
    }

    #[test]
    fn custom_function_usable_in_udf() {
        let de = exchange_with_stores();
        de.register_function("double", |args| {
            let n = args[0].as_f64().unwrap_or(0.0);
            Ok(json!(n * 2.0))
        });
        de.register_udf(
            "d",
            vec!["C".into()],
            &[UdfAssignment {
                target_alias: "C".into(),
                target_path: "out".into(),
                expr: "double(C.n)".into(),
            }],
        )
        .unwrap();
        let checkout = de.store(&StoreId::new("checkout/state")).unwrap();
        checkout
            .create(ObjectKey::new("k"), json!({"n": 21}))
            .unwrap();
        de.execute_udf(
            &Subject::integrator("i"),
            "d",
            &[UdfBinding::new("C", "checkout/state", "k")],
        )
        .unwrap();
        assert_eq!(
            checkout.get(&ObjectKey::new("k")).unwrap().value["out"],
            json!(42.0)
        );
    }

    #[test]
    fn transact_applies_all_or_nothing() {
        let de = exchange_with_stores();
        let checkout = de.store(&StoreId::new("checkout/state")).unwrap();
        let shipping = de.store(&StoreId::new("shipping/state")).unwrap();
        let rev = checkout
            .create(ObjectKey::new("o"), json!({"v": 1}))
            .unwrap();

        // Success: both writes land.
        let ops = vec![
            TxOp {
                store: StoreId::new("checkout/state"),
                key: ObjectKey::new("o"),
                patch: json!({"v": 2}),
                upsert: false,
                expected: Some(rev),
            },
            TxOp {
                store: StoreId::new("shipping/state"),
                key: ObjectKey::new("s"),
                patch: json!({"created": true}),
                upsert: true,
                expected: None,
            },
        ];
        de.transact(&Subject::integrator("cast"), &ops).unwrap();
        assert_eq!(
            checkout.get(&ObjectKey::new("o")).unwrap().value,
            json!({"v": 2})
        );
        assert!(shipping.get(&ObjectKey::new("s")).is_ok());

        // Failure: stale precondition aborts both writes.
        let stale = vec![
            TxOp {
                store: StoreId::new("checkout/state"),
                key: ObjectKey::new("o"),
                patch: json!({"v": 99}),
                upsert: false,
                expected: Some(rev), // stale
            },
            TxOp {
                store: StoreId::new("shipping/state"),
                key: ObjectKey::new("s2"),
                patch: json!({"created": true}),
                upsert: true,
                expected: None,
            },
        ];
        assert!(matches!(
            de.transact(&Subject::integrator("cast"), &stale),
            Err(Error::Conflict { .. })
        ));
        assert_eq!(
            checkout.get(&ObjectKey::new("o")).unwrap().value,
            json!({"v": 2})
        );
        assert!(shipping.get(&ObjectKey::new("s2")).is_err());
    }

    #[test]
    fn noop_patch_does_not_commit() {
        let de = exchange_with_stores();
        let store = de.store(&StoreId::new("checkout/state")).unwrap();
        let rev = store.create(ObjectKey::new("o"), json!({"v": 1})).unwrap();
        // Re-applying the same state is a no-op: same revision, no event.
        let again = store
            .patch(&ObjectKey::new("o"), &json!({"v": 1}), false)
            .unwrap();
        assert_eq!(again, rev);
        assert_eq!(store.revision(), rev);
    }

    #[tokio::test]
    async fn handles_share_exchange_policy() {
        let de = exchange_with_stores();
        de.configure_access(|ac| {
            ac.always_enforce = true;
        });
        let h = de
            .handle(
                &StoreId::new("checkout/state"),
                Subject::integrator("nobody"),
            )
            .unwrap();
        assert!(matches!(
            h.get(&ObjectKey::new("x")).await,
            Err(Error::Forbidden(_))
        ));
    }
}
