//! # knactor-apps
//!
//! The paper's two case-study applications, each implemented **twice**:
//! once API-centric (the baseline of §2) and once as knactors (§3–4).
//!
//! * [`retail`] — the online-retail web app (derived from the 11-service
//!   microservices demo the paper studied): Frontend, ProductCatalog,
//!   Cart, Checkout, Shipping, Payment, Currency, Email, Recommendation,
//!   Ad, and Inventory.
//!   * [`retail::rpc_app`] composes them with the mini-RPC framework and
//!     hand-maintained stub modules ([`retail::stubs`]), exactly the
//!     structure a Protobuf toolchain generates — this is what Table 1
//!     counts.
//!   * [`retail::knactor_app`] externalizes each service's state and
//!     composes them with a single Cast integrator driven by the Fig. 6
//!     DXG (shipped verbatim in `assets/retail_dxg.yaml`).
//! * [`smarthome`] — the House/Motion/Lamp IoT app (Fig. 4):
//!   * [`smarthome::pubsub_app`] composes via a message broker (the EMQX
//!     pattern of §2), and
//!   * [`smarthome::knactor_app`] gives each device an Object store
//!     (configuration) and a Log store (telemetry), composed by Cast and
//!     Sync.
//! * [`table1`] — the task manifests (T1–T3) whose files and SLOC the
//!   Table 1 harness counts.

pub mod retail;
pub mod smarthome;
pub mod table1;

/// Workspace-root-relative path of a file in this crate.
pub fn crate_file(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}
