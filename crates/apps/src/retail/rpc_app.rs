//! The retail app, the API-centric way (Fig. 3a).
//!
//! Checkout composes Payment, Shipping, and Currency by **calling their
//! APIs**: it vendors their stubs ([`super::stubs`]), knows their
//! endpoints (`assets/api/checkout-endpoints.yaml`), sequences the
//! calls, and handles their errors — all inside its own codebase. The
//! marked regions (`>>> T1-API` etc.) delimit the code each Table 1 task
//! touches.

use crate::retail::carrier_quote;
use knactor_rpc::{RpcClient, RpcServer};
use knactor_types::{Result, Value};
use serde_json::json;
use std::time::Duration;

/// Start the provider services (Shipping v1+v2, Payment, Currency) on
/// one RPC server. `processing` simulates the carrier API inside
/// `ShipOrder` (the paper's ≈446 ms S stage).
pub async fn serve_providers(processing: Duration) -> Result<RpcServer> {
    let mut server = RpcServer::new();

    // Shipping v1.
    server.register(
        super::stubs::shipping_v1::METHOD_GET_QUOTE,
        move |p: Value| async move {
            let items = p["items"].as_array().map(|a| a.len()).unwrap_or(0);
            Ok(carrier_quote(items))
        },
    );
    server.register(
        super::stubs::shipping_v1::METHOD_SHIP_ORDER,
        move |p: Value| async move {
            if processing > Duration::ZERO {
                tokio::time::sleep(processing).await;
            }
            let addr = p["addr"].as_str().unwrap_or_default();
            Ok(json!({"tracking_id": format!("track-{}", short_hash(addr))}))
        },
    );

    // Shipping v2 (the evolved API of task T3).
    server.register(
        super::stubs::shipping_v2::METHOD_GET_QUOTE,
        move |p: Value| async move {
            let items = p["items"].as_array().map(|a| a.len()).unwrap_or(0);
            Ok(json!({ "quote": carrier_quote(items) }))
        },
    );
    server.register(
        super::stubs::shipping_v2::METHOD_SHIP_ORDER,
        move |p: Value| async move {
            if processing > Duration::ZERO {
                tokio::time::sleep(processing).await;
            }
            let dest = p["destination"].as_str().unwrap_or_default();
            let items = p["items"].as_array().map(|a| a.len()).unwrap_or(0);
            Ok(json!({
                "tracking_id": format!("track-{}", short_hash(dest)),
                "quote": carrier_quote(items),
            }))
        },
    );

    // Payment.
    server.register(
        super::stubs::payment_v1::METHOD_CHARGE,
        |p: Value| async move {
            let amount = p["amount"].as_f64().unwrap_or(0.0);
            Ok(json!({"payment_id": format!("pay-{}", (amount * 100.0) as u64)}))
        },
    );

    // Currency (same fixed table as the expression builtin, so both
    // composition styles compute identical numbers).
    server.register(
        super::stubs::currency_v1::METHOD_CONVERT,
        |p: Value| async move {
            let amount = p["amount"].as_f64().unwrap_or(0.0);
            let from = p["from"].as_str().unwrap_or("USD").to_string();
            let to = p["to"].as_str().unwrap_or("USD").to_string();
            let reg = knactor_expr::FnRegistry::standard();
            let converted =
                reg.call("currency_convert", &[json!(amount), json!(from), json!(to)])?;
            Ok(json!({"amount": converted, "currency": p["to"]}))
        },
    );

    server.bind("127.0.0.1:0").await?;
    Ok(server)
}

fn short_hash(s: &str) -> u64 {
    // Stable tiny hash so tracking ids are deterministic for tests.
    s.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
        % 100_000
}

/// The Checkout service's composition logic, API-centric. Everything in
/// this struct is code Checkout's own team must write, own, and redeploy
/// when any dependency changes.
pub struct CheckoutRpc {
    client: RpcClient,
}

/// Result of the shipment flow (what Checkout returns to the frontend).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedOrder {
    pub payment_id: String,
    pub tracking_id: String,
    pub shipping_cost: f64,
    pub method: String,
}

impl CheckoutRpc {
    pub async fn connect(addr: std::net::SocketAddr) -> Result<CheckoutRpc> {
        Ok(CheckoutRpc {
            client: RpcClient::connect(addr).await?,
        })
    }

    pub async fn connect_with_latency(
        addr: std::net::SocketAddr,
        rtt: Duration,
    ) -> Result<CheckoutRpc> {
        Ok(CheckoutRpc {
            client: RpcClient::connect(addr).await?.with_latency(rtt),
        })
    }

    /// The shipment request against Shipping **v1** (tasks T1 + T2).
    pub async fn place_order(&self, order: &Value) -> Result<PlacedOrder> {
        let order = &order["order"];
        // >>> T1-API
        // Compose Payment and Shipping with Checkout: import both stubs,
        // sequence the calls, translate between *their* schemas and the
        // order's fields, and handle each service's errors separately.
        let items: Vec<String> = order["items"]
            .as_object()
            .map(|m| {
                m.values()
                    .filter_map(|i| i["name"].as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let addr = order["address"].as_str().unwrap_or_default().to_string();

        let payment = super::stubs::payment_v1::PaymentClient::new(&self.client);
        let charge = payment
            .charge(super::stubs::payment_v1::ChargeRequest {
                amount: order["totalCost"].as_f64().unwrap_or(0.0),
                currency: order["currency"].as_str().unwrap_or("USD").to_string(),
            })
            .await?;

        let shipping = super::stubs::shipping_v1::ShippingClient::new(&self.client);
        let quote = shipping
            .get_quote(super::stubs::shipping_v1::GetQuoteRequest {
                addr: addr.clone(),
                items: items.clone(),
            })
            .await?;

        let currency = super::stubs::currency_v1::CurrencyClient::new(&self.client);
        let converted = currency
            .convert(super::stubs::currency_v1::ConvertRequest {
                amount: quote.price,
                from: quote.currency.clone(),
                to: order["currency"].as_str().unwrap_or("USD").to_string(),
            })
            .await?;
        // <<< T1-API

        // >>> T2-API
        // Shipment-method policy: lives inside Checkout, so changing the
        // threshold means editing, rebuilding, and redeploying Checkout.
        let method = if order["cost"].as_f64().unwrap_or(0.0) > 1000.0 {
            "air".to_string()
        } else {
            "ground".to_string()
        };
        // <<< T2-API

        // >>> T1-API
        let shipped = shipping
            .ship_order(super::stubs::shipping_v1::ShipOrderRequest {
                addr,
                items,
                method: method.clone(),
            })
            .await?;

        Ok(PlacedOrder {
            payment_id: charge.payment_id,
            tracking_id: shipped.tracking_id,
            shipping_cost: converted.amount,
            method,
        })
        // <<< T1-API
    }

    /// The same flow against Shipping **v2** — the adaptation a consumer
    /// must write when the provider evolves its schema (task T3).
    pub async fn place_order_v2(&self, order: &Value) -> Result<PlacedOrder> {
        let order = &order["order"];
        // >>> T3-API
        // Adapt to Shipping v2: new field names, new required `contact`,
        // quote moved into the ship response — every call site changes.
        let items: Vec<String> = order["items"]
            .as_object()
            .map(|m| {
                m.values()
                    .filter_map(|i| i["name"].as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let destination = order["address"].as_str().unwrap_or_default().to_string();
        let contact = order["email"]
            .as_str()
            .unwrap_or("orders@retail.example")
            .to_string();

        let payment = super::stubs::payment_v1::PaymentClient::new(&self.client);
        let charge = payment
            .charge(super::stubs::payment_v1::ChargeRequest {
                amount: order["totalCost"].as_f64().unwrap_or(0.0),
                currency: order["currency"].as_str().unwrap_or("USD").to_string(),
            })
            .await?;

        let method = if order["cost"].as_f64().unwrap_or(0.0) > 1000.0 {
            "air".to_string()
        } else {
            "ground".to_string()
        };

        let shipping = super::stubs::shipping_v2::ShippingClient::new(&self.client);
        let shipped = shipping
            .ship_order(super::stubs::shipping_v2::ShipOrderRequest {
                destination,
                items,
                contact,
                method: method.clone(),
            })
            .await?;

        let currency = super::stubs::currency_v1::CurrencyClient::new(&self.client);
        let converted = currency
            .convert(super::stubs::currency_v1::ConvertRequest {
                amount: shipped.quote.price,
                from: shipped.quote.currency.clone(),
                to: order["currency"].as_str().unwrap_or("USD").to_string(),
            })
            .await?;

        Ok(PlacedOrder {
            payment_id: charge.payment_id,
            tracking_id: shipped.tracking_id,
            shipping_cost: converted.amount,
            method,
        })
        // <<< T3-API
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retail::sample_order;

    #[tokio::test]
    async fn rpc_flow_places_order() {
        let server = serve_providers(Duration::ZERO).await.unwrap();
        let checkout = CheckoutRpc::connect(server.local_addr().unwrap())
            .await
            .unwrap();
        let placed = checkout.place_order(&sample_order(1200.0)).await.unwrap();
        assert_eq!(placed.method, "air");
        assert!(placed.payment_id.starts_with("pay-"));
        assert!(placed.tracking_id.starts_with("track-"));
        assert_eq!(placed.shipping_cost, 9.0);
        server.shutdown().await;
    }

    #[tokio::test]
    async fn rpc_flow_cheap_order_ground() {
        let server = serve_providers(Duration::ZERO).await.unwrap();
        let checkout = CheckoutRpc::connect(server.local_addr().unwrap())
            .await
            .unwrap();
        let placed = checkout.place_order(&sample_order(50.0)).await.unwrap();
        assert_eq!(placed.method, "ground");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn v2_flow_matches_v1_results() {
        let server = serve_providers(Duration::ZERO).await.unwrap();
        let checkout = CheckoutRpc::connect(server.local_addr().unwrap())
            .await
            .unwrap();
        let v1 = checkout.place_order(&sample_order(1200.0)).await.unwrap();
        let v2 = checkout
            .place_order_v2(&sample_order(1200.0))
            .await
            .unwrap();
        assert_eq!(v1.method, v2.method);
        assert_eq!(v1.shipping_cost, v2.shipping_cost);
        server.shutdown().await;
    }

    #[tokio::test]
    async fn processing_delay_dominates_latency() {
        let server = serve_providers(Duration::from_millis(50)).await.unwrap();
        let checkout = CheckoutRpc::connect(server.local_addr().unwrap())
            .await
            .unwrap();
        let t0 = std::time::Instant::now();
        checkout.place_order(&sample_order(100.0)).await.unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(50));
        server.shutdown().await;
    }
}
