//! # knactor-net
//!
//! The network substrate for Knactor data exchanges:
//!
//! * [`frame`] — a length-prefixed frame codec over any async byte stream
//!   (the Tokio framing pattern; 4-byte big-endian length + payload).
//! * [`proto`] — the wire protocol: serde-encoded requests, responses, and
//!   server-pushed watch/tail events, multiplexed over one connection with
//!   request-id correlation.
//! * [`server`] — [`server::ExchangeServer`]: serves one
//!   [`knactor_store::DataExchange`] plus one
//!   [`knactor_logstore::LogExchange`] over TCP, with graceful shutdown.
//! * [`client`] — [`client::TcpClient`]: an async client with pipelined
//!   requests, background demultiplexing, and optional injected network
//!   latency (to model cluster RTTs deterministically in benchmarks).
//! * [`loopback`] — [`loopback::LoopbackClient`]: the same API surface
//!   bound directly to an in-process exchange with **no serialization at
//!   all** — the zero-copy data-exchange optimization of §3.3.
//! * [`api`] — [`api::ExchangeApi`], the transport-independent trait both
//!   clients implement; integrators and reconcilers are written against
//!   it and never know whether the exchange is local or remote.
//! * [`router`] — [`router::ShardRouter`]: one logical exchange over N
//!   shard nodes. Scatter-gathers batches by a consistent-hash
//!   [`knactor_store::ShardMap`], merges per-shard watch streams into one
//!   dense subscription, and is itself just another [`api::ExchangeApi`]
//!   — integrators cannot tell a sharded exchange from a single node.
//! * [`replica`] — leader/follower replication behind the same
//!   [`api::ExchangeApi`]: the leader streams its commit sequence to
//!   followers (`Replicated(n)` writes ack only after `n` followers
//!   stage them), followers detect leader loss and elect the most
//!   caught-up survivor, and [`replica::ReplicaRouter`] gives clients
//!   leader-routed writes plus read-your-writes replica reads.
//! * [`fault`] — seeded, deterministic fault injection: a frame-level
//!   [`fault::FaultProxy`] for TCP and a [`fault::FaultApi`] decorator for
//!   loopback, both driven by a [`fault::FaultPlan`]. Pairs with
//!   [`client::ResilientClient`] (retry/backoff + watch resume), which is
//!   what makes those faults survivable.

pub mod api;
pub mod client;
pub mod fault;
pub mod frame;
pub mod loopback;
pub mod proto;
pub mod replica;
pub mod router;
pub mod server;

pub use api::{BoxFuture, ExchangeApi, WatchRx};
pub use client::{ReplStatusInfo, ResilientClient, RetryPolicy, TcpClient};
pub use fault::{FaultApi, FaultPlan, FaultProxy, FaultRng, FaultStats};
pub use loopback::LoopbackClient;
pub use replica::{
    run_follower, FollowerConfig, FollowerHandle, ReplRuntime, ReplicaRouter, ReplicatedExchange,
};
pub use router::{ShardRouter, ShardedExchange};
pub use server::ExchangeServer;

/// Re-export: sub-millisecond-accurate sleep used for latency injection.
pub use knactor_store::profile::precise_sleep;
