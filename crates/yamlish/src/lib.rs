//! # knactor-yamlish
//!
//! A small, dependency-free parser and serializer for the YAML subset used
//! by Knactor specification files — data-store schemas (Fig. 5 of the
//! paper) and data-exchange-graph specs (Fig. 6).
//!
//! Why not a full YAML library? Two reasons:
//!
//! 1. The specs only need a well-defined subset (see below), and a small
//!    parser keeps the dependency surface of the framework tight.
//! 2. Knactor schema files carry semantic information in *comments*
//!    (`# +kr: external` marks fields an integrator fills in). Mainstream
//!    YAML parsers discard comments; this one attaches `+kr:` annotations
//!    to the node on the same line.
//!
//! ## Supported subset
//!
//! * block mappings (`key: value`, nested by indentation)
//! * block sequences (`- item`, scalar or mapping items)
//! * scalars: single-/double-quoted strings, bare strings, numbers,
//!   `true`/`false`, `null`/`~`
//! * folded (`>`) and literal (`|`) block scalars
//! * full-line and trailing comments; trailing `# +kr: <text>` comments
//!   become [`Node::annotations`]
//!
//! Anchors, aliases, tags, flow style, multi-document streams, and
//! complex keys are intentionally not supported; encountering them is a
//! parse error, not silent misbehaviour.

mod parse;
mod serialize;

pub use parse::parse;
pub use serialize::to_string;

use knactor_types::{Error, Result};

/// A parsed YAML-subset node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub yaml: Yaml,
    /// 1-based source line where the node started (0 for synthesized nodes).
    pub line: usize,
    /// Text of `+kr:` trailing comments on the node's line.
    pub annotations: Vec<String>,
}

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Yaml {
    /// A scalar, already coerced: string, number, bool, or null.
    Scalar(serde_json::Value),
    /// A block sequence.
    Seq(Vec<Node>),
    /// A block mapping with source order preserved.
    Map(Vec<(String, Node)>),
}

impl Node {
    /// A scalar node with no source position.
    pub fn scalar(v: impl Into<serde_json::Value>) -> Node {
        Node {
            yaml: Yaml::Scalar(v.into()),
            line: 0,
            annotations: Vec::new(),
        }
    }

    /// A mapping node with no source position.
    pub fn map(entries: Vec<(String, Node)>) -> Node {
        Node {
            yaml: Yaml::Map(entries),
            line: 0,
            annotations: Vec::new(),
        }
    }

    /// A sequence node with no source position.
    pub fn seq(items: Vec<Node>) -> Node {
        Node {
            yaml: Yaml::Seq(items),
            line: 0,
            annotations: Vec::new(),
        }
    }

    /// Attach a `+kr:` annotation.
    pub fn with_annotation(mut self, text: impl Into<String>) -> Node {
        self.annotations.push(text.into());
        self
    }

    /// Look up a mapping entry by key.
    pub fn get(&self, key: &str) -> Option<&Node> {
        match &self.yaml {
            Yaml::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mapping entries, or an error if this node is not a mapping.
    pub fn entries(&self) -> Result<&[(String, Node)]> {
        match &self.yaml {
            Yaml::Map(entries) => Ok(entries),
            other => Err(Error::Parse {
                line: self.line,
                msg: format!("expected mapping, found {}", kind_name(other)),
            }),
        }
    }

    /// Sequence items, or an error if this node is not a sequence.
    pub fn items(&self) -> Result<&[Node]> {
        match &self.yaml {
            Yaml::Seq(items) => Ok(items),
            other => Err(Error::Parse {
                line: self.line,
                msg: format!("expected sequence, found {}", kind_name(other)),
            }),
        }
    }

    /// Scalar payload, or an error.
    pub fn scalar_value(&self) -> Result<&serde_json::Value> {
        match &self.yaml {
            Yaml::Scalar(v) => Ok(v),
            other => Err(Error::Parse {
                line: self.line,
                msg: format!("expected scalar, found {}", kind_name(other)),
            }),
        }
    }

    /// String scalar payload, or an error.
    pub fn as_str(&self) -> Result<&str> {
        self.scalar_value()?.as_str().ok_or(Error::Parse {
            line: self.line,
            msg: "expected string scalar".to_string(),
        })
    }

    /// Convert to a plain JSON value, dropping annotations and positions.
    pub fn to_json(&self) -> serde_json::Value {
        match &self.yaml {
            Yaml::Scalar(v) => v.clone(),
            Yaml::Seq(items) => serde_json::Value::Array(items.iter().map(Node::to_json).collect()),
            Yaml::Map(entries) => serde_json::Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        }
    }

    /// Build a node tree from a JSON value (no annotations).
    pub fn from_json(v: &serde_json::Value) -> Node {
        match v {
            serde_json::Value::Array(items) => {
                Node::seq(items.iter().map(Node::from_json).collect())
            }
            serde_json::Value::Object(map) => Node::map(
                map.iter()
                    .map(|(k, v)| (k.clone(), Node::from_json(v)))
                    .collect(),
            ),
            scalar => Node::scalar(scalar.clone()),
        }
    }

    /// Structural equality ignoring source lines (annotations still count).
    pub fn structurally_eq(&self, other: &Node) -> bool {
        if self.annotations != other.annotations {
            return false;
        }
        match (&self.yaml, &other.yaml) {
            (Yaml::Scalar(a), Yaml::Scalar(b)) => a == b,
            (Yaml::Seq(a), Yaml::Seq(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.structurally_eq(y))
            }
            (Yaml::Map(a), Yaml::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.structurally_eq(vb))
            }
            _ => false,
        }
    }
}

fn kind_name(y: &Yaml) -> &'static str {
    match y {
        Yaml::Scalar(_) => "scalar",
        Yaml::Seq(_) => "sequence",
        Yaml::Map(_) => "mapping",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn node_accessors() {
        let n = Node::map(vec![
            ("a".into(), Node::scalar(1)),
            ("xs".into(), Node::seq(vec![Node::scalar("s")])),
        ]);
        assert_eq!(n.get("a").unwrap().scalar_value().unwrap(), &json!(1));
        assert_eq!(n.get("xs").unwrap().items().unwrap().len(), 1);
        assert!(n.get("missing").is_none());
        assert!(n.items().is_err());
        assert!(n.get("a").unwrap().entries().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let v = json!({"a": [1, true, null], "b": {"c": "x"}});
        assert_eq!(Node::from_json(&v).to_json(), v);
    }

    #[test]
    fn structural_eq_ignores_lines() {
        let mut a = Node::scalar(1);
        a.line = 3;
        let mut b = Node::scalar(1);
        b.line = 99;
        assert!(a.structurally_eq(&b));
        assert!(!a.structurally_eq(&Node::scalar(2)));
        assert!(!a.structurally_eq(&a.clone().with_annotation("external")));
    }
}
