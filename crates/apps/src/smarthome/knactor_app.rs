//! The smart home, the Knactor way (Fig. 4).
//!
//! Three knactors, each with **two stores**: an Object store on the
//! Object exchange (configuration: `brightness`, `sensitivity`,
//! `targetBrightness`) and a Log store on the Log exchange (telemetry:
//! motion readings, energy readings).
//!
//! Composition — all of it outside the devices:
//!
//! * **Cast** (`assets/smarthome_dxg.yaml`): `L.brightness` follows
//!   `H.targetBrightness` when `M.triggered`, else 0; `H.motion` mirrors
//!   `M.triggered`.
//! * **Sync (stream)**: Motion's telemetry flows into House's log with
//!   `triggered` renamed to `motion` (the Fig. 4 rename).
//! * **Sync (snapshot)**: Lamp's energy log rolls up into the House
//!   object store's `energy` field (sum of kWh).
//! * **Continuous (windowed)**: Lamp's energy log is summed per tumbling
//!   window of [`ENERGY_WINDOW`] records into the `house/analytics`
//!   object store — the rolling "energy this window" dashboard value.
//!
//! Access control: the exchange is configured so House's integrator may
//! not write the Lamp's store during sleep hours (§3.3's access-control
//! example) — see [`sleep_hours_policy`].

use crate::smarthome::lamp_kwh;
use knactor_core::{
    ApplyReport, CastBinding, CastMode, Composer, Composition, ContinuousConfig, FnReconciler,
    Knactor, ReconcilerCtx, Runtime, SyncConfig, SyncDest, SyncMode,
};
use knactor_dxg::Dxg;
use knactor_logstore::WindowSpec;
use knactor_net::proto::{OpSpec, ProfileSpec, QuerySpec};
use knactor_net::ExchangeApi;
use knactor_rbac::{AccessController, Condition, Role, RoleBinding, Rule, Subject, Verb};
use knactor_store::WatchEvent;
use knactor_types::{FieldPath, ObjectKey, Result, StoreId, Value};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The singleton object key each device keeps its state under.
pub const STATE_KEY: &str = "state";

/// Records per tumbling window of the continuous energy query.
pub const ENERGY_WINDOW: usize = 32;

/// Object store holding continuous-query results.
pub const ANALYTICS_STORE: &str = "house/analytics";

/// Key of the rolling windowed-energy result.
pub const ENERGY_WINDOW_KEY: &str = "energy-window";

/// A deployed Knactor smart home.
pub struct SmartHomeApp {
    pub runtime: Runtime,
    pub composer: Composer,
    api: Arc<dyn ExchangeApi>,
}

/// The Fig. 4 DXG, loaded from the shipped asset.
pub fn smarthome_dxg() -> Result<Dxg> {
    let text = std::fs::read_to_string(crate::crate_file("assets/smarthome_dxg.yaml"))?;
    Dxg::parse(&text)
}

fn bindings() -> BTreeMap<String, CastBinding> {
    let mut b = BTreeMap::new();
    b.insert(
        "H".to_string(),
        CastBinding::fixed("house/config", STATE_KEY),
    );
    b.insert(
        "M".to_string(),
        CastBinding::fixed("motion/config", STATE_KEY),
    );
    b.insert(
        "L".to_string(),
        CastBinding::fixed("lamp/config", STATE_KEY),
    );
    b
}

/// RBAC policy implementing "House may not touch the Lamp during
/// user-defined sleep hours" (22:00–07:00). Applied by the example and
/// the access-control tests; the exchange's logical clock decides.
pub fn sleep_hours_policy(ac: &mut AccessController) {
    ac.always_enforce = true;
    // Every device's reconciler owns its stores.
    for dev in ["house", "motion", "lamp"] {
        ac.add_role(Role::full_access(
            format!("{dev}-owner"),
            format!("{dev}/*"),
        ));
        ac.bind(RoleBinding::new(
            Subject::reconciler(dev),
            format!("{dev}-owner"),
        ));
    }
    // The integrator reads everything, writes House freely, but writes
    // the Lamp only outside sleep hours.
    ac.add_role(
        Role::new("home-integrator")
            .rule(Rule::on("motion/*").verbs([Verb::Get, Verb::List, Verb::Watch]))
            .rule(Rule::on("house/*").all_verbs())
            .rule(
                Rule::on("lamp/*")
                    .verbs([
                        Verb::Get,
                        Verb::List,
                        Verb::Watch,
                        Verb::Update,
                        Verb::Create,
                    ])
                    .when(Condition::OutsideMinutes {
                        start: 22 * 60,
                        end: 7 * 60,
                    }),
            ),
    );
    ac.bind(RoleBinding::new(
        Subject::integrator("home"),
        "home-integrator",
    ));
}

fn build_knactors() -> Vec<Knactor> {
    let mut knactors = Vec::new();

    // Lamp: applying a brightness change consumes energy; the reconciler
    // reports it to the lamp's own telemetry log.
    knactors.push(
        Knactor::builder("lamp")
            .object_store("config")
            .log_store("telemetry")
            .reconciler(FnReconciler::new(
                |ctx: ReconcilerCtx, event: WatchEvent| async move {
                    if let Some(b) = event.value.get("brightness").and_then(Value::as_f64) {
                        let log = ctx.log_stores.first().cloned().expect("lamp has telemetry");
                        ctx.emit(&log, json!({"kind": "energy", "kwh": lamp_kwh(b)}))
                            .await?;
                    }
                    Ok(())
                },
            ))
            .build(),
    );

    // Motion: pure sensor — state arrives from the device driver (the
    // test/example writes it); no reconcile behaviour needed.
    knactors.push(
        Knactor::builder("motion")
            .object_store("config")
            .log_store("telemetry")
            .build(),
    );

    // House: the hub; its state is filled by the integrators.
    knactors.push(
        Knactor::builder("house")
            .object_store("config")
            .log_store("telemetry")
            .build(),
    );
    knactors
}

/// Deploy the app with open access (tests drive the clock separately).
pub async fn deploy(api: Arc<dyn ExchangeApi>) -> Result<SmartHomeApp> {
    let runtime = Runtime::new();
    for knactor in build_knactors() {
        for store in &knactor.object_stores {
            api.create_store(store.clone(), ProfileSpec::Redis).await?;
        }
        for store in &knactor.log_stores {
            api.log_create_store(store.clone()).await?;
        }
        runtime
            .deploy_pre_externalized(knactor, Arc::clone(&api))
            .await?;
    }

    // Seed device state.
    for dev in ["house", "motion", "lamp"] {
        let initial = match dev {
            "house" => json!({"targetBrightness": 8.0}),
            "motion" => json!({"triggered": false, "sensitivity": 5}),
            _ => json!({"brightness": 0.0}),
        };
        api.create(
            StoreId::new(format!("{dev}/config")),
            ObjectKey::new(STATE_KEY),
            initial,
        )
        .await?;
    }

    // Results of continuous queries land here, beside the config stores.
    api.create_store(StoreId::new(ANALYTICS_STORE), ProfileSpec::Instant)
        .await?;

    // The whole home — Cast over the three config stores plus both Sync
    // pipelines and the windowed energy query — is one declarative
    // composition; one apply runs it all.
    let composer = Composer::new("home", Arc::clone(&api));
    composer.supervise(&runtime);
    composer
        .apply(smarthome_composition(smarthome_dxg()?))
        .await?;

    Ok(SmartHomeApp {
        runtime,
        composer,
        api,
    })
}

/// The full declarative composition of Fig. 4: the cast DXG plus the
/// stream-rename and snapshot-rollup Sync pipelines and the continuous
/// windowed-energy query.
pub fn smarthome_composition(dxg: Dxg) -> Composition {
    Composition::new()
        .with_cast(dxg, bindings(), CastMode::Direct)
        // Sync 1 (stream): motion telemetry → house telemetry, renamed.
        .with_sync(SyncConfig {
            name: "motion-to-house".to_string(),
            source: StoreId::new("motion/telemetry"),
            dest: SyncDest::Log(StoreId::new("house/telemetry")),
            query: QuerySpec {
                ops: vec![OpSpec::Rename {
                    from: "triggered".into(),
                    to: "motion".into(),
                }],
            },
            mode: SyncMode::Stream,
            max_batch: 1,
        })
        // Sync 2 (snapshot): lamp energy log → house `energy` rollup.
        .with_sync(SyncConfig {
            name: "energy-rollup".to_string(),
            source: StoreId::new("lamp/telemetry"),
            dest: SyncDest::ObjectField {
                store: StoreId::new("house/config"),
                key: ObjectKey::new(STATE_KEY),
                field: FieldPath::parse("energy").expect("static path"),
            },
            query: QuerySpec {
                ops: vec![OpSpec::Aggregate {
                    group_by: None,
                    agg: "sum".into(),
                    field: Some("kwh".into()),
                    as_field: "total".into(),
                }],
            },
            mode: SyncMode::Snapshot,
            max_batch: 1,
        })
        // Continuous: lamp energy per tumbling window → analytics store.
        .with_continuous(ContinuousConfig {
            name: "energy-window".to_string(),
            source: StoreId::new("lamp/telemetry"),
            query: QuerySpec {
                ops: vec![OpSpec::Aggregate {
                    group_by: None,
                    agg: "sum".into(),
                    field: Some("kwh".into()),
                    as_field: "window_kwh".into(),
                }],
            },
            window: WindowSpec::tumbling(ENERGY_WINDOW),
            dest_store: StoreId::new(ANALYTICS_STORE),
            dest_key: ObjectKey::new(ENERGY_WINDOW_KEY),
        })
}

impl SmartHomeApp {
    /// Device driver: the motion sensor fires (or clears).
    pub async fn sense_motion(&self, triggered: bool) -> Result<()> {
        self.api
            .patch(
                StoreId::new("motion/config"),
                ObjectKey::new(STATE_KEY),
                json!({"triggered": triggered}),
                false,
            )
            .await?;
        self.api
            .log_append(
                StoreId::new("motion/telemetry"),
                json!({"triggered": triggered}),
            )
            .await?;
        Ok(())
    }

    /// Current lamp brightness.
    pub async fn lamp_brightness(&self) -> Result<f64> {
        let obj = self
            .api
            .get(StoreId::new("lamp/config"), ObjectKey::new(STATE_KEY))
            .await?;
        Ok(obj.value["brightness"].as_f64().unwrap_or(0.0))
    }

    /// The latest closed energy window from the continuous query, if any
    /// window has closed yet: `(window index, summed kWh, records_total)`.
    pub async fn energy_window(&self) -> Result<Option<(u64, f64, u64)>> {
        let obj = match self
            .api
            .get(
                StoreId::new(ANALYTICS_STORE),
                ObjectKey::new(ENERGY_WINDOW_KEY),
            )
            .await
        {
            Ok(obj) => obj,
            Err(_) => return Ok(None),
        };
        let v = &obj.value;
        let (Some(w), Some(total)) = (v["window"].as_u64(), v["records_total"].as_u64()) else {
            return Ok(None);
        };
        let kwh = v["rows"][0]["window_kwh"].as_f64().unwrap_or(0.0);
        Ok(Some((w, kwh, total)))
    }

    /// House's rolled-up energy total, if computed yet.
    pub async fn house_energy(&self) -> Result<Option<f64>> {
        let obj = self
            .api
            .get(StoreId::new("house/config"), ObjectKey::new(STATE_KEY))
            .await?;
        Ok(obj.value.get("energy").and_then(Value::as_f64))
    }

    /// Wait until the lamp reaches `expected` brightness.
    pub async fn wait_for_brightness(&self, expected: f64, timeout: Duration) -> Result<()> {
        let deadline = tokio::time::Instant::now() + timeout;
        loop {
            if (self.lamp_brightness().await? - expected).abs() < 1e-9 {
                return Ok(());
            }
            if tokio::time::Instant::now() >= deadline {
                return Err(knactor_types::Error::Timeout(format!(
                    "lamp never reached brightness {expected}"
                )));
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
    }

    pub fn api(&self) -> &Arc<dyn ExchangeApi> {
        &self.api
    }

    /// Live-reconfigure the home (e.g. a new automation DXG): one
    /// `Composer::apply`, disturbing only the edges that changed.
    pub async fn apply_composition(&self, composition: Composition) -> Result<ApplyReport> {
        self.composer.apply(composition).await
    }

    pub async fn shutdown(self) {
        self.composer.shutdown_all().await;
        self.runtime.shutdown().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;

    #[tokio::test]
    async fn motion_turns_lamp_on_and_off() {
        let (_, _, client) = in_process(Subject::integrator("home"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api)).await.unwrap();

        app.sense_motion(true).await.unwrap();
        app.wait_for_brightness(8.0, Duration::from_secs(5))
            .await
            .unwrap();

        app.sense_motion(false).await.unwrap();
        app.wait_for_brightness(0.0, Duration::from_secs(5))
            .await
            .unwrap();
        app.shutdown().await;
    }

    #[tokio::test]
    async fn telemetry_flows_renamed_into_house() {
        let (_, _, client) = in_process(Subject::integrator("home"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api)).await.unwrap();

        app.sense_motion(true).await.unwrap();
        let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
        loop {
            let recs = api
                .log_read(StoreId::new("house/telemetry"), 0)
                .await
                .unwrap();
            if !recs.is_empty() {
                assert_eq!(recs[0].fields, json!({"motion": true}));
                break;
            }
            assert!(
                tokio::time::Instant::now() < deadline,
                "rename sync never ran"
            );
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        app.shutdown().await;
    }

    #[tokio::test]
    async fn energy_rolls_up_into_house_state() {
        let (_, _, client) = in_process(Subject::integrator("home"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api)).await.unwrap();

        app.sense_motion(true).await.unwrap();
        app.wait_for_brightness(8.0, Duration::from_secs(5))
            .await
            .unwrap();

        let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
        loop {
            // The first reading may be the brightness=0 activation's zero
            // accrual; keep waiting for the motion-triggered energy.
            if app.house_energy().await.unwrap().is_some_and(|e| e > 0.0) {
                break;
            }
            assert!(
                tokio::time::Instant::now() < deadline,
                "energy rollup never ran"
            );
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        app.shutdown().await;
    }

    #[tokio::test]
    async fn windowed_energy_survives_sustained_batch_ingest() {
        let (_, _, client) = in_process(Subject::integrator("home"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api)).await.unwrap();

        // Sustained telemetry at volume: batched appends racing the
        // continuous query's tail (and the store's columnar re-encode +
        // rotation underneath).
        let total: u64 = 4096;
        let batch_size: u64 = 64;
        let mut appended = 0u64;
        while appended < total {
            let batch: Vec<Value> = (0..batch_size)
                .map(|j| json!({"kind": "energy", "kwh": 0.125, "i": appended + j}))
                .collect();
            api.log_append_batch(StoreId::new("lamp/telemetry"), batch)
                .await
                .unwrap();
            appended += batch_size;
        }

        // Every record lands in exactly one window: after the barrier the
        // destination must account for all `total` records, none counted
        // twice (records_total is cumulative over *closed* windows) and
        // none missed (the last window ends exactly at seq `total`).
        let deadline = tokio::time::Instant::now() + Duration::from_secs(10);
        loop {
            app.composer.drain_all().await.unwrap();
            let window = app.energy_window().await.unwrap();
            if let Some((index, kwh, records_total)) = window {
                if records_total == total {
                    assert_eq!(index, total / ENERGY_WINDOW as u64 - 1);
                    assert!((kwh - 0.125 * ENERGY_WINDOW as f64).abs() < 1e-9);
                    break;
                }
                assert!(
                    records_total < total,
                    "double-counted: {records_total} > {total}"
                );
            }
            assert!(
                tokio::time::Instant::now() < deadline,
                "window result never caught up: {window:?}"
            );
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        app.shutdown().await;
    }

    #[tokio::test]
    async fn sleep_hours_block_lamp_writes() {
        let (object, _, client) = in_process(Subject::integrator("home"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        let app = deploy(Arc::clone(&api)).await.unwrap();
        object.configure_access(sleep_hours_policy);

        // The device itself writes through its own store (the app-level
        // client is the integrator, which may not write motion state).
        let motion = object.store(&StoreId::new("motion/config")).unwrap();
        let fire = |triggered: bool| {
            motion
                .patch(
                    &ObjectKey::new(STATE_KEY),
                    &json!({"triggered": triggered}),
                    false,
                )
                .unwrap();
        };

        // 23:30 — inside sleep hours: the Cast cannot write the lamp.
        object.set_access_context(knactor_rbac::AccessContext::at(23, 30));
        fire(true);
        tokio::time::sleep(Duration::from_millis(100)).await;
        // Lamp unchanged (read via the raw store — owner's view).
        let lamp = object.store(&StoreId::new("lamp/config")).unwrap();
        assert_eq!(
            lamp.get(&ObjectKey::new(STATE_KEY)).unwrap().value["brightness"],
            json!(0.0)
        );

        // 08:00 — awake: a fresh motion event now propagates.
        object.set_access_context(knactor_rbac::AccessContext::at(8, 0));
        fire(false);
        fire(true);
        let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
        loop {
            let v = lamp.get(&ObjectKey::new(STATE_KEY)).unwrap().value["brightness"].clone();
            if v == json!(8.0) {
                break;
            }
            assert!(
                tokio::time::Instant::now() < deadline,
                "lamp never lit after wake"
            );
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        app.shutdown().await;
    }
}
