//! Batched mutation types shared by the store core and the wire protocol.
//!
//! A batch is a *vector of independent operations*, not a transaction:
//! each item succeeds or fails on its own ([`ItemResult`]), so one
//! conflicting record does not poison its neighbours. What the batch buys
//! is amortization — one wire round-trip, one framing flush, and (for
//! durable engines) one WAL group fsync covering every item.
//!
//! The types live here (like [`crate::exchange::TxOp`]) so
//! [`crate::ObjectStore`], [`crate::StoreHandle`], and the `net` crate
//! all speak the same vocabulary.

use crate::object::StoredObject;
use knactor_types::{Error, ObjectKey, Result, Revision, Value};
use serde::{Deserialize, Serialize};

/// One mutation inside a `BatchCommit`. Mirrors the single-op API,
/// including each op's OCC knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum BatchOp {
    Create {
        key: ObjectKey,
        value: Value,
    },
    Update {
        key: ObjectKey,
        value: Value,
        #[serde(default)]
        expected: Option<Revision>,
    },
    Patch {
        key: ObjectKey,
        patch: Value,
        #[serde(default)]
        upsert: bool,
    },
    Delete {
        key: ObjectKey,
    },
}

impl BatchOp {
    pub fn key(&self) -> &ObjectKey {
        match self {
            BatchOp::Create { key, .. }
            | BatchOp::Update { key, .. }
            | BatchOp::Patch { key, .. }
            | BatchOp::Delete { key } => key,
        }
    }
}

/// One record of a `BatchPut`: a deep-merge write (the same semantics as
/// the single-op `patch`), creating the object when `upsert` is set. This
/// is the integrator workhorse — Cast and Sync write derived state as
/// merge-patches, never blind replaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PutItem {
    pub key: ObjectKey,
    pub value: Value,
    #[serde(default)]
    pub upsert: bool,
}

impl From<PutItem> for BatchOp {
    fn from(item: PutItem) -> BatchOp {
        BatchOp::Patch {
            key: item.key,
            patch: item.value,
            upsert: item.upsert,
        }
    }
}

/// Per-item outcome of a batched call. Logical failures (`not_found`,
/// `conflict`, …) ride inside the batch as `Error` items; only
/// batch-wide failures (transport loss, a dead WAL) fail the whole call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "outcome", rename_all = "snake_case")]
pub enum ItemResult {
    /// The mutation committed at this revision.
    Revision { revision: Revision },
    /// The read found this object (`BatchGet`).
    Object { object: StoredObject },
    /// The item failed; `code`/`message` follow the wire error form.
    Error { code: String, message: String },
}

impl ItemResult {
    pub fn from_revision(r: Result<Revision>) -> ItemResult {
        match r {
            Ok(revision) => ItemResult::Revision { revision },
            Err(e) => ItemResult::from_error(&e),
        }
    }

    pub fn from_object(r: Result<StoredObject>) -> ItemResult {
        match r {
            Ok(object) => ItemResult::Object { object },
            Err(e) => ItemResult::from_error(&e),
        }
    }

    pub fn from_error(e: &Error) -> ItemResult {
        ItemResult::Error {
            code: e.code().to_string(),
            message: e.wire_message(),
        }
    }

    /// Unpack a mutation item: committed revision or the item's error.
    pub fn into_revision(self) -> Result<Revision> {
        match self {
            ItemResult::Revision { revision } => Ok(revision),
            ItemResult::Object { object } => Ok(object.revision),
            ItemResult::Error { code, message } => Err(Error::from_wire(&code, &message)),
        }
    }

    /// Unpack a read item: the object or the item's error.
    pub fn into_object(self) -> Result<StoredObject> {
        match self {
            ItemResult::Object { object } => Ok(object),
            ItemResult::Revision { revision } => Err(Error::Internal(format!(
                "batch item returned a bare revision {revision} where an object was expected"
            ))),
            ItemResult::Error { code, message } => Err(Error::from_wire(&code, &message)),
        }
    }

    pub fn is_err(&self) -> bool {
        matches!(self, ItemResult::Error { .. })
    }

    pub fn as_error(&self) -> Option<Error> {
        match self {
            ItemResult::Error { code, message } => Some(Error::from_wire(code, message)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn batch_op_roundtrips_through_json() {
        let ops = vec![
            BatchOp::Create {
                key: ObjectKey::new("a"),
                value: json!({"x": 1}),
            },
            BatchOp::Update {
                key: ObjectKey::new("b"),
                value: json!(2),
                expected: Some(Revision(7)),
            },
            BatchOp::Patch {
                key: ObjectKey::new("c"),
                patch: json!({"y": 3}),
                upsert: true,
            },
            BatchOp::Delete {
                key: ObjectKey::new("d"),
            },
        ];
        let wire = serde_json::to_string(&ops).unwrap();
        let back: Vec<BatchOp> = serde_json::from_str(&wire).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn item_result_carries_typed_errors() {
        let item = ItemResult::from_error(&Error::Conflict {
            expected: 3,
            actual: 5,
        });
        assert!(item.is_err());
        let err = item.into_revision().unwrap_err();
        assert_eq!(
            err,
            Error::Conflict {
                expected: 3,
                actual: 5
            }
        );
    }

    #[test]
    fn put_item_is_patch_sugar() {
        let op: BatchOp = PutItem {
            key: ObjectKey::new("k"),
            value: json!({"v": 1}),
            upsert: true,
        }
        .into();
        assert_eq!(
            op,
            BatchOp::Patch {
                key: ObjectKey::new("k"),
                patch: json!({"v": 1}),
                upsert: true,
            }
        );
    }
}
