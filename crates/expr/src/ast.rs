//! Abstract syntax for DXG expressions.

use std::fmt;

/// Binary operators, in Python-like spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal scalar or list-of-literals constant.
    Literal(serde_json::Value),
    /// A bare identifier: service alias, `this`, or comprehension variable.
    Ident(String),
    /// Member access: `base.field`.
    Member(Box<Expr>, String),
    /// Index access: `base[expr]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call: `name(args…)`.
    Call(String, Vec<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `then if cond else otherwise` (Python conditional expression).
    If {
        then: Box<Expr>,
        cond: Box<Expr>,
        otherwise: Box<Expr>,
    },
    /// `[body for var in source if filter]`.
    Comprehension {
        body: Box<Expr>,
        var: String,
        source: Box<Expr>,
        filter: Option<Box<Expr>>,
    },
    /// List literal with non-constant elements: `[a, b.c, 1 + 2]`.
    List(Vec<Expr>),
}

impl Expr {
    /// All *free* root identifiers referenced by this expression — the
    /// service aliases (and `this`) the expression reads. Comprehension
    /// variables are bound, not free.
    ///
    /// The DXG dependency analyzer is built on this: an assignment depends
    /// on exactly the states its expression's free roots reach.
    pub fn free_roots(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_roots(&mut bound, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_roots(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Ident(name) => {
                if !bound.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Member(base, _) => base.collect_roots(bound, out),
            Expr::Index(base, idx) => {
                base.collect_roots(bound, out);
                idx.collect_roots(bound, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_roots(bound, out);
                }
            }
            Expr::Binary(_, l, r) => {
                l.collect_roots(bound, out);
                r.collect_roots(bound, out);
            }
            Expr::Unary(_, e) => e.collect_roots(bound, out),
            Expr::If {
                then,
                cond,
                otherwise,
            } => {
                then.collect_roots(bound, out);
                cond.collect_roots(bound, out);
                otherwise.collect_roots(bound, out);
            }
            Expr::Comprehension {
                body,
                var,
                source,
                filter,
            } => {
                source.collect_roots(bound, out);
                bound.push(var.clone());
                body.collect_roots(bound, out);
                if let Some(f) = filter {
                    f.collect_roots(bound, out);
                }
                bound.pop();
            }
            Expr::List(items) => {
                for i in items {
                    i.collect_roots(bound, out);
                }
            }
        }
    }

    /// The full reference paths (root + member chain) this expression
    /// reads, rendered as dotted strings like `C.order.totalCost`.
    /// Index steps and computed suffixes stop the chain at the static
    /// prefix, which is what dependency tracking needs (it is a safe
    /// over-approximation to depend on the prefix).
    pub fn reference_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_refs(&mut bound, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_refs(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Member(_, _) | Expr::Ident(_) => {
                if let Some(path) = self.static_path() {
                    let root = path.split('.').next().unwrap_or("").to_string();
                    if !bound.contains(&root) {
                        out.push(path);
                    }
                } else {
                    // Fall back to sub-expressions.
                    if let Expr::Member(base, _) = self {
                        base.collect_refs(bound, out);
                    }
                }
            }
            Expr::Literal(_) => {}
            Expr::Index(base, idx) => {
                base.collect_refs(bound, out);
                idx.collect_refs(bound, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_refs(bound, out);
                }
            }
            Expr::Binary(_, l, r) => {
                l.collect_refs(bound, out);
                r.collect_refs(bound, out);
            }
            Expr::Unary(_, e) => e.collect_refs(bound, out),
            Expr::If {
                then,
                cond,
                otherwise,
            } => {
                then.collect_refs(bound, out);
                cond.collect_refs(bound, out);
                otherwise.collect_refs(bound, out);
            }
            Expr::Comprehension {
                body,
                var,
                source,
                filter,
            } => {
                source.collect_refs(bound, out);
                bound.push(var.clone());
                body.collect_refs(bound, out);
                if let Some(f) = filter {
                    f.collect_refs(bound, out);
                }
                bound.pop();
            }
            Expr::List(items) => {
                for i in items {
                    i.collect_refs(bound, out);
                }
            }
        }
    }

    /// Render a pure `Ident`/`Member` chain as `a.b.c`, if this is one.
    pub fn static_path(&self) -> Option<String> {
        match self {
            Expr::Ident(name) => Some(name.clone()),
            Expr::Member(base, field) => {
                let mut p = base.static_path()?;
                p.push('.');
                p.push_str(field);
                Some(p)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    /// Round-trippable rendering (used by UDF pushdown to ship an
    /// expression to the store server as text).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                serde_json::Value::String(s) => {
                    write!(f, "{}", serde_json::Value::String(s.clone()))
                }
                other => write!(f, "{other}"),
            },
            Expr::Ident(name) => f.write_str(name),
            Expr::Member(base, field) => write!(f, "{base}.{field}"),
            Expr::Index(base, idx) => write!(f, "{base}[{idx}]"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(not {e})"),
            Expr::If {
                then,
                cond,
                otherwise,
            } => {
                write!(f, "({then} if {cond} else {otherwise})")
            }
            Expr::Comprehension {
                body,
                var,
                source,
                filter,
            } => {
                write!(f, "[{body} for {var} in {source}")?;
                if let Some(flt) = filter {
                    write!(f, " if {flt}")?;
                }
                f.write_str("]")
            }
            Expr::List(items) => {
                f.write_str("[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_expr;

    #[test]
    fn free_roots_sees_through_members_and_calls() {
        let e =
            parse_expr("currency_convert(S.quote.price, S.quote.currency, this.currency)").unwrap();
        assert_eq!(e.free_roots(), vec!["S".to_string(), "this".to_string()]);
    }

    #[test]
    fn comprehension_var_is_bound() {
        let e = parse_expr("[item.name for item in C.order.items]").unwrap();
        assert_eq!(e.free_roots(), vec!["C".to_string()]);
    }

    #[test]
    fn comprehension_source_root_still_free() {
        let e = parse_expr("[item for item in item]").unwrap();
        // The *source* `item` is evaluated before the variable binds.
        assert_eq!(e.free_roots(), vec!["item".to_string()]);
    }

    #[test]
    fn reference_paths_capture_full_chains() {
        let e = parse_expr("C.order.totalCost + P.fee if S.quote.ready else 0").unwrap();
        assert_eq!(
            e.reference_paths(),
            vec![
                "C.order.totalCost".to_string(),
                "P.fee".to_string(),
                "S.quote.ready".to_string()
            ]
        );
    }

    #[test]
    fn static_path_rejects_computed() {
        assert_eq!(
            parse_expr("a.b.c").unwrap().static_path(),
            Some("a.b.c".into())
        );
        assert_eq!(parse_expr("a[0].b").unwrap().static_path(), None);
        assert_eq!(parse_expr("f(x)").unwrap().static_path(), None);
    }

    #[test]
    fn display_reparses_to_same_ast() {
        for src in [
            "1 + 2 * 3",
            "a.b[0].c",
            "\"air\" if C.order.cost > 1000 else \"ground\"",
            "[item.name for item in C.order.items if item.qty > 0]",
            "not (a and b) or c",
            "currency_convert(S.quote.price, S.quote.currency, this.currency)",
            "[1, x, f(y)]",
            "-x % 3",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of '{printed}' failed: {err}"));
            assert_eq!(reparsed, e, "src '{src}' printed as '{printed}'");
        }
    }
}
