//! Sealed (immutable) segments of the log.
//!
//! The active segment is a plain `Vec<LogRecord>` inside the store's
//! mutex — cheap appends. Once it reaches capacity it is *sealed*: moved
//! behind an `Arc` and never mutated again. Readers snapshot the `Arc`s
//! under the lock and materialize rows outside it, so big scans no longer
//! stall appenders. Sealed segments are re-encoded into columnar form
//! ([`crate::columnar`]) off the lock; compaction later merges runs of
//! small sealed segments into bigger ones.
//!
//! Sequence numbers are dense per store (retention only ever drops whole
//! oldest segments), so a segment stores just its first sequence number:
//! record `i` has `seq = first_seq + i`.

use crate::columnar::{approx_value_bytes, ColumnarSegment};
use crate::store::LogRecord;
use knactor_types::Value;
use std::sync::Arc;

/// Physical layout of a sealed segment.
#[derive(Debug, Clone)]
pub enum SegmentData {
    /// Row-oriented: as appended.
    Rows(Vec<LogRecord>),
    /// Column-oriented re-encoding (dictionary + run-length).
    Columnar(ColumnarSegment),
}

/// An immutable run of consecutive records.
#[derive(Debug)]
pub struct SealedSegment {
    first_seq: u64,
    /// Inclusive.
    last_seq: u64,
    /// Approximate retained heap bytes of the payloads.
    bytes: usize,
    data: SegmentData,
}

impl SealedSegment {
    /// Seal a run of row records. `records` must be non-empty with dense
    /// consecutive sequence numbers.
    pub fn from_rows(records: Vec<LogRecord>) -> SealedSegment {
        debug_assert!(!records.is_empty());
        let first_seq = records.first().map(|r| r.seq).unwrap_or(1);
        let last_seq = records.last().map(|r| r.seq).unwrap_or(first_seq);
        let bytes = records.iter().map(|r| approx_value_bytes(&r.fields)).sum();
        SealedSegment {
            first_seq,
            last_seq,
            bytes,
            data: SegmentData::Rows(records),
        }
    }

    /// Re-encode into columnar form. Returns `None` when any payload is
    /// not an object (the segment then stays row-form) or when this
    /// segment is already columnar.
    pub fn to_columnar(&self) -> Option<SealedSegment> {
        let rows = match &self.data {
            SegmentData::Rows(records) => {
                records.iter().map(|r| r.fields.clone()).collect::<Vec<_>>()
            }
            SegmentData::Columnar(_) => return None,
        };
        let col = ColumnarSegment::encode(&rows)?;
        Some(SealedSegment {
            first_seq: self.first_seq,
            last_seq: self.last_seq,
            bytes: col.approx_bytes(),
            data: SegmentData::Columnar(col),
        })
    }

    /// Merge adjacent segments (in order, densely consecutive) into one,
    /// re-encoding columnar when `columnar` is set and the payloads allow
    /// it.
    pub fn merge(parts: &[Arc<SealedSegment>], columnar: bool) -> SealedSegment {
        debug_assert!(!parts.is_empty());
        let first_seq = parts[0].first_seq;
        let mut records = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            records.extend(p.records());
        }
        let merged = SealedSegment::from_rows(records);
        debug_assert_eq!(merged.first_seq, first_seq);
        if columnar {
            if let Some(col) = merged.to_columnar() {
                return col;
            }
        }
        merged
    }

    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    pub fn len(&self) -> usize {
        (self.last_seq - self.first_seq + 1) as usize
    }

    pub fn is_empty(&self) -> bool {
        false // sealed segments are never empty
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn is_columnar(&self) -> bool {
        matches!(self.data, SegmentData::Columnar(_))
    }

    pub fn data(&self) -> &SegmentData {
        &self.data
    }

    /// Materialize every record (payload + reconstructed seq).
    pub fn records(&self) -> Vec<LogRecord> {
        match &self.data {
            SegmentData::Rows(records) => records.clone(),
            SegmentData::Columnar(col) => col
                .materialize_all()
                .into_iter()
                .enumerate()
                .map(|(i, fields)| LogRecord {
                    seq: self.first_seq + i as u64,
                    fields,
                })
                .collect(),
        }
    }

    /// Materialize records with `seq > from`, in order.
    pub fn records_from(&self, from: u64) -> Vec<LogRecord> {
        if from < self.first_seq {
            return self.records();
        }
        if from >= self.last_seq {
            return Vec::new();
        }
        let skip = (from - self.first_seq + 1) as usize;
        match &self.data {
            SegmentData::Rows(records) => records[skip..].to_vec(),
            SegmentData::Columnar(col) => {
                let idx: Vec<u32> = (skip as u32..self.len() as u32).collect();
                col.materialize_selected(&idx)
                    .into_iter()
                    .enumerate()
                    .map(|(i, fields)| LogRecord {
                        seq: self.first_seq + (skip + i) as u64,
                        fields,
                    })
                    .collect()
            }
        }
    }

    /// Materialize just the payloads (query path).
    pub fn rows(&self) -> Vec<Value> {
        match &self.data {
            SegmentData::Rows(records) => records.iter().map(|r| r.fields.clone()).collect(),
            SegmentData::Columnar(col) => col.materialize_all(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn seg(n: u64, first: u64) -> SealedSegment {
        SealedSegment::from_rows(
            (0..n)
                .map(|i| LogRecord {
                    seq: first + i,
                    fields: json!({"i": first + i, "kind": "telemetry"}),
                })
                .collect(),
        )
    }

    #[test]
    fn columnar_round_trip_preserves_records() {
        let rows = seg(10, 5);
        let col = rows.to_columnar().unwrap();
        assert!(col.is_columnar());
        assert_eq!(col.records(), rows.records());
        assert_eq!(col.first_seq(), 5);
        assert_eq!(col.last_seq(), 14);
    }

    #[test]
    fn records_from_skips_prefix() {
        for s in [seg(10, 5), seg(10, 5).to_columnar().unwrap()] {
            assert_eq!(s.records_from(0).len(), 10);
            assert_eq!(s.records_from(7).first().unwrap().seq, 8);
            assert_eq!(s.records_from(14).len(), 0);
            assert_eq!(s.records_from(99).len(), 0);
        }
    }

    #[test]
    fn merge_concatenates_and_encodes() {
        let a = Arc::new(seg(4, 1));
        let b = Arc::new(seg(6, 5).to_columnar().unwrap());
        let m = SealedSegment::merge(&[a.clone(), b.clone()], true);
        assert!(m.is_columnar());
        assert_eq!(m.len(), 10);
        assert_eq!(m.first_seq(), 1);
        assert_eq!(m.last_seq(), 10);
        let mut want = a.records();
        want.extend(b.records());
        assert_eq!(m.records(), want);
    }

    #[test]
    fn columnar_shrinks_repetitive_payloads() {
        let rows = seg(1024, 1);
        let col = rows.to_columnar().unwrap();
        assert!(
            col.bytes() * 2 < rows.bytes(),
            "columnar {} vs rows {}",
            col.bytes(),
            rows.bytes()
        );
    }
}
