//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the value-tree `Serialize`/`Deserialize` traits from
//! the stand-in `serde` crate. The input item is parsed directly from the
//! `proc_macro` token stream (no `syn`): only the shapes this workspace
//! uses are supported — non-generic structs and enums, with the container
//! attributes `transparent`, `rename_all = "snake_case"`, `tag = "..."`,
//! and the field attributes `default` / `default = "path"`.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

// ---------------------------------------------------------------- model --

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    rename_all_snake: bool,
    tag: Option<String>,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` = custom fn.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
    is_option: bool,
}

enum VariantShape {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields (only 1 is supported).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

// --------------------------------------------------------------- parser --

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume a run of outer attributes, folding any `#[serde(...)]`
    /// contents into `c_attrs`/`f_attrs`.
    fn attrs(&mut self, c_attrs: Option<&mut ContainerAttrs>, f_attrs: Option<&mut FieldAttrs>) {
        let mut c_attrs = c_attrs;
        let mut f_attrs = f_attrs;
        while self.eat_punct('#') {
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => panic!("malformed attribute"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => continue,
            };
            let mut a = Cursor::new(args);
            while let Some(tok) = a.next() {
                let key = match tok {
                    TokenTree::Ident(i) => i.to_string(),
                    _ => continue,
                };
                let val = if a.eat_punct('=') {
                    match a.next() {
                        Some(TokenTree::Literal(l)) => Some(strip_quotes(&l.to_string())),
                        other => panic!("unsupported serde attribute value: {other:?}"),
                    }
                } else {
                    None
                };
                match (key.as_str(), &val) {
                    ("transparent", _) => {
                        if let Some(c) = c_attrs.as_deref_mut() {
                            c.transparent = true;
                        }
                    }
                    ("rename_all", Some(v)) => {
                        assert_eq!(v, "snake_case", "only rename_all=snake_case is supported");
                        if let Some(c) = c_attrs.as_deref_mut() {
                            c.rename_all_snake = true;
                        }
                    }
                    ("tag", Some(v)) => {
                        if let Some(c) = c_attrs.as_deref_mut() {
                            c.tag = Some(v.clone());
                        }
                    }
                    ("default", v) => {
                        if let Some(f) = f_attrs.as_deref_mut() {
                            f.default = Some(v.clone());
                        }
                    }
                    (other, _) => panic!("unsupported serde attribute `{other}`"),
                }
                a.eat_punct(',');
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, etc.
    fn visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consume type tokens until a top-level `,` (angle-bracket aware).
    /// Returns whether the type's head is `Option`.
    fn field_type(&mut self) -> bool {
        let is_option =
            matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "Option");
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        is_option
    }

    fn named_fields(group: TokenStream) -> Vec<Field> {
        let mut c = Cursor::new(group);
        let mut fields = Vec::new();
        while c.peek().is_some() {
            let mut fa = FieldAttrs::default();
            c.attrs(None, Some(&mut fa));
            if c.peek().is_none() {
                break;
            }
            c.visibility();
            let name = match c.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected field name, got {other:?}"),
            };
            assert!(c.eat_punct(':'), "expected ':' after field `{name}`");
            let is_option = c.field_type();
            c.eat_punct(',');
            fields.push(Field {
                name,
                attrs: fa,
                is_option,
            });
        }
        fields
    }

    fn tuple_field_count(group: TokenStream) -> usize {
        let mut c = Cursor::new(group);
        if c.peek().is_none() {
            return 0;
        }
        let mut count = 0;
        while c.peek().is_some() {
            let mut fa = FieldAttrs::default();
            c.attrs(None, Some(&mut fa));
            c.visibility();
            c.field_type();
            c.eat_punct(',');
            count += 1;
        }
        count
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.char_indices() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let mut attrs = ContainerAttrs::default();
    c.attrs(Some(&mut attrs), None);
    c.visibility();

    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("derive input must be a struct or enum, got {:?}", c.peek());
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the offline serde_derive");
    }

    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && !is_enum => {
            Body::NamedStruct(Cursor::named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Body::TupleStruct(Cursor::tuple_field_count(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && is_enum => {
            let mut vc = Cursor::new(g.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.attrs(None, None);
                if vc.peek().is_none() {
                    break;
                }
                let vname = match vc.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    other => panic!("expected variant name, got {other:?}"),
                };
                let shape = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = Cursor::tuple_field_count(g.stream());
                        vc.pos += 1;
                        assert_eq!(n, 1, "only newtype enum variants are supported ({vname})");
                        VariantShape::Newtype
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = Cursor::named_fields(g.stream());
                        vc.pos += 1;
                        VariantShape::Named(fields)
                    }
                    _ => VariantShape::Unit,
                };
                // Skip an optional discriminant (`= expr`) up to the comma.
                if vc.eat_punct('=') {
                    while let Some(tok) = vc.peek() {
                        if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                            break;
                        }
                        vc.pos += 1;
                    }
                }
                vc.eat_punct(',');
                variants.push(Variant { name: vname, shape });
            }
            Body::Enum(variants)
        }
        other => panic!("unsupported item body: {other:?}"),
    };

    Item { name, attrs, body }
}

// -------------------------------------------------------------- codegen --

const VALUE: &str = "::serde::__private::Value";
const MAP: &str = "::serde::__private::Map";
const ERROR: &str = "::serde::__private::Error";
const SER: &str = "::serde::ser::Serialize";
const DE: &str = "::serde::de::Deserialize";

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = parse_item(input);
    let code = match dir {
        Direction::Serialize => gen_serialize(&item),
        Direction::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

fn wire_name(item: &Item, raw: &str) -> String {
    if item.attrs.rename_all_snake {
        snake_case(raw)
    } else {
        raw.to_string()
    }
}

fn missing_expr(item: &Item, f: &Field) -> String {
    match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::std::default::Default::default()".to_string(),
        None if f.is_option => "::std::option::Option::None".to_string(),
        None => format!(
            "return ::std::result::Result::Err(::serde::__private::missing_field(\"{}\", \"{}\"))",
            item.name, f.name
        ),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::TupleStruct(n) => {
            assert_eq!(*n, 1, "only newtype tuple structs are supported ({name})");
            format!("{SER}::serialize_value(&self.0)")
        }
        Body::NamedStruct(fields) => {
            let mut s = format!("let mut __map = {MAP}::new();\n");
            for f in fields {
                let key = wire_name(item, &f.name);
                s.push_str(&format!(
                    "__map.insert(\"{key}\", {SER}::serialize_value(&self.{}));\n",
                    f.name
                ));
            }
            s.push_str(&format!("{VALUE}::Object(__map)"));
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wname = wire_name(item, &v.name);
                match (&v.shape, &item.attrs.tag) {
                    (VariantShape::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => {VALUE}::String(\"{wname}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => {{ let mut __m = {MAP}::new(); \
                             __m.insert(\"{tag}\", {VALUE}::String(\"{wname}\".to_string())); \
                             {VALUE}::Object(__m) }}\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Newtype, None) => {
                        arms.push_str(&format!(
                            "{name}::{v}(__inner) => {{ let mut __m = {MAP}::new(); \
                             __m.insert(\"{wname}\", {SER}::serialize_value(__inner)); \
                             {VALUE}::Object(__m) }}\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Newtype, Some(_)) => {
                        panic!(
                            "newtype variants cannot be internally tagged ({name}::{})",
                            v.name
                        )
                    }
                    (VariantShape::Named(fields), tag) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner =
                            String::from("let mut __m = ::serde::__private::Map::new();\n");
                        if let Some(tag) = tag {
                            inner.push_str(&format!(
                                "__m.insert(\"{tag}\", {VALUE}::String(\"{wname}\".to_string()));\n"
                            ));
                        }
                        for f in fields {
                            let key = wire_name(item, &f.name);
                            inner.push_str(&format!(
                                "__m.insert(\"{key}\", {SER}::serialize_value({}));\n",
                                f.name
                            ));
                        }
                        let payload = if tag.is_some() {
                            format!("{inner}{VALUE}::Object(__m)")
                        } else {
                            format!(
                                "{inner}let mut __outer = {MAP}::new(); \
                                 __outer.insert(\"{wname}\", {VALUE}::Object(__m)); \
                                 {VALUE}::Object(__outer)"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{ {payload} }}\n",
                            v = v.name,
                            pat = pat.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl {SER} for {name} {{\n\
         fn serialize_value(&self) -> {VALUE} {{\n{body}\n}}\n}}\n"
    )
}

fn named_fields_from_obj(item: &Item, variant_path: &str, fields: &[Field]) -> String {
    let mut s = format!("::std::result::Result::Ok({variant_path} {{\n");
    for f in fields {
        let key = wire_name(item, &f.name);
        s.push_str(&format!(
            "{fname}: match __obj.get(\"{key}\") {{\n\
             ::std::option::Option::Some(__v) => {DE}::deserialize_value(__v)?,\n\
             ::std::option::Option::None => {{ {missing} }},\n}},\n",
            fname = f.name,
            missing = missing_expr(item, f)
        ));
    }
    s.push_str("})");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::TupleStruct(n) => {
            assert_eq!(*n, 1, "only newtype tuple structs are supported ({name})");
            format!("::std::result::Result::Ok({name}({DE}::deserialize_value(__value)?))")
        }
        Body::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::__private::expected_object(\"{name}\", __value))?;\n"
            );
            s.push_str(&named_fields_from_obj(item, name, fields));
            s
        }
        Body::Enum(variants) => match &item.attrs.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let wname = wire_name(item, &v.name);
                    match &v.shape {
                        VariantShape::Unit => {
                            arms.push_str(&format!(
                                "\"{wname}\" => ::std::result::Result::Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantShape::Named(fields) => {
                            arms.push_str(&format!(
                                "\"{wname}\" => {{ {} }}\n",
                                named_fields_from_obj(item, &format!("{name}::{}", v.name), fields)
                            ));
                        }
                        VariantShape::Newtype => {
                            panic!(
                                "newtype variants cannot be internally tagged ({name}::{})",
                                v.name
                            )
                        }
                    }
                }
                format!(
                    "let __obj = __value.as_object().ok_or_else(|| \
                     ::serde::__private::expected_object(\"{name}\", __value))?;\n\
                     let __tag = __obj.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| \
                     {ERROR}::msg(\"missing `{tag}` tag for enum {name}\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => ::std::result::Result::Err(\
                     ::serde::__private::unknown_variant(\"{name}\", __other)),\n}}"
                )
            }
            None => {
                let mut unit_arms = String::new();
                let mut data_arms = String::new();
                for v in variants {
                    let wname = wire_name(item, &v.name);
                    match &v.shape {
                        VariantShape::Unit => {
                            unit_arms.push_str(&format!(
                                "\"{wname}\" => ::std::result::Result::Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantShape::Newtype => {
                            data_arms.push_str(&format!(
                                "\"{wname}\" => ::std::result::Result::Ok(\
                                 {name}::{v}({DE}::deserialize_value(__inner)?)),\n",
                                v = v.name
                            ));
                        }
                        VariantShape::Named(fields) => {
                            data_arms.push_str(&format!(
                                "\"{wname}\" => {{\n\
                                 let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::__private::expected_object(\"{name}\", __inner))?;\n\
                                 {}\n}}\n",
                                named_fields_from_obj(item, &format!("{name}::{}", v.name), fields)
                            ));
                        }
                    }
                }
                format!(
                    "match __value {{\n\
                     {VALUE}::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(\
                     ::serde::__private::unknown_variant(\"{name}\", __other)),\n}},\n\
                     {VALUE}::Object(__m) if __m.len() == 1 => {{\n\
                     let (__k, __inner) = __m.iter().next().unwrap();\n\
                     match __k.as_str() {{\n{data_arms}\
                     __other => ::std::result::Result::Err(\
                     ::serde::__private::unknown_variant(\"{name}\", __other)),\n}}\n}},\n\
                     __other => ::std::result::Result::Err({ERROR}::msg(\
                     format!(\"invalid value for enum {name}: {{__other}}\"))),\n}}"
                )
            }
        },
    };
    format!(
        "#[automatically_derived]\nimpl<'de> {DE}<'de> for {name} {{\n\
         fn deserialize_value(__value: &{VALUE}) -> ::std::result::Result<Self, {ERROR}> {{\n\
         {body}\n}}\n}}\n"
    )
}
