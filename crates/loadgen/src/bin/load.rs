//! Rate-sweep load harness: both case-study apps on a real TCP
//! exchange, open-loop arrival schedules, SLO percentiles per config.
//!
//! ```text
//! cargo run -p knactor-loadgen --bin load --release           # full
//! cargo run -p knactor-loadgen --bin load --release -- quick  # CI variant
//! ```
//!
//! For each app (retail, smart-home) the harness deploys the composed
//! knactor application against an [`ExchangeServer`], preloads the
//! keyspace, then sweeps a ladder of offered rates. Every sweep point
//! runs the deterministic app-shaped workload open loop (see
//! `knactor_loadgen::driver`) with a population of churning watch
//! subscribers, and reports achieved throughput, p50/p95/p99 latency,
//! and shed/error rates — all read from the metrics registry. The exit
//! path gracefully drains the apps' reconciler backlogs (bounded) and
//! reports how much queued work the saturating sweep left behind.
//! Output: `BENCH_load.json` (one row per config, plus the drain report)
//! and `target/metrics.prom` (the full registry in Prometheus exposition
//! format).
//!
//! The seed is printed and embedded in the report so any configuration
//! can be replayed exactly.

use knactor_apps::{retail, smarthome};
use knactor_loadgen::{driver, report, OpGen, RunConfig, WorkloadSpec};
use knactor_net::{ExchangeApi, ExchangeServer, TcpClient};
use knactor_rbac::Subject;
use knactor_types::StoreId;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x6C6F_6164;

struct SweepPlan {
    rates: Vec<f64>,
    duration: Duration,
    watchers: usize,
}

impl SweepPlan {
    fn new(quick: bool) -> SweepPlan {
        if quick {
            SweepPlan {
                rates: vec![400.0, 800.0, 1600.0, 3200.0],
                duration: Duration::from_millis(1500),
                watchers: 4,
            }
        } else {
            SweepPlan {
                rates: vec![1000.0, 2000.0, 4000.0, 8000.0, 16000.0],
                duration: Duration::from_secs(4),
                watchers: 8,
            }
        }
    }
}

/// Preload the retail keyspace so measured reads are hits.
async fn preload_retail(api: &dyn ExchangeApi, gen: &OpGen) {
    let store = StoreId::new("checkout/state");
    for key in gen.retail_keys() {
        api.patch(
            store.clone(),
            key,
            json!({"order": {"amount": 1.0, "addr": "preload", "items": []}}),
            true,
        )
        .await
        .expect("preload retail key");
    }
}

async fn sweep_app(
    server: &ExchangeServer,
    plan: &SweepPlan,
    spec: WorkloadSpec,
    watch_store: &str,
) -> Vec<serde_json::Value> {
    let app = spec.app.label();
    let client = TcpClient::connect(
        server.local_addr(),
        Subject::operator(format!("load-{app}")),
    )
    .await
    .expect("connect load client");
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    let mut gen = OpGen::new(spec);
    if gen.spec().app == knactor_loadgen::AppKind::Retail {
        preload_retail(api.as_ref(), &gen).await;
    }

    let mut rows = Vec::new();
    for rate in &plan.rates {
        let label = format!("rate-{}", *rate as u64);
        let cfg = RunConfig::new(&label, *rate, plan.duration).with_watchers(
            plan.watchers,
            watch_store,
            Duration::from_millis(300),
        );
        let outcome = driver::run(Arc::clone(&api), server.local_addr(), &mut gen, &cfg).await;
        let snapshot = report::global_snapshot();
        let row = report::config_row(app, &outcome, &snapshot);
        eprintln!(
            "{app:>9} {label:>10}: achieved {:>8.0}/s ok={} shed={} err={} unsent={} p99={:?}ms",
            outcome.achieved_rate,
            outcome.ok,
            outcome.shed,
            outcome.errors,
            outcome.unsent,
            row["p99_ms"].as_f64().map(|v| (v * 100.0).round() / 100.0),
        );
        rows.push(row);
    }
    rows
}

async fn run(quick: bool) -> serde_json::Value {
    let plan = SweepPlan::new(quick);
    let server = ExchangeServer::bind_ephemeral().await.expect("bind server");

    // Deploy both composed apps on the one exchange, each over its own
    // integrator connection — the measured system includes reconcilers,
    // Cast, and the Sync/continuous pipelines reacting to the load.
    let retail_client = TcpClient::connect(server.local_addr(), Subject::integrator("retail"))
        .await
        .expect("connect retail integrator");
    let retail_app = retail::knactor_app::deploy(
        Arc::new(retail_client),
        retail::knactor_app::RetailOptions::default(),
    )
    .await
    .expect("deploy retail app");

    let home_client = TcpClient::connect(server.local_addr(), Subject::integrator("home"))
        .await
        .expect("connect home integrator");
    let home_app = smarthome::knactor_app::deploy(Arc::new(home_client))
        .await
        .expect("deploy smart-home app");

    eprintln!("seed: {SEED:#x}");
    let retail_rows = sweep_app(&server, &plan, WorkloadSpec::retail(SEED), "checkout/state").await;
    let home_rows = sweep_app(
        &server,
        &plan,
        WorkloadSpec::smarthome(SEED),
        "house/config",
    )
    .await;

    // Drain step: after an intentionally saturating sweep, the apps'
    // reconcilers still hold queued watch events the SLO rows never see.
    // A graceful `shutdown()` replays that backlog; we time it (bounded)
    // and report what drained, so the offered-vs-reconciled deficit is a
    // measured number instead of work silently dropped at exit.
    let drain_cap = if quick {
        Duration::from_secs(15)
    } else {
        Duration::from_secs(60)
    };
    let drain_before = report::global_snapshot();
    let drain_start = std::time::Instant::now();
    let drained_fully = tokio::time::timeout(drain_cap, async move {
        retail_app.shutdown().await;
        home_app.shutdown().await;
    })
    .await
    .is_ok();
    let drain_elapsed = drain_start.elapsed();
    let drain_after = report::global_snapshot();
    let activations = |snapshot: &knactor_types::metrics::MetricsSnapshot| -> u64 {
        snapshot
            .counters
            .iter()
            .filter(|c| c.name == "knactor_activations_total")
            .map(|c| c.value)
            .sum()
    };
    let drained = activations(&drain_after) - activations(&drain_before);
    eprintln!(
        "drain: {drained} activations in {:.2}s (complete: {drained_fully}, cap {:?})",
        drain_elapsed.as_secs_f64(),
        drain_cap,
    );

    let snapshot = report::global_snapshot();
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/metrics.prom", snapshot.to_prometheus())
        .expect("write target/metrics.prom");
    eprintln!("wrote target/metrics.prom");

    server.shutdown().await;

    json!({
        "description": "Open-loop rate sweep against the composed retail and smart-home apps over real TCP (cargo run -p knactor-loadgen --bin load --release). Each config offers a fixed arrival rate for a fixed duration — never gated on completions — with churning watch subscribers alongside; latency is measured from scheduled start to completion (coordinated-omission-free) and percentiles are read from the shared metrics registry. shed counts typed Overloaded rejections from server admission control; unsent counts scheduled ops the generator's bounded executor pool never dispatched before the drain window closed (the offered-vs-achievable deficit past deep saturation).",
        "seed": SEED,
        "quick": quick,
        "apps": {
            "retail": {"configs": retail_rows},
            "smarthome": {"configs": home_rows},
        },
        "drain": {
            "description": "Graceful post-sweep shutdown: reconciler backlogs replayed before exit (bounded by cap_seconds). activations_drained counts reconciler activations completed during the drain — the work the saturating sweep queued but the SLO rows never saw. complete=false means the cap expired with backlog remaining.",
            "activations_drained": drained,
            "drain_seconds": drain_elapsed.as_secs_f64(),
            "cap_seconds": drain_cap.as_secs_f64(),
            "complete": drained_fully,
        },
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(run(quick));

    let text = serde_json::to_string(&result).unwrap();
    println!("{text}");
    std::fs::write("BENCH_load.json", format!("{text}\n")).expect("write BENCH_load.json");
    eprintln!("wrote BENCH_load.json");

    // Acceptance floors: at least 4 sweep points per app, every point
    // completed work and produced registry-backed percentiles.
    for app in ["retail", "smarthome"] {
        let configs = result["apps"][app]["configs"].as_array().unwrap();
        assert!(
            configs.len() >= 4,
            "{app}: {} sweep configs, need >= 4",
            configs.len()
        );
        for row in configs {
            let label = row["config"].as_str().unwrap();
            assert!(
                row["completed"].as_u64().unwrap() > 0,
                "{app}/{label}: no completed ops"
            );
            for q in ["p50_ms", "p95_ms", "p99_ms"] {
                assert!(
                    row[q].as_f64().is_some(),
                    "{app}/{label}: missing {q} (seed {SEED:#x})"
                );
            }
            assert_eq!(
                row["abandoned"].as_u64().unwrap(),
                0,
                "{app}/{label}: ops still hung after drain (seed {SEED:#x})"
            );
        }
    }
}
