//! Table 2: latency of one shipment request, with per-stage breakdown.
//!
//! Stage definitions (matching the paper's columns):
//!
//! * **C-I** — Checkout → integrator: from the order's commit in the
//!   Checkout store to the start of the Cast activation that reads it.
//!   Dominated by the exchange's watch-delivery behaviour (list-watch
//!   polling for K-apiserver, push for K-redis).
//! * **I** — integrator compute: expression evaluation (Direct) or the
//!   whole in-exchange UDF execution (pushdown).
//! * **I-S** — integrator → Shipping: writing the shipment request into
//!   Shipping's store. Zero for pushdown — the write happens inside the
//!   exchange during **I**.
//! * **S** — shipment processing: from the shipment request's commit to
//!   the Shipping reconciler's quote/tracking commit (includes the
//!   simulated carrier API, the paper's ≈446 ms bottleneck).
//! * **Prop.** — Total − S: everything the composition mechanism adds.
//! * **Total** — order commit → tracking id back on the order.
//!
//! Ground-truth commit times come from *raw* store watches (immediate,
//! regardless of engine profile), so the measured stages see exactly the
//! delays the engine profiles inject plus real WAL/fsync costs.

use knactor_apps::retail::knactor_app::{self, RetailOptions};
use knactor_apps::retail::rpc_app::{serve_providers, CheckoutRpc};
use knactor_apps::retail::sample_order;
use knactor_core::CastMode;
use knactor_net::loopback::in_process;
use knactor_net::proto::ProfileSpec;
use knactor_net::ExchangeApi;
use knactor_rbac::Subject;
use knactor_types::{Result, StoreId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Averaged stage breakdown for one setup.
#[derive(Debug, Clone)]
pub struct Breakdown {
    pub setup: String,
    /// `None` renders as `-` (stages that do not exist for RPC).
    pub c_i: Option<Duration>,
    pub i: Option<Duration>,
    pub i_s: Option<Duration>,
    pub s: Duration,
    pub prop: Duration,
    pub total: Duration,
}

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

fn ms_opt(d: Option<Duration>) -> String {
    d.map(ms).unwrap_or_else(|| "-".to_string())
}

impl Breakdown {
    pub fn row(&self) -> Vec<String> {
        vec![
            self.setup.clone(),
            ms_opt(self.c_i),
            ms_opt(self.i),
            ms_opt(self.i_s),
            ms(self.s),
            ms(self.prop),
            ms(self.total),
        ]
    }
}

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Simulated carrier processing (the paper measured ≈446 ms).
    pub shipment_processing: Duration,
    /// Modeled pod-to-pod RTT added to every RPC call in the baseline.
    pub rpc_rtt: Duration,
    pub iterations: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            shipment_processing: Duration::from_millis(446),
            rpc_rtt: Duration::from_micros(300),
            iterations: 5,
        }
    }
}

impl Params {
    /// Fast variant for CI and tests.
    pub fn quick() -> Params {
        Params {
            shipment_processing: Duration::from_millis(30),
            rpc_rtt: Duration::from_micros(300),
            iterations: 2,
        }
    }
}

/// Measure the RPC baseline.
pub async fn measure_rpc(params: &Params) -> Result<Breakdown> {
    let server = serve_providers(params.shipment_processing).await?;
    let checkout =
        CheckoutRpc::connect_with_latency(server.local_addr().expect("bound"), params.rpc_rtt)
            .await?;
    let mut totals = Duration::ZERO;
    for i in 0..params.iterations {
        let order = sample_order(1200.0 + i as f64);
        let t0 = Instant::now();
        checkout.place_order(&order).await?;
        totals += t0.elapsed();
    }
    server.shutdown().await;
    let total = totals / params.iterations;
    // Calibrate S to the timer's actual behaviour (tokio sleeps overshoot
    // by ~a millisecond); otherwise the overshoot would be misattributed
    // to propagation. The Knactor setups measure S between store commits,
    // which absorbs the same overshoot automatically.
    let s = {
        let mut acc = Duration::ZERO;
        for _ in 0..3 {
            let t = Instant::now();
            tokio::time::sleep(params.shipment_processing).await;
            acc += t.elapsed();
        }
        acc / 3
    };
    Ok(Breakdown {
        setup: "RPC".to_string(),
        c_i: None,
        i: None,
        i_s: None,
        s,
        prop: total.saturating_sub(s),
        total,
    })
}

/// Measure one Knactor configuration.
pub async fn measure_knactor(
    setup: &str,
    profile: ProfileSpec,
    mode: CastMode,
    params: &Params,
) -> Result<Breakdown> {
    let (object, _, client) = in_process(Subject::integrator("retail"));
    // Fresh WAL directory per measurement: a durable profile must not
    // replay a previous run's state.
    let data_dir = std::env::temp_dir().join(format!(
        "knactor-table2-{}-{}",
        std::process::id(),
        unique_run_id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    let client = client.with_data_dir(&data_dir);
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let app = knactor_app::deploy(
        Arc::clone(&api),
        RetailOptions {
            shipment_processing: params.shipment_processing,
            profile,
            mode: mode.clone(),
        },
    )
    .await?;

    // Ground-truth watches, immediate regardless of engine profile.
    let checkout_store = object.store(&StoreId::new("checkout/state"))?;
    let shipping_store = object.store(&StoreId::new("shipping/state"))?;

    let mut acc = StageAcc::default();
    for i in 0..params.iterations {
        let key = format!("bench-order-{i}");
        let mut checkout_events = checkout_store.watch_from(checkout_store.revision())?;
        let mut shipping_events = shipping_store.watch_from(shipping_store.revision())?;
        app.traces.clear();

        let order = sample_order(1200.0 + i as f64);
        let t_order = Instant::now();
        api.create(StoreId::new("checkout/state"), key.as_str().into(), order)
            .await?;

        // Commit timestamps from the raw event streams.
        let mut t_ship_request: Option<Instant> = None;
        let mut t_quote: Option<Instant> = None;
        let mut t_complete: Option<Instant> = None;
        let deadline = Instant::now() + params.shipment_processing + Duration::from_secs(20);
        while t_complete.is_none() {
            if Instant::now() > deadline {
                return Err(knactor_types::Error::Timeout(format!(
                    "{setup}: order {key} never completed"
                )));
            }
            tokio::select! {
                // Biased: drain shipping events first so the causal order
                // (request → quote → completion) is observed even when
                // both channels have pending events.
                biased;
                e = shipping_events.recv() => {
                    let Some(e) = e else { break };
                    if e.key.as_str() != key { continue; }
                    let now = Instant::now();
                    let has_addr = e.value.get("addr").map(|v| !v.is_null()).unwrap_or(false);
                    let has_id = e.value.get("id").map(|v| !v.is_null()).unwrap_or(false);
                    if has_addr && t_ship_request.is_none() {
                        t_ship_request = Some(now);
                    }
                    if has_id && t_quote.is_none() {
                        t_quote = Some(now);
                    }
                }
                e = checkout_events.recv() => {
                    let Some(e) = e else { break };
                    if e.key.as_str() != key { continue; }
                    let done = e.value["order"].get("trackingID")
                        .map(|v| !v.is_null()).unwrap_or(false);
                    if done && t_complete.is_none() {
                        t_complete = Some(Instant::now());
                    }
                }
            }
        }
        let (Some(t_ship_request), Some(t_quote), Some(t_complete)) =
            (t_ship_request, t_quote, t_complete)
        else {
            return Err(knactor_types::Error::Internal(format!(
                "{setup}: missing stage timestamps (ship_request={} quote={} complete={})",
                t_ship_request.is_some(),
                t_quote.is_some(),
                t_complete.is_some(),
            )));
        };

        // Integrator-side spans for this order.
        let spans = app.traces.trace(&key);
        let first_read = spans
            .iter()
            .filter(|s| s.stage == "read-sources" || s.stage == "pushdown-execute")
            .min_by_key(|s| s.started_at());
        let c_i = first_read
            .map(|s| s.started_at().saturating_duration_since(t_order))
            .unwrap_or(Duration::ZERO);
        let (i_stage, i_s_stage) = match &mode {
            CastMode::Pushdown { .. } => {
                let i = spans
                    .iter()
                    .filter(|s| s.stage == "pushdown-execute")
                    .map(|s| s.duration)
                    .max()
                    .unwrap_or(Duration::ZERO);
                (i, Duration::ZERO)
            }
            CastMode::Direct => {
                let reads: Duration = first_read.map(|s| s.duration).unwrap_or(Duration::ZERO);
                let eval: Duration = spans
                    .iter()
                    .filter(|s| s.stage == "evaluate")
                    .map(|s| s.duration)
                    .sum();
                let write_s = spans
                    .iter()
                    .filter(|s| s.stage == "write:S")
                    .map(|s| s.duration)
                    .max()
                    .unwrap_or(Duration::ZERO);
                (reads + eval, write_s)
            }
        };

        let s = t_quote.duration_since(t_ship_request);
        let total = t_complete.duration_since(t_order);
        acc.add(c_i, i_stage, i_s_stage, s, total);
    }

    app.shutdown().await;
    let _ = std::fs::remove_dir_all(&data_dir);
    Ok(acc.finish(setup, params.iterations))
}

fn unique_run_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    N.fetch_add(1, Ordering::Relaxed)
}

#[derive(Default)]
struct StageAcc {
    c_i: Duration,
    i: Duration,
    i_s: Duration,
    s: Duration,
    total: Duration,
}

impl StageAcc {
    fn add(&mut self, c_i: Duration, i: Duration, i_s: Duration, s: Duration, total: Duration) {
        self.c_i += c_i;
        self.i += i;
        self.i_s += i_s;
        self.s += s;
        self.total += total;
    }

    fn finish(self, setup: &str, n: u32) -> Breakdown {
        let total = self.total / n;
        let s = self.s / n;
        Breakdown {
            setup: setup.to_string(),
            c_i: Some(self.c_i / n),
            i: Some(self.i / n),
            i_s: Some(self.i_s / n),
            s,
            prop: total.saturating_sub(s),
            total,
        }
    }
}

/// Run all four setups.
pub async fn run_all(params: &Params) -> Result<Vec<Breakdown>> {
    let mut rows = Vec::new();
    rows.push(measure_rpc(params).await?);
    rows.push(
        measure_knactor(
            "K-apiserver",
            ProfileSpec::Apiserver,
            CastMode::Direct,
            params,
        )
        .await?,
    );
    rows.push(measure_knactor("K-redis", ProfileSpec::Redis, CastMode::Direct, params).await?);
    rows.push(
        measure_knactor(
            "K-redis-udf",
            ProfileSpec::Redis,
            CastMode::Pushdown {
                udf_name: "retail-dxg".to_string(),
            },
            params,
        )
        .await?,
    );
    Ok(rows)
}

/// Render the paper-style table.
pub fn render(rows: &[Breakdown]) -> String {
    crate::render_table(
        &["Setup", "C-I", "I", "I-S", "S", "Prop. (ms)", "Total (ms)"],
        &rows.iter().map(Breakdown::row).collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn quick_run_has_expected_shape() {
        let params = Params::quick();
        let rows = run_all(&params).await.unwrap();
        assert_eq!(rows.len(), 4);
        let by_name = |n: &str| rows.iter().find(|r| r.setup == n).unwrap().clone();
        let rpc = by_name("RPC");
        let apiserver = by_name("K-apiserver");
        let redis = by_name("K-redis");
        let udf = by_name("K-redis-udf");

        // S dominates everywhere.
        for r in &rows {
            assert!(
                r.s >= params.shipment_processing / 2,
                "{}: S = {:?}",
                r.setup,
                r.s
            );
            assert!(r.total >= r.s, "{}", r.setup);
        }
        // Propagation ordering: apiserver ≫ redis ≥ udf; RPC smallest.
        assert!(
            apiserver.prop > redis.prop,
            "apiserver {:?} !> redis {:?}",
            apiserver.prop,
            redis.prop
        );
        assert!(
            redis.prop >= udf.prop || redis.prop < Duration::from_millis(2),
            "redis {:?} vs udf {:?}",
            redis.prop,
            udf.prop
        );
        assert!(rpc.prop < apiserver.prop);
        // The apiserver's C-I reflects poll-based watch delivery (≥ ~5ms).
        assert!(apiserver.c_i.unwrap() > Duration::from_millis(4));
        // Pushdown eliminates the I-S hop.
        assert_eq!(udf.i_s.unwrap(), Duration::ZERO);
        let _ = render(&rows);
    }
}
