//! Watch-resume regressions: the `WatchTooOld` error stays *typed* across
//! the wire (the resilient client dispatches on it, so a stringly-typed
//! regression would silently break resume), and the re-list fallback
//! reconstructs state when the resume point has fallen out of the
//! server's bounded history.

use knactor_net::{ExchangeApi, ExchangeServer, ResilientClient, RetryPolicy, TcpClient};
use knactor_net::{FaultPlan, FaultProxy};
use knactor_rbac::Subject;
use knactor_store::{EngineProfile, EventKind};
use knactor_types::{Error, ObjectKey, Revision, StoreId, Value};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const STORE: &str = "resume/state";

fn key(i: u64) -> ObjectKey {
    ObjectKey::new(format!("obj-{i}"))
}

fn val(i: u64) -> Value {
    json!({"n": i})
}

/// A server whose store keeps only the last `cap` events for replay,
/// pre-loaded with `writes` objects.
async fn trimmed_server(cap: usize, writes: u64) -> ExchangeServer {
    let server = ExchangeServer::bind_ephemeral().await.unwrap();
    let profile = EngineProfile {
        history_cap: cap,
        ..EngineProfile::instant()
    };
    server
        .object
        .create_store(StoreId::new(STORE), profile)
        .unwrap();
    let store = server.object.store(&StoreId::new(STORE)).unwrap();
    for i in 0..writes {
        store.create(key(i), val(i)).unwrap();
    }
    server
}

/// The wire preserves `WatchTooOld` as a *typed* error with both fields
/// intact — not a generic transport/internal string. `history_cap = 4`
/// after 10 commits retains revisions 7..=10, so a resume from 1 must
/// report oldest = 7 exactly.
#[tokio::test]
async fn watch_too_old_roundtrips_typed_over_the_wire() {
    let server = trimmed_server(4, 10).await;
    let client = TcpClient::connect(server.local_addr(), Subject::operator("w"))
        .await
        .unwrap();
    let err = client.watch(STORE.into(), Revision(1)).await.unwrap_err();
    match err {
        Error::WatchTooOld { from, oldest } => {
            assert_eq!(from, 1);
            assert_eq!(oldest, 7);
        }
        other => panic!("expected typed WatchTooOld, got {other:?}"),
    }
    // A resume inside the window still works over the same connection.
    assert!(client.watch(STORE.into(), Revision(7)).await.is_ok());
    server.shutdown().await;
}

/// Resume-after-horizon fallback: a resilient watch from `ZERO` on a
/// store whose history no longer reaches back that far re-lists and
/// synthesizes `Updated` events for every object, in revision order,
/// then continues live with no gap.
#[tokio::test]
async fn resilient_watch_falls_back_to_relist_after_horizon() {
    const WRITES: u64 = 10;
    let server = trimmed_server(4, WRITES).await;
    let client = ResilientClient::connect(
        server.local_addr(),
        Subject::operator("w"),
        RetryPolicy::default(),
    )
    .await
    .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);

    let mut events = api.watch(STORE.into(), Revision::ZERO).await.unwrap();
    // The synthetic re-list: every object once, ascending revision (for
    // a create-only store each object's revision is its creation).
    for i in 0..WRITES {
        let event = tokio::time::timeout(Duration::from_secs(5), events.recv())
            .await
            .expect("relist event timed out")
            .expect("stream ended during relist");
        assert_eq!(event.kind, EventKind::Updated, "relist synthesizes Updated");
        assert_eq!(event.revision, Revision(i + 1));
        assert_eq!(event.key, key(i));
        assert_eq!(*event.value, val(i));
    }
    // Live continuation, gaplessly from the listing revision.
    let store = server.object.store(&StoreId::new(STORE)).unwrap();
    store.create(key(100), val(100)).unwrap();
    let live = tokio::time::timeout(Duration::from_secs(5), events.recv())
        .await
        .expect("live event timed out")
        .expect("stream ended after relist");
    assert_eq!(live.revision, Revision(WRITES + 1));
    assert_eq!(live.key, key(100));
    server.shutdown().await;
}

/// Deletes and creates that happen while the watcher is disconnected are
/// not lost: after a forced disconnect, the stream (by replay if history
/// still covers the gap, by re-list with synthesized `Deleted` events if
/// it does not) converges the consumer's materialized view to the
/// server's state.
#[tokio::test]
async fn resumed_watch_converges_after_downtime_mutations() {
    const WRITES: u64 = 10;
    let server = trimmed_server(4, WRITES).await;
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::none(7))
        .await
        .unwrap();
    let client = ResilientClient::connect(
        proxy.local_addr(),
        Subject::operator("w"),
        RetryPolicy::fast(7),
    )
    .await
    .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    let mut events = api.watch(STORE.into(), Revision::ZERO).await.unwrap();

    // Materialize the watch stream into a view.
    let mut view: BTreeMap<ObjectKey, Value> = BTreeMap::new();
    for _ in 0..WRITES {
        let event = tokio::time::timeout(Duration::from_secs(5), events.recv())
            .await
            .expect("initial relist timed out")
            .expect("stream ended early");
        view.insert(event.key, (*event.value).clone());
    }

    // Partition, then mutate enough to push the resume point past the
    // 4-event history window: one delete + six creates.
    proxy.kill_connections();
    let store = server.object.store(&StoreId::new(STORE)).unwrap();
    store.delete(&key(3)).unwrap();
    for i in 20..26 {
        store.create(key(i), val(i)).unwrap();
    }

    let expected: BTreeMap<ObjectKey, Value> = {
        let (objects, _) = store.list();
        objects
            .iter()
            .map(|o| (o.key.clone(), (*o.value).clone()))
            .collect()
    };
    let deadline = tokio::time::Instant::now() + Duration::from_secs(10);
    while view != expected {
        let remaining = deadline
            .checked_duration_since(tokio::time::Instant::now())
            .expect("view never converged to server state after downtime");
        let event = tokio::time::timeout(remaining, events.recv())
            .await
            .expect("no event before deadline")
            .expect("stream ended before converging");
        match event.kind {
            EventKind::Created | EventKind::Updated => {
                view.insert(event.key, (*event.value).clone());
            }
            EventKind::Deleted => {
                view.remove(&event.key);
            }
        }
    }
    assert!(
        !view.contains_key(&key(3)),
        "delete during downtime must surface"
    );
    assert_eq!(view.len() as u64, WRITES - 1 + 6);
    proxy.shutdown();
    server.shutdown().await;
}
