//! Process-wide metrics: counters, gauges, and fixed-bucket latency
//! histograms with label support.
//!
//! The paper's pitch (§2, §4) is that data-centric composition makes
//! inter-service data flows *observable*; this module is the measurement
//! substrate behind that claim. It lives in `knactor-types` — the lowest
//! layer of the workspace — so the store, logstore, net, and core crates
//! can all instrument their hot paths against one registry without
//! dependency cycles; `knactor-core` re-exports it as `core::metrics`.
//!
//! Design rules:
//!
//! * **Registration is cold, recording is hot.** Looking a metric up by
//!   name takes a `RwLock` read; the returned handle is an `Arc` of plain
//!   atomics, so instrumented code registers once and then records with
//!   `fetch_add`/`store` only. No locks, no allocation, on the hot path.
//! * **Histograms are fixed-bucket.** A shared exponential ladder from
//!   1 µs to 60 s (durations are recorded in nanoseconds, exported in
//!   seconds). Quantiles (p50/p95/p99) are derived from the buckets by
//!   linear interpolation and clamped to the recorded min/max.
//! * **Labels are sorted.** A metric's identity is its name plus its
//!   sorted `(key, value)` label pairs, so `{store="a",op="get"}` and
//!   `{op="get",store="a"}` are the same series and exposition order is
//!   deterministic.
//!
//! [`MetricsSnapshot`] is a plain serializable value: it travels over the
//! `knactor-net` wire as the `Metrics` response, renders to Prometheus
//! text exposition via [`MetricsSnapshot::to_prometheus`], and feeds
//! `Composer::health()` and the bench binaries programmatically.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Histogram bucket upper bounds, in nanoseconds: 1 µs → 60 s, roughly
/// 1-2.5-5 per decade. One implicit overflow bucket follows the last
/// bound, so every observation lands somewhere.
pub const BUCKET_BOUNDS_NS: &[u64] = &[
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
    60_000_000_000,
];

const NS_PER_SEC: f64 = 1e9;

/// A metric's identity: name + sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, fan-out widths, lag).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram (nanosecond observations).
#[derive(Debug)]
pub struct Histogram {
    /// One slot per bound plus the trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..=BUCKET_BOUNDS_NS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn observe_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS.partition_point(|&bound| bound < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// The registry: name + labels → shared atomic handles.
///
/// `counter`/`gauge`/`histogram` register-or-fetch: the first call for an
/// id creates the series, later calls return the same `Arc`. Hold the
/// handle across calls — re-looking it up per record works but pays the
/// read lock each time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<MetricId, Arc<Counter>>>,
    gauges: RwLock<HashMap<MetricId, Arc<Gauge>>>,
    histograms: RwLock<HashMap<MetricId, Arc<Histogram>>>,
}

fn register<T: Default>(
    map: &RwLock<HashMap<MetricId, Arc<T>>>,
    name: &str,
    labels: &[(&str, &str)],
) -> Arc<T> {
    let id = MetricId::new(name, labels);
    if let Some(found) = map.read().expect("metrics lock").get(&id) {
        return Arc::clone(found);
    }
    let mut map = map.write().expect("metrics lock");
    Arc::clone(map.entry(id).or_default())
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        register(&self.counters, name, labels)
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        register(&self.gauges, name, labels)
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        register(&self.histograms, name, labels)
    }

    /// A point-in-time copy of every registered series, sorted by
    /// (name, labels). Each series' fields are loaded atomically; the
    /// snapshot as a whole is not a cross-series transaction (writers
    /// keep running), but every counter value read is one that the
    /// counter actually held.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, c)| CounterSnapshot {
                name: id.name.clone(),
                labels: id.labels.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));

        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, g)| GaugeSnapshot {
                name: id.name.clone(),
                labels: id.labels.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));

        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, h)| {
                // Count is read *before* the buckets: concurrent observes
                // bump buckets after count, so the bucket sum can only be
                // >= the count read here, never leave it unaccounted.
                let count = h.count.load(Ordering::Acquire);
                HistogramSnapshot {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    bounds_ns: BUCKET_BOUNDS_NS.to_vec(),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Acquire))
                        .collect(),
                    count,
                    sum_ns: h.sum_ns.load(Ordering::Relaxed),
                    min_ns: h.min_ns.load(Ordering::Relaxed),
                    max_ns: h.max_ns.load(Ordering::Relaxed),
                }
            })
            .collect();
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));

        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Serializable point-in-time copy of a registry ([`MetricsRegistry::snapshot`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CounterSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GaugeSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: i64,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub bounds_ns: Vec<u64>,
    /// `bounds_ns.len() + 1` slots; the last is the overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum_ns: u64,
    /// `u64::MAX` when the histogram is empty.
    pub min_ns: u64,
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (0.0 ..= 1.0) in **seconds**, linearly
    /// interpolated within the containing bucket and clamped to the
    /// recorded min/max. `None` when nothing has been observed.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        let mut estimate_ns = self.max_ns as f64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            let next = cumulative + bucket;
            if (next as f64) >= rank && bucket > 0 {
                let lower = if i == 0 { 0 } else { self.bounds_ns[i - 1] };
                let upper = if i < self.bounds_ns.len() {
                    self.bounds_ns[i]
                } else {
                    // Overflow bucket: its only honest upper bound is the
                    // recorded maximum.
                    self.max_ns
                };
                let into = (rank - cumulative as f64) / bucket as f64;
                estimate_ns = lower as f64 + into * (upper.saturating_sub(lower)) as f64;
                break;
            }
            cumulative = next;
        }
        Some((estimate_ns.max(self.min_ns as f64).min(self.max_ns as f64)) / NS_PER_SEC)
    }

    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Largest observation, in seconds.
    pub fn max_seconds(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_ns as f64 / NS_PER_SEC)
    }

    /// Smallest observation, in seconds.
    pub fn min_seconds(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_ns as f64 / NS_PER_SEC)
    }

    /// Arithmetic mean, in seconds.
    pub fn mean_seconds(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64 / NS_PER_SEC)
    }
}

/// Owned, sorted label pairs — the series-identity form snapshots store.
fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// Escape a label value for Prometheus text exposition: backslash,
/// double-quote, and newline must be escaped, in that order of rules.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Format a float the way Prometheus exposition expects (no exponent for
/// the common cases, `+Inf` spelled out by callers).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.9}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

impl MetricsSnapshot {
    /// The value of one counter series, by exact name + label set
    /// (label order is irrelevant; identity is sorted pairs, matching
    /// the registry). `None` when the series has never been recorded.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = sorted_labels(labels);
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == id)
            .map(|c| c.value)
    }

    /// The value of one gauge series (exact name + label set).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let id = sorted_labels(labels);
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels == id)
            .map(|g| g.value)
    }

    /// One histogram series, by exact name + label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let id = sorted_labels(labels);
        self.histograms
            .iter()
            .find(|h| h.name == name && h.labels == id)
    }

    /// The between-scrapes window: everything that happened *after*
    /// `earlier` was taken. This is what rate computations must use —
    /// process-lifetime totals hide recent shifts behind the entire
    /// history's average.
    ///
    /// Semantics per metric kind:
    ///
    /// * **Counters** subtract saturating: a counter that reset (restart,
    ///   or the `earlier` snapshot is from another process) yields `0`
    ///   for the window rather than a bogus huge value; a series absent
    ///   from `earlier` contributes its full value (it was born inside
    ///   the window).
    /// * **Gauges** are levels, not rates — the later value is kept
    ///   verbatim.
    /// * **Histograms** subtract bucket-wise (and `count`/`sum_ns`),
    ///   saturating per bucket. `min_ns`/`max_ns` are lifetime extremes
    ///   the registry does not window, so the delta keeps the later
    ///   snapshot's values as a conservative bound — unless nothing
    ///   landed in the window, in which case the delta histogram is
    ///   empty (`count == 0`, `min_ns == u64::MAX`, `max_ns == 0`).
    ///
    /// Series that exist only in `earlier` are dropped (nothing happened
    /// to them inside the window that the later snapshot can attest).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                let before = earlier
                    .counters
                    .iter()
                    .find(|e| e.name == c.name && e.labels == c.labels)
                    .map(|e| e.value)
                    .unwrap_or(0);
                CounterSnapshot {
                    name: c.name.clone(),
                    labels: c.labels.clone(),
                    value: c.value.saturating_sub(before),
                }
            })
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let before = earlier
                    .histograms
                    .iter()
                    .find(|e| e.name == h.name && e.labels == h.labels);
                match before {
                    None => h.clone(),
                    Some(b) => {
                        let buckets = h
                            .buckets
                            .iter()
                            .zip(b.buckets.iter().chain(std::iter::repeat(&0)))
                            .map(|(now, before)| now.saturating_sub(*before))
                            .collect();
                        let count = h.count.saturating_sub(b.count);
                        HistogramSnapshot {
                            name: h.name.clone(),
                            labels: h.labels.clone(),
                            bounds_ns: h.bounds_ns.clone(),
                            buckets,
                            count,
                            sum_ns: h.sum_ns.saturating_sub(b.sum_ns),
                            min_ns: if count == 0 { u64::MAX } else { h.min_ns },
                            max_ns: if count == 0 { 0 } else { h.max_ns },
                        }
                    }
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Windowed rate of one counter series: its [`delta`](Self::delta)
    /// against `earlier`, divided by the window length. This is the
    /// number `knactorctl metrics --watch` and the planner's cost model
    /// want — events per second *between* the two scrapes.
    pub fn counter_rate(
        &self,
        earlier: &MetricsSnapshot,
        window: Duration,
        name: &str,
        labels: &[(&str, &str)],
    ) -> f64 {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let now = self.counter_value(name, labels).unwrap_or(0);
        let before = earlier.counter_value(name, labels).unwrap_or(0);
        now.saturating_sub(before) as f64 / secs
    }

    /// Render the snapshot in Prometheus text exposition format.
    /// Durations are exported in seconds; each metric family gets one
    /// `# TYPE` line; series are emitted in sorted (name, labels) order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";

        for c in &self.counters {
            if c.name != last_family {
                out.push_str(&format!("# TYPE {} counter\n", c.name));
            }
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                render_labels(&c.labels, None),
                c.value
            ));
            last_family = &c.name;
        }
        for g in &self.gauges {
            if g.name != last_family {
                out.push_str(&format!("# TYPE {} gauge\n", g.name));
            }
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                render_labels(&g.labels, None),
                g.value
            ));
            last_family = &g.name;
        }
        for h in &self.histograms {
            if h.name != last_family {
                out.push_str(&format!("# TYPE {} histogram\n", h.name));
            }
            let mut cumulative = 0u64;
            for (i, &bucket) in h.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = if i < h.bounds_ns.len() {
                    fmt_f64(h.bounds_ns[i] as f64 / NS_PER_SEC)
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    render_labels(&h.labels, Some(("le", &le))),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                render_labels(&h.labels, None),
                fmt_f64(h.sum_ns as f64 / NS_PER_SEC)
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                render_labels(&h.labels, None),
                h.count
            ));
            last_family = &h.name;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("knactor_test_total", &[("store", "s1")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same id → same handle.
        let c2 = reg.counter("knactor_test_total", &[("store", "s1")]);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("knactor_test_depth", &[]);
        g.set(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn label_order_is_identity_irrelevant() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("knactor_test_seconds", &[]);
        for us in [10u64, 20, 50, 100, 500, 1000, 5000, 10_000, 50_000, 100_000] {
            h.observe(Duration::from_micros(us));
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.count, 10);
        let p50 = hs.p50().unwrap();
        let p99 = hs.p99().unwrap();
        assert!(p50 <= p99, "p50 {p50} <= p99 {p99}");
        assert!(p50 >= hs.min_seconds().unwrap());
        assert!(p99 <= hs.max_seconds().unwrap());
    }

    #[test]
    fn delta_subtracts_counters_between_scrapes() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("knactor_events_total", &[("kind", "a")]);
        c.add(10);
        let earlier = reg.snapshot();
        c.add(7);
        let later = reg.snapshot();
        let d = later.delta(&earlier);
        assert_eq!(
            d.counter_value("knactor_events_total", &[("kind", "a")]),
            Some(7)
        );
        // Rate over a 2s window: 7 / 2.
        let rate = later.counter_rate(
            &earlier,
            Duration::from_secs(2),
            "knactor_events_total",
            &[("kind", "a")],
        );
        assert!((rate - 3.5).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn delta_counter_reset_saturates_to_zero() {
        // `earlier` claims a larger value than `self` (counter reset,
        // e.g. the process restarted between scrapes): the window must
        // be 0, never a wrapped huge number.
        let reg_a = MetricsRegistry::new();
        reg_a.counter("m_total", &[]).add(100);
        let earlier = reg_a.snapshot();
        let reg_b = MetricsRegistry::new();
        reg_b.counter("m_total", &[]).add(3);
        let later = reg_b.snapshot();
        assert_eq!(later.delta(&earlier).counter_value("m_total", &[]), Some(0));
    }

    #[test]
    fn delta_series_born_inside_window_counts_fully() {
        let reg = MetricsRegistry::new();
        let earlier = reg.snapshot();
        reg.counter("born_total", &[]).add(5);
        reg.histogram("born_seconds", &[])
            .observe(Duration::from_micros(10));
        let later = reg.snapshot();
        let d = later.delta(&earlier);
        assert_eq!(d.counter_value("born_total", &[]), Some(5));
        assert_eq!(d.histogram("born_seconds", &[]).unwrap().count, 1);
    }

    #[test]
    fn delta_histograms_subtract_bucketwise() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("knactor_stage_seconds", &[("stage", "read")]);
        h.observe(Duration::from_micros(10));
        h.observe(Duration::from_millis(10));
        let earlier = reg.snapshot();
        h.observe(Duration::from_micros(10));
        h.observe(Duration::from_micros(10));
        let later = reg.snapshot();
        let d = later.delta(&earlier);
        let hs = d
            .histogram("knactor_stage_seconds", &[("stage", "read")])
            .unwrap();
        assert_eq!(hs.count, 2);
        // Only the 10µs bucket moved inside the window.
        assert_eq!(hs.buckets.iter().sum::<u64>(), 2);
        let mean = hs.mean_seconds().unwrap();
        assert!((mean - 10e-6).abs() < 1e-9, "windowed mean {mean}");
    }

    #[test]
    fn delta_empty_window_yields_empty_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("quiet_seconds", &[]);
        h.observe(Duration::from_micros(50));
        let earlier = reg.snapshot();
        let later = reg.snapshot();
        let d = later.delta(&earlier);
        let hs = d.histogram("quiet_seconds", &[]).unwrap();
        assert_eq!(hs.count, 0);
        assert_eq!(
            hs.min_ns,
            u64::MAX,
            "empty delta must look like an empty histogram"
        );
        assert_eq!(hs.max_ns, 0);
        assert_eq!(hs.mean_seconds(), None);
        assert_eq!(hs.p50(), None);
    }

    #[test]
    fn delta_of_identical_snapshots_is_all_zero() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[]).add(9);
        reg.gauge("b_depth", &[]).set(4);
        reg.histogram("c_seconds", &[])
            .observe(Duration::from_micros(10));
        let snap = reg.snapshot();
        let d = snap.delta(&snap.clone());
        assert_eq!(d.counter_value("a_total", &[]), Some(0));
        // Gauges are levels: kept verbatim, not differenced.
        assert_eq!(d.gauge_value("b_depth", &[]), Some(4));
        assert_eq!(d.histogram("c_seconds", &[]).unwrap().count, 0);
    }

    #[test]
    fn prometheus_rendering_escapes_and_orders() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", &[("p", "a\"b\\c\nd")]).inc();
        reg.counter("a_total", &[]).add(2);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 2\n"));
        assert!(text.contains("z_total{p=\"a\\\"b\\\\c\\nd\"} 1\n"));
        // a_ sorts before z_.
        assert!(text.find("a_total").unwrap() < text.find("z_total").unwrap());
    }
}
