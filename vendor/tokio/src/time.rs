//! Timers: a dedicated timer thread wakes registered wakers at their
//! deadlines with `Condvar::wait_timeout` precision (sub-millisecond on
//! Linux), which the engine-profile latency model depends on.

use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

pub use std::time::Instant;

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TimerState {
    heap: BinaryHeap<TimerEntry>,
    next_seq: u64,
}

struct Timer {
    state: Mutex<TimerState>,
    cv: Condvar,
}

fn timer() -> &'static Timer {
    static TIMER: OnceLock<&'static Timer> = OnceLock::new();
    TIMER.get_or_init(|| {
        let timer: &'static Timer = Box::leak(Box::new(Timer {
            state: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }),
            cv: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("tokio-timer".to_string())
            .spawn(move || timer_loop(timer))
            .expect("failed to spawn timer thread");
        timer
    })
}

fn timer_loop(timer: &'static Timer) {
    let mut state = timer.state.lock().unwrap();
    loop {
        let now = Instant::now();
        let mut due = Vec::new();
        while let Some(top) = state.heap.peek() {
            if top.deadline <= now {
                due.push(state.heap.pop().unwrap().waker);
            } else {
                break;
            }
        }
        if !due.is_empty() {
            drop(state);
            for w in due {
                w.wake();
            }
            state = timer.state.lock().unwrap();
            continue;
        }
        state = match state.heap.peek() {
            Some(top) => {
                let wait = top.deadline.saturating_duration_since(now);
                timer.cv.wait_timeout(state, wait).unwrap().0
            }
            None => timer.cv.wait(state).unwrap(),
        };
    }
}

/// Register `waker` to be woken at `deadline`.
pub(crate) fn register_wake_at(deadline: Instant, waker: Waker) {
    let t = timer();
    let mut state = t.state.lock().unwrap();
    let seq = state.next_seq;
    state.next_seq += 1;
    state.heap.push(TimerEntry {
        deadline,
        seq,
        waker,
    });
    t.cv.notify_one();
}

/// Future that completes at a fixed deadline.
pub struct Sleep {
    deadline: Instant,
}

impl Sleep {
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            register_wake_at(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// Error returned by [`timeout`] when the deadline fires first.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

pub struct Timeout<F> {
    fut: Pin<Box<F>>,
    delay: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut self.delay).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

pub fn timeout<F: Future>(duration: Duration, fut: F) -> Timeout<F> {
    Timeout {
        fut: Box::pin(fut),
        delay: sleep(duration),
    }
}

/// What an interval does about ticks missed while the consumer lagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissedTickBehavior {
    #[default]
    Burst,
    Delay,
    Skip,
}

pub struct Interval {
    period: Duration,
    next: Instant,
    behavior: MissedTickBehavior,
}

impl Interval {
    pub fn set_missed_tick_behavior(&mut self, behavior: MissedTickBehavior) {
        self.behavior = behavior;
    }

    pub fn period(&self) -> Duration {
        self.period
    }

    /// Completes at the next tick instant. Like tokio, the first tick
    /// completes immediately.
    pub async fn tick(&mut self) -> Instant {
        let target = self.next;
        sleep_until(target).await;
        let now = Instant::now();
        self.next = match self.behavior {
            // Delay: re-anchor on actual wakeup so ticks never bunch up.
            MissedTickBehavior::Delay => now + self.period,
            MissedTickBehavior::Burst => target + self.period,
            MissedTickBehavior::Skip => {
                let mut next = target + self.period;
                while next <= now {
                    next += self.period;
                }
                next
            }
        };
        now
    }
}

pub fn interval(period: Duration) -> Interval {
    assert!(!period.is_zero(), "interval period must be non-zero");
    Interval {
        period,
        next: Instant::now(),
        behavior: MissedTickBehavior::Burst,
    }
}

pub fn interval_at(start: Instant, period: Duration) -> Interval {
    assert!(!period.is_zero(), "interval period must be non-zero");
    Interval {
        period,
        next: start,
        behavior: MissedTickBehavior::Burst,
    }
}
