//! Property tests: every wire message round-trips through encode/decode,
//! and the frame decoder survives arbitrary byte garbage — it may error,
//! it must never panic, over-read, or hand back an oversized frame.

use knactor_net::frame::{FrameReader, FrameWriter, MAX_FRAME};
use knactor_net::proto::{
    decode, encode, EventBody, Hello, OpSpec, ProfileSpec, QuerySpec, Request, RequestEnvelope,
    Response, ServerMsg,
};
use knactor_store::{EventKind, TxOp, WatchEvent};
use knactor_types::{ObjectKey, Revision, StoreId, Value};
use proptest::prelude::*;
use serde_json::json;
use tokio::runtime::block_on_free;

fn any_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(json!(null)),
        any::<bool>().prop_map(|b| json!(b)),
        any::<i32>().prop_map(|n| json!(n)),
        "[a-zA-Z0-9 ]{0,10}".prop_map(|s| json!(s)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Value::Array),
            proptest::collection::btree_map("[a-z]{1,4}", inner, 0..3)
                .prop_map(|m| Value::Object(m.into_iter().collect())),
        ]
    })
}

fn any_request() -> impl Strategy<Value = Request> {
    let store = "[a-z]{1,6}/[a-z]{1,6}".prop_map(StoreId::new);
    let key = "[a-z0-9-]{1,8}".prop_map(ObjectKey::new);
    prop_oneof![
        Just(Request::Ping),
        (store.clone(), key.clone(), any_value()).prop_map(|(store, key, value)| Request::Create {
            store,
            key,
            value
        }),
        (store.clone(), key.clone()).prop_map(|(store, key)| Request::Get { store, key }),
        store.clone().prop_map(|store| Request::List { store }),
        (
            store.clone(),
            key.clone(),
            any_value(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(store, key, value, rev)| Request::Update {
                store,
                key,
                value,
                expected: rev.map(Revision),
            }),
        (store.clone(), key.clone(), any_value(), any::<bool>()).prop_map(
            |(store, key, patch, upsert)| Request::Patch {
                store,
                key,
                patch,
                upsert
            }
        ),
        (store.clone(), key.clone()).prop_map(|(store, key)| Request::Delete { store, key }),
        (store.clone(), any::<u64>()).prop_map(|(store, from)| Request::Watch {
            store,
            from: Revision(from)
        }),
        (store.clone(), any::<u64>()).prop_map(|(store, from)| Request::ReplSubscribe {
            store,
            from: Revision(from)
        }),
        (store.clone(), "[a-z0-9-]{1,8}", any::<u64>()).prop_map(|(store, follower, rev)| {
            Request::ReplAck {
                store,
                follower,
                revision: Revision(rev),
            }
        }),
        Just(Request::ReplStatus),
        any::<u64>().prop_map(|epoch| Request::ReplPromote { epoch }),
        (store.clone(), any::<u64>()).prop_map(|(store, rev)| Request::ReplWait {
            store,
            revision: Revision(rev)
        }),
        proptest::collection::vec(
            (store.clone(), key.clone(), any_value(), any::<bool>()).prop_map(
                |(store, key, patch, upsert)| TxOp {
                    store,
                    key,
                    patch,
                    upsert,
                    expected: None
                }
            ),
            0..3
        )
        .prop_map(|ops| Request::Transact { ops }),
        (store.clone(), any_value())
            .prop_map(|(store, fields)| Request::LogAppend { store, fields }),
        (
            store,
            "[a-z]{1,5}".prop_map(|f| QuerySpec {
                ops: vec![OpSpec::Rename {
                    from: f.clone(),
                    to: format!("{f}2")
                }],
            })
        )
            .prop_map(|(store, query)| Request::LogQuery { store, query }),
    ]
}

proptest! {
    #[test]
    fn request_envelope_roundtrip(id in any::<u64>(), body in any_request()) {
        let env = RequestEnvelope { id, body };
        let bytes = encode(&env).unwrap();
        let back: RequestEnvelope = decode(&bytes).unwrap();
        prop_assert_eq!(back, env);
    }

    #[test]
    fn server_msg_roundtrip(
        id in any::<u64>(),
        rev in any::<u64>(),
        key in "[a-z0-9-]{1,8}",
        value in any_value(),
    ) {
        let samples = vec![
            ServerMsg::Reply { id, response: Response::Revision { revision: Revision(rev) } },
            ServerMsg::Reply { id, response: Response::Ok },
            ServerMsg::Reply {
                id,
                response: Response::Error { code: "conflict".into(), message: "1:2".into() },
            },
            ServerMsg::Event {
                sub_id: id,
                body: EventBody::Object {
                    event: WatchEvent {
                        revision: Revision(rev),
                        kind: EventKind::Updated,
                        key: ObjectKey::new(key),
                        value: value.into(),
                    },
                },
            },
            ServerMsg::Event { sub_id: id, body: EventBody::Closed },
            ServerMsg::Reply {
                id,
                response: Response::ReplStatus {
                    leader: rev.is_multiple_of(2),
                    epoch: rev,
                    applied: vec![(StoreId::new("a/b"), Revision(rev))],
                },
            },
        ];
        for msg in samples {
            let bytes = encode(&msg).unwrap();
            let back: ServerMsg = decode(&bytes).unwrap();
            prop_assert_eq!(back, msg);
        }
    }

    #[test]
    fn hello_roundtrip(kind in "[a-z]{1,10}", name in "[a-zA-Z0-9_-]{1,16}") {
        let hello = Hello { subject_kind: kind, subject_name: name };
        let back: Hello = decode(&encode(&hello).unwrap()).unwrap();
        prop_assert_eq!(back, hello);
    }

    /// Profile specs survive the wire and materialize deterministically.
    #[test]
    fn profile_spec_roundtrip(which in 0u8..5, acks in 1usize..4) {
        let spec = match which {
            0 => ProfileSpec::Instant,
            1 => ProfileSpec::Redis,
            2 => ProfileSpec::Replicated { acks },
            3 => ProfileSpec::ReplicatedApiserver { acks },
            _ => ProfileSpec::Apiserver,
        };
        let back: ProfileSpec = decode(&encode(&spec).unwrap()).unwrap();
        prop_assert_eq!(back, spec);
    }
}

/// One byte-level mutation of a wire stream, chosen by proptest.
#[derive(Debug, Clone)]
enum Mutation {
    Flip { at: usize, bits: u8 },
    Truncate { at: usize },
    Insert { at: usize, byte: u8 },
    Delete { at: usize },
}

fn any_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        // `bits | 1` keeps the flip mask nonzero, so a Flip always changes
        // the byte it lands on.
        (any::<usize>(), any::<u8>()).prop_map(|(at, bits)| Mutation::Flip { at, bits: bits | 1 }),
        any::<usize>().prop_map(|at| Mutation::Truncate { at }),
        (any::<usize>(), any::<u8>()).prop_map(|(at, byte)| Mutation::Insert { at, byte }),
        any::<usize>().prop_map(|at| Mutation::Delete { at }),
    ]
}

impl Mutation {
    fn apply(&self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        match *self {
            Mutation::Flip { at, bits } => {
                let at = at % bytes.len();
                bytes[at] ^= bits;
            }
            Mutation::Truncate { at } => bytes.truncate(at % (bytes.len() + 1)),
            Mutation::Insert { at, byte } => {
                let at = at % (bytes.len() + 1);
                bytes.insert(at, byte);
            }
            Mutation::Delete { at } => {
                let at = at % bytes.len();
                bytes.remove(at);
            }
        }
    }
}

/// Drain a byte stream through [`FrameReader`] until clean EOF or error.
/// Returns the parsed frames and whether the stream ended cleanly. The
/// act of returning at all is half the property: the decoder must
/// *terminate* on any input, panic on none.
fn read_all_frames(bytes: Vec<u8>) -> (Vec<Vec<u8>>, bool) {
    block_on_free(async move {
        let (mut w, r) = tokio::io::duplex(bytes.len().max(1) + 8);
        {
            use tokio::io::AsyncWriteExt;
            w.write_all(&bytes).await.unwrap();
        }
        drop(w); // EOF after the garbage
        let mut reader = FrameReader::new(r);
        let mut frames = Vec::new();
        loop {
            match reader.read_frame().await {
                Ok(Some(frame)) => frames.push(frame.to_vec()),
                Ok(None) => return (frames, true),
                Err(_) => return (frames, false),
            }
        }
    })
}

/// Build a valid multi-frame stream from encoded request envelopes.
fn valid_stream(envelopes: &[RequestEnvelope]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for env in envelopes {
        let payload = encode(env).unwrap();
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&payload);
    }
    bytes
}

proptest! {
    /// Arbitrary byte soup: the decoder errors or EOFs, never panics, and
    /// never conjures more payload bytes than the input held.
    #[test]
    fn decoder_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let input_len = bytes.len();
        let (frames, clean) = read_all_frames(bytes);
        let consumed: usize = frames.iter().map(|f| f.len() + 4).sum();
        prop_assert!(consumed <= input_len, "decoder over-read: {consumed} > {input_len}");
        for frame in &frames {
            prop_assert!(frame.len() <= MAX_FRAME);
        }
        // Empty input is the one guaranteed-clean case.
        if input_len == 0 {
            prop_assert!(clean && frames.is_empty());
        }
    }

    /// A valid stream hit by byte mutations: every frame the decoder does
    /// hand over is length-consistent, everything before the first
    /// corrupted record still parses, and message-level decode of damaged
    /// payloads errors instead of panicking.
    #[test]
    fn decoder_survives_mutated_valid_streams(
        bodies in proptest::collection::vec(any_request(), 1..5),
        mutations in proptest::collection::vec(any_mutation(), 1..4),
    ) {
        let envelopes: Vec<RequestEnvelope> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| RequestEnvelope { id: i as u64, body })
            .collect();
        let pristine = valid_stream(&envelopes);
        let mut mutated = pristine.clone();
        for m in &mutations {
            m.apply(&mut mutated);
        }
        let input_len = mutated.len();
        let (frames, _clean) = read_all_frames(mutated);
        let consumed: usize = frames.iter().map(|f| f.len() + 4).sum();
        prop_assert!(consumed <= input_len, "decoder over-read: {consumed} > {input_len}");
        for frame in &frames {
            prop_assert!(frame.len() <= MAX_FRAME);
            // Message decode of whatever survived transit must be a
            // Result, never a panic; when it succeeds the envelope is
            // structurally sound (its id is one a client could route).
            let _ = decode::<RequestEnvelope>(frame);
        }
    }

    /// The unmutated stream always parses back to exactly its frames —
    /// the baseline the mutation property perturbs.
    #[test]
    fn decoder_roundtrips_valid_streams(
        bodies in proptest::collection::vec(any_request(), 0..5),
    ) {
        let envelopes: Vec<RequestEnvelope> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| RequestEnvelope { id: i as u64, body })
            .collect();
        let (frames, clean) = read_all_frames(valid_stream(&envelopes));
        prop_assert!(clean, "a valid stream must EOF cleanly");
        prop_assert_eq!(frames.len(), envelopes.len());
        for (frame, env) in frames.iter().zip(&envelopes) {
            let back: RequestEnvelope = decode(frame).unwrap();
            prop_assert_eq!(&back, env);
        }
    }

    /// Frames written by [`FrameWriter`] read back byte-identical through
    /// [`FrameReader`], for any payload mix (empty frames included).
    #[test]
    fn frame_writer_reader_roundtrip(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..6),
    ) {
        let total: usize = payloads.iter().map(|p| p.len() + 4).sum();
        let got = block_on_free(async {
            let (client, server) = tokio::io::duplex(total.max(1) + 8);
            let mut w = FrameWriter::new(client);
            for p in &payloads {
                w.write_frame(p).await.unwrap();
            }
            drop(w);
            let mut r = FrameReader::new(server);
            let mut got = Vec::new();
            while let Some(frame) = r.read_frame().await.unwrap() {
                got.push(frame.to_vec());
            }
            got
        });
        prop_assert_eq!(got, payloads);
    }
}
