//! Chaos-proven replication & failover: leader/follower WAL shipping
//! with **zero acked-write loss**.
//!
//! The contract under test: a write acknowledged by a `Replicated(n)`
//! store has been durably staged by at least `n` followers, so killing
//! the leader — mid-group-commit, with a fault proxy mangling the client
//! wire at the same time — loses **no acked write**. After the
//! surviving followers elect and promote the most-caught-up node:
//!
//! * every acked key is present **exactly once** with its acked value;
//! * the revision sequence stays **dense** (no double-applied groups —
//!   replication group ids are idempotency keys);
//! * a watch riding the replica set delivers revisions `1..=R` in order
//!   **across the promotion**, gaplessly;
//! * a follower that crashes mid-catch-up (torn WAL tail) recovers to a
//!   clean prefix and re-syncs.
//!
//! Every scenario derives its schedule from one printed seed
//! (`CHAOS_SEED=<seed>` reproduces it); CI runs a fixed seed matrix plus
//! one time-derived seed.

use knactor::net::{FaultPlan, FaultProxy, RetryPolicy};
use knactor::prelude::*;
use knactor::store::CrashPoint;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

/// The scenario seed: `CHAOS_SEED` if set (the reproduction path),
/// otherwise the scenario's fixed default. Always printed so a CI
/// failure carries its own reproduction recipe.
fn chaos_seed(default: u64) -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    println!("chaos seed: {seed} (rerun with CHAOS_SEED={seed})");
    seed
}

fn key(i: u64) -> ObjectKey {
    ObjectKey::new(format!("repl-{i}"))
}

fn val(i: u64) -> Value {
    json!({"n": i, "payload": format!("data-{i}")})
}

const STORE: &str = "repl/state";

/// Smoke: a replicated store behind the unchanged `ExchangeApi`. Writes
/// route to the leader, replicas converge, reads round-robin with
/// read-your-writes, and a follower-side mutation is fenced with
/// `NotLeader`.
#[tokio::test]
async fn replicated_store_serves_reads_from_replicas() {
    let seed = chaos_seed(0xC0FF_EE10);
    let mut cluster = ReplicatedExchange::launch(2).await.unwrap();
    let router = cluster.router(RetryPolicy::fast(seed)).await.unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(router);

    api.create_store(STORE.into(), ProfileSpec::Replicated { acks: 1 })
        .await
        .unwrap();
    for i in 0..20 {
        let rev = api.create(STORE.into(), key(i), val(i)).await.unwrap();
        assert_eq!(rev, Revision(i + 1), "leader revisions stay dense");
    }
    // Read-your-writes through replicas: every read sees its write.
    for i in 0..20 {
        let got = api.get(STORE.into(), key(i)).await.unwrap();
        assert_eq!(*got.value, val(i));
    }
    // Direct follower mutation is fenced.
    let follower = TcpClient::connect(cluster.node(1).addr(), Subject::integrator("rogue"))
        .await
        .unwrap();
    let fenced = follower.create(STORE.into(), key(999), val(999)).await;
    assert!(
        matches!(fenced, Err(Error::NotLeader { .. })),
        "follower must fence client mutations, got {fenced:?}"
    );
    // Replicas converge to the leader's full prefix.
    cluster
        .await_converged(&STORE.into(), Revision(20), Duration::from_secs(10))
        .await
        .unwrap();
    cluster.shutdown().await;
}

/// The tentpole: kill the leader mid-group-commit while a fault proxy
/// drops/duplicates/delays/kills the client's frames, and prove zero
/// acked-write loss, no double-apply, and gapless watch delivery across
/// the promotion.
#[tokio::test]
async fn failover_zero_acked_write_loss() {
    let seed = chaos_seed(0xC0FF_EE11);
    const WRITES: u64 = 120;
    const KILL_AT: u64 = 60;

    let mut cluster = ReplicatedExchange::launch(2).await.unwrap();
    // Client traffic reaches the *leader* through a flaky proxy; the
    // replica-set membership the router sees swaps the proxy in for the
    // leader's real address.
    let leader_addr = cluster.node(0).addr();
    let proxy = FaultProxy::spawn(leader_addr, FaultPlan::flaky(seed))
        .await
        .unwrap();
    let mut addrs = cluster.addrs();
    addrs[0] = proxy.local_addr();
    let router = knactor::net::ReplicaRouter::connect(
        &addrs,
        Subject::integrator("chaos"),
        RetryPolicy::fast(seed),
    )
    .await
    .unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(router);

    api.create_store(STORE.into(), ProfileSpec::Replicated { acks: 1 })
        .await
        .unwrap();

    // Watch the stream through the replica set from the start; it must
    // stay gapless across the kill.
    let mut events = api.watch(STORE.into(), Revision::ZERO).await.unwrap();

    // Acked writes: everything in here MUST survive the failover.
    let mut acked: Vec<(u64, Revision)> = Vec::new();
    for i in 0..WRITES {
        if i == KILL_AT {
            // Mid-stream: sever every proxied client connection AND kill
            // the leader outright (its group commit dies with it).
            proxy.kill_connections();
            let dead = cluster.kill_leader().await;
            println!(
                "killed leader node {dead} after {} acked writes",
                acked.len()
            );
        }
        match api.create(STORE.into(), key(i), val(i)).await {
            Ok(rev) => acked.push((i, rev)),
            // An unacked write may or may not have committed — the
            // zero-loss contract covers *acked* writes only. The router
            // exhausts its leader retries only while the election is
            // still converging.
            Err(e) => println!("write {i} unacked across failover: {e}"),
        }
    }
    assert!(
        acked.len() as u64 >= WRITES - 10,
        "the router should ack almost every write across one failover; got {}",
        acked.len()
    );

    let promoted = cluster.await_leader(Duration::from_secs(10)).await.unwrap();
    assert_ne!(promoted, 0, "a follower must have been promoted");

    // Audit the new leader directly over a clean connection.
    let audit = TcpClient::connect(cluster.node(promoted).addr(), Subject::operator("audit"))
        .await
        .unwrap();
    let (objects, head) = audit.list(STORE.into()).await.unwrap();
    let present: std::collections::HashMap<String, (Value, Revision)> = objects
        .into_iter()
        .map(|o| (o.key.to_string(), ((*o.value).clone(), o.revision)))
        .collect();
    for (i, rev) in &acked {
        let got = present.get(&key(*i).to_string()).unwrap_or_else(|| {
            panic!(
                "ACKED WRITE LOST: {} (rev {}) missing after failover",
                key(*i),
                rev.0
            )
        });
        assert_eq!(got.0, val(*i), "acked value for {} corrupted", key(*i));
        assert_eq!(
            got.1,
            *rev,
            "acked revision for {} changed: double-apply or reorder",
            key(*i)
        );
    }
    // No double-apply: the head revision can't exceed the number of
    // distinct creates that could have committed (acked or ack-lost).
    assert!(
        head.0 <= WRITES,
        "head revision {} exceeds {} logical writes: a group was applied twice",
        head.0,
        WRITES
    );
    assert!(
        present.len() as u64 <= WRITES && present.len() >= acked.len(),
        "object count {} outside [{}, {WRITES}]",
        present.len(),
        acked.len()
    );

    // Surviving replicas converge to the same prefix.
    cluster
        .await_converged(&STORE.into(), head, Duration::from_secs(10))
        .await
        .unwrap();

    // The watch must deliver 1..=head gaplessly across the promotion.
    let seen = tokio::time::timeout(Duration::from_secs(30), async {
        let mut seen = Vec::new();
        while (seen.len() as u64) < head.0 {
            match events.recv().await {
                Some(event) => seen.push(event.revision.0),
                None => break,
            }
        }
        seen
    })
    .await
    .expect("watch did not catch up to the post-failover head in time");
    let expected: Vec<u64> = (1..=head.0).collect();
    assert_eq!(
        seen, expected,
        "watch must stay gapless and duplicate-free across promotion"
    );

    println!("proxy faults: {}", proxy.stats().summary());
    proxy.shutdown();
    cluster.shutdown().await;
}

/// Read-your-writes parity under injected replication delay: the apply
/// path on every follower is decorated with a delay-injecting
/// [`knactor::net::FaultApi`], so replicas genuinely lag — and a client
/// that writes via the leader then immediately reads via a replica must
/// still never observe a stale value.
#[tokio::test]
async fn read_your_writes_despite_replication_delay() {
    let seed = chaos_seed(0xC0FF_EE12);
    const ROUNDS: u64 = 150;

    let plan = FaultPlan {
        seed,
        // No loss: pure delay. Losing apply calls is the crash test's job.
        drop_frame: 0.0,
        dup_frame: 0.0,
        delay_frame: 0.6,
        max_delay: Duration::from_millis(15),
        close_conn: 0.0,
    };
    let mut cluster = ReplicatedExchange::launch_with(2, Some(plan))
        .await
        .unwrap();
    let router = cluster.router(RetryPolicy::fast(seed)).await.unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(router);

    api.create_store(STORE.into(), ProfileSpec::Replicated { acks: 1 })
        .await
        .unwrap();
    let k = ObjectKey::new("hot");
    api.create(STORE.into(), k.clone(), json!({"round": 0}))
        .await
        .unwrap();
    for round in 1..=ROUNDS {
        api.update(STORE.into(), k.clone(), json!({"round": round}), None)
            .await
            .unwrap();
        // Immediately read back — round-robin sends most of these to
        // delayed replicas; the session barrier must hide the lag.
        let got = api.get(STORE.into(), k.clone()).await.unwrap();
        let seen = got.value["round"].as_u64().unwrap();
        assert!(
            seen >= round,
            "stale read after acked write: wrote round {round}, read {seen}"
        );
    }
    cluster.shutdown().await;
}

/// A follower that crashes mid-catch-up with a torn WAL tail recovers to
/// a clean prefix (PR 2 `Wal::open_recovering`) and re-syncs to full
/// parity with the leader.
#[tokio::test]
async fn follower_crash_during_catch_up_recovers_torn_tail() {
    let seed = chaos_seed(0xC0FF_EE13);
    const BEFORE: u64 = 30;
    const AFTER: u64 = 30;

    let mut cluster = ReplicatedExchange::launch(2).await.unwrap();
    let router = cluster.router(RetryPolicy::fast(seed)).await.unwrap();
    let api: Arc<dyn ExchangeApi> = Arc::new(router);

    api.create_store(STORE.into(), ProfileSpec::Replicated { acks: 1 })
        .await
        .unwrap();
    for i in 0..BEFORE {
        api.create(STORE.into(), key(i), val(i)).await.unwrap();
    }
    cluster
        .await_converged(&STORE.into(), Revision(BEFORE), Duration::from_secs(10))
        .await
        .unwrap();

    // Crash follower 2's store mid-apply: arm a torn write on its WAL so
    // its very next replicated group dies half-written and poisons the
    // store; the replicator's stream breaks.
    let follower = cluster.node(2).server().unwrap();
    let victim = follower.object.store(&STORE.into()).unwrap();
    assert!(victim.arm_crash(CrashPoint::TornWrite, 0));
    // Writes keep flowing — acks=1 is satisfiable by the healthy
    // follower, so the leader never stalls on the crashed one.
    for i in BEFORE..BEFORE + AFTER {
        api.create(STORE.into(), key(i), val(i)).await.unwrap();
    }
    // Give the torn write time to fire on the victim's apply path.
    tokio::time::sleep(Duration::from_millis(200)).await;

    // "Restart" the crashed follower's store: reopen from its WAL — the
    // recovery path truncates the torn tail to the last clean record —
    // and let the replicator re-discover it and catch up from there.
    let recovered = cluster.crash_recover_store(2, &STORE.into()).unwrap();
    println!(
        "follower recovered to revision {} after torn tail",
        recovered.0
    );
    assert!(
        recovered <= Revision(BEFORE + AFTER),
        "recovery must not invent revisions"
    );

    // Full parity: the recovered follower converges to the leader head.
    cluster
        .await_converged(
            &STORE.into(),
            Revision(BEFORE + AFTER),
            Duration::from_secs(15),
        )
        .await
        .unwrap();
    let rejoined = cluster.node(2).server().unwrap();
    let store = rejoined.object.store(&STORE.into()).unwrap();
    for i in 0..BEFORE + AFTER {
        assert_eq!(
            *store.get(&key(i)).unwrap().value,
            val(i),
            "recovered follower diverged at {}",
            key(i)
        );
    }
    assert_eq!(store.revision(), Revision(BEFORE + AFTER));
    cluster.shutdown().await;
}

/// Promotion fencing: a stale epoch cannot reclaim leadership, and a
/// demoted node rejects writes. Exercises `ReplPromote` end-to-end and
/// bumps `knactor_failover_total`.
#[tokio::test]
async fn stale_epoch_cannot_reclaim_leadership() {
    let seed = chaos_seed(0xC0FF_EE14);
    let cluster = ReplicatedExchange::launch(1).await.unwrap();
    let _ = seed;

    let follower = TcpClient::connect(cluster.node(1).addr(), Subject::operator("op"))
        .await
        .unwrap();
    // Promote the follower at epoch 1: it leads, epoch fences the old
    // leader's era.
    follower.repl_promote(1).await.unwrap();
    let status = follower.repl_status().await.unwrap();
    assert!(status.leader);
    assert_eq!(status.epoch, 1);
    // Replaying the same promotion (or an older one) is refused.
    let stale = follower.repl_promote(1).await;
    assert!(
        matches!(stale, Err(Error::Conflict { .. })),
        "stale-epoch promote must be fenced, got {stale:?}"
    );
    // The old leader, told of the newer epoch, stands down and fences.
    let old = cluster.node(0).server().unwrap();
    old.repl().observe_epoch(1);
    assert!(!old.repl().is_leader());
    cluster.shutdown().await;
}
