//! The TCP exchange client.
//!
//! One connection, pipelined: requests carry correlation ids, a background
//! demultiplexer routes replies to per-request oneshot channels and pushed
//! events to per-subscription streams. Optional injected latency models a
//! cluster network RTT deterministically (loopback TCP alone measures in
//! microseconds; pod-to-pod traffic does not).

use crate::api::{BoxFuture, ExchangeApi, TailRx, WatchRx};
use crate::frame::{FrameReader, FrameWriter};
use crate::proto::{
    decode, encode, EventBody, Hello, ProfileSpec, QuerySpec, Request, RequestEnvelope, Response,
    ServerMsg,
};
use knactor_logstore::LogRecord;
use knactor_rbac::{Subject, SubjectKind};
use knactor_store::udf::UdfAssignment;
use knactor_store::{StoredObject, TxOp, UdfBinding, WatchEvent};
use knactor_types::{Error, ObjectKey, Result, Revision, Schema, SchemaName, StoreId, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::TcpStream;
use tokio::sync::{mpsc, oneshot};

/// Routing state shared with the demultiplexer task.
#[derive(Default)]
struct Router {
    /// Set once the demultiplexer exits (connection gone); all later
    /// requests fail fast instead of waiting on a reply that cannot come.
    closed: bool,
    pending: HashMap<u64, oneshot::Sender<Response>>,
    /// Request id → channel to install once the Watch reply names a sub id.
    staged_watches: HashMap<u64, StagedSub>,
    object_subs: HashMap<u64, mpsc::UnboundedSender<WatchEvent>>,
    record_subs: HashMap<u64, mpsc::UnboundedSender<LogRecord>>,
}

enum StagedSub {
    Object(mpsc::UnboundedSender<WatchEvent>),
    Record(mpsc::UnboundedSender<LogRecord>),
}

/// Async exchange client over TCP.
pub struct TcpClient {
    out_tx: mpsc::UnboundedSender<RequestEnvelope>,
    router: Arc<Mutex<Router>>,
    next_id: AtomicU64,
    latency: Option<Duration>,
    subject: Subject,
}

impl TcpClient {
    /// Connect and identify as `subject`.
    pub async fn connect(
        addr: impl tokio::net::ToSocketAddrs,
        subject: Subject,
    ) -> Result<TcpClient> {
        let socket = TcpStream::connect(addr).await?;
        socket
            .set_nodelay(true)
            .map_err(|e| Error::Transport(e.to_string()))?;
        let (read_half, write_half) = socket.into_split();
        let mut writer = FrameWriter::new(write_half);
        let hello = Hello {
            subject_kind: match subject.kind {
                SubjectKind::Reconciler => "reconciler".to_string(),
                SubjectKind::Integrator => "integrator".to_string(),
                SubjectKind::Operator => "operator".to_string(),
            },
            subject_name: subject.name.clone(),
        };
        writer.write_frame(&encode(&hello)?).await?;

        let router = Arc::new(Mutex::new(Router::default()));

        // Writer task: serializes request envelopes onto the socket.
        let (out_tx, mut out_rx) = mpsc::unbounded_channel::<RequestEnvelope>();
        tokio::spawn(async move {
            while let Some(envelope) = out_rx.recv().await {
                let Ok(bytes) = encode(&envelope) else { break };
                if writer.write_frame(&bytes).await.is_err() {
                    break;
                }
            }
        });

        // Demultiplexer task.
        let demux_router = Arc::clone(&router);
        tokio::spawn(async move {
            let mut reader = FrameReader::new(read_half);
            loop {
                let frame = match reader.read_frame().await {
                    Ok(Some(f)) => f,
                    _ => break,
                };
                let msg: ServerMsg = match decode(&frame) {
                    Ok(m) => m,
                    Err(_) => break,
                };
                let mut router = demux_router.lock();
                match msg {
                    ServerMsg::Reply { id, response } => {
                        // A watch/tail reply installs its event channel
                        // *before* the reply is released, so no event can
                        // race past an unregistered subscription.
                        if let Response::Watch { sub_id } = &response {
                            if let Some(staged) = router.staged_watches.remove(&id) {
                                match staged {
                                    StagedSub::Object(tx) => {
                                        router.object_subs.insert(*sub_id, tx);
                                    }
                                    StagedSub::Record(tx) => {
                                        router.record_subs.insert(*sub_id, tx);
                                    }
                                }
                            }
                        } else {
                            router.staged_watches.remove(&id);
                        }
                        if let Some(tx) = router.pending.remove(&id) {
                            let _ = tx.send(response);
                        }
                    }
                    ServerMsg::Event { sub_id, body } => match body {
                        EventBody::Object { event } => {
                            if let Some(tx) = router.object_subs.get(&sub_id) {
                                if tx.send(event).is_err() {
                                    router.object_subs.remove(&sub_id);
                                }
                            }
                        }
                        EventBody::Record { record } => {
                            if let Some(tx) = router.record_subs.get(&sub_id) {
                                if tx.send(record).is_err() {
                                    router.record_subs.remove(&sub_id);
                                }
                            }
                        }
                        EventBody::Closed => {
                            router.object_subs.remove(&sub_id);
                            router.record_subs.remove(&sub_id);
                        }
                    },
                }
            }
            // Connection gone: fail all pending requests by dropping their
            // senders, close all subscriptions, and refuse future requests.
            let mut router = demux_router.lock();
            router.closed = true;
            router.pending.clear();
            router.object_subs.clear();
            router.record_subs.clear();
        });

        Ok(TcpClient {
            out_tx,
            router,
            next_id: AtomicU64::new(1),
            latency: None,
            subject,
        })
    }

    /// Inject a fixed round-trip latency applied to every request (models
    /// cluster RTT; benchmarks use it to make transport cost explicit).
    pub fn with_latency(mut self, rtt: Duration) -> TcpClient {
        self.latency = Some(rtt);
        self
    }

    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    async fn request(&self, body: Request) -> Result<Response> {
        self.request_staged(body, None).await
    }

    async fn request_staged(&self, body: Request, staged: Option<StagedSub>) -> Result<Response> {
        if let Some(rtt) = self.latency {
            knactor_store::profile::precise_sleep(rtt).await;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = oneshot::channel();
        {
            let mut router = self.router.lock();
            if router.closed {
                return Err(Error::Transport("connection closed".to_string()));
            }
            router.pending.insert(id, tx);
            if let Some(staged) = staged {
                router.staged_watches.insert(id, staged);
            }
        }
        self.out_tx
            .send(RequestEnvelope { id, body })
            .map_err(|_| Error::Transport("connection closed".to_string()))?;
        let response = rx
            .await
            .map_err(|_| Error::Transport("connection closed awaiting reply".to_string()))?;
        response.into_result()
    }

    /// Round-trip a ping (health check / latency probe).
    pub async fn ping(&self) -> Result<()> {
        match self.request(Request::Ping).await? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(r: Response) -> Error {
    Error::Transport(format!("unexpected response {r:?}"))
}

impl ExchangeApi for TcpClient {
    fn create_store(&self, store: StoreId, profile: ProfileSpec) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self
                .request(Request::CreateStore { store, profile })
                .await?
            {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn create(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self.request(Request::Create { store, key, value }).await? {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn get(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<StoredObject>> {
        Box::pin(async move {
            match self.request(Request::Get { store, key }).await? {
                Response::Object { object } => Ok(object),
                other => Err(unexpected(other)),
            }
        })
    }

    fn list(&self, store: StoreId) -> BoxFuture<'_, Result<(Vec<StoredObject>, Revision)>> {
        Box::pin(async move {
            match self.request(Request::List { store }).await? {
                Response::Objects { objects, revision } => Ok((objects, revision)),
                other => Err(unexpected(other)),
            }
        })
    }

    fn update(
        &self,
        store: StoreId,
        key: ObjectKey,
        value: Value,
        expected: Option<Revision>,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self
                .request(Request::Update {
                    store,
                    key,
                    value,
                    expected,
                })
                .await?
            {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn patch(
        &self,
        store: StoreId,
        key: ObjectKey,
        patch: Value,
        upsert: bool,
    ) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self
                .request(Request::Patch {
                    store,
                    key,
                    patch,
                    upsert,
                })
                .await?
            {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn delete(&self, store: StoreId, key: ObjectKey) -> BoxFuture<'_, Result<Revision>> {
        Box::pin(async move {
            match self.request(Request::Delete { store, key }).await? {
                Response::Revision { revision } => Ok(revision),
                other => Err(unexpected(other)),
            }
        })
    }

    fn register_consumer(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self
                .request(Request::RegisterConsumer {
                    store,
                    key,
                    consumer,
                })
                .await?
            {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn mark_processed(
        &self,
        store: StoreId,
        key: ObjectKey,
        consumer: String,
    ) -> BoxFuture<'_, Result<Vec<ObjectKey>>> {
        Box::pin(async move {
            match self
                .request(Request::MarkProcessed {
                    store,
                    key,
                    consumer,
                })
                .await?
            {
                Response::Collected { keys } => Ok(keys),
                other => Err(unexpected(other)),
            }
        })
    }

    fn watch(&self, store: StoreId, from: Revision) -> BoxFuture<'_, Result<WatchRx>> {
        Box::pin(async move {
            let (tx, rx) = mpsc::unbounded_channel();
            match self
                .request_staged(Request::Watch { store, from }, Some(StagedSub::Object(tx)))
                .await?
            {
                Response::Watch { .. } => Ok(rx),
                other => Err(unexpected(other)),
            }
        })
    }

    fn register_schema(&self, schema: Schema) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self.request(Request::RegisterSchema { schema }).await? {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn bind_schema(&self, store: StoreId, schema: SchemaName) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self.request(Request::BindSchema { store, schema }).await? {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn get_schema(&self, schema: SchemaName) -> BoxFuture<'_, Result<Schema>> {
        Box::pin(async move {
            match self.request(Request::GetSchema { schema }).await? {
                Response::Schema { schema } => Ok(schema),
                other => Err(unexpected(other)),
            }
        })
    }

    fn register_udf(
        &self,
        name: String,
        inputs: Vec<String>,
        assignments: Vec<UdfAssignment>,
    ) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self
                .request(Request::RegisterUdf {
                    name,
                    inputs,
                    assignments,
                })
                .await?
            {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn execute_udf(
        &self,
        name: String,
        bindings: Vec<UdfBinding>,
    ) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            match self.request(Request::ExecuteUdf { name, bindings }).await? {
                Response::Revisions { revisions } => Ok(revisions),
                other => Err(unexpected(other)),
            }
        })
    }

    fn transact(&self, ops: Vec<TxOp>) -> BoxFuture<'_, Result<Vec<(StoreId, Revision)>>> {
        Box::pin(async move {
            match self.request(Request::Transact { ops }).await? {
                Response::Revisions { revisions } => Ok(revisions),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_create_store(&self, store: StoreId) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match self.request(Request::LogCreateStore { store }).await? {
                Response::Ok => Ok(()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_append(&self, store: StoreId, fields: Value) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            match self.request(Request::LogAppend { store, fields }).await? {
                Response::Seq { seq } => Ok(seq),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_append_batch(&self, store: StoreId, batch: Vec<Value>) -> BoxFuture<'_, Result<u64>> {
        Box::pin(async move {
            match self
                .request(Request::LogAppendBatch { store, batch })
                .await?
            {
                Response::Seq { seq } => Ok(seq),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_read(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<Vec<LogRecord>>> {
        Box::pin(async move {
            match self.request(Request::LogRead { store, from }).await? {
                Response::Records { records } => Ok(records),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_query(&self, store: StoreId, query: QuerySpec) -> BoxFuture<'_, Result<Vec<Value>>> {
        Box::pin(async move {
            match self.request(Request::LogQuery { store, query }).await? {
                Response::Rows { rows } => Ok(rows),
                other => Err(unexpected(other)),
            }
        })
    }

    fn log_tail(&self, store: StoreId, from: u64) -> BoxFuture<'_, Result<TailRx>> {
        Box::pin(async move {
            let (tx, rx) = mpsc::unbounded_channel();
            match self
                .request_staged(
                    Request::LogTail { store, from },
                    Some(StagedSub::Record(tx)),
                )
                .await?
            {
                Response::Watch { .. } => Ok(rx),
                other => Err(unexpected(other)),
            }
        })
    }
}
