//! # knactor-core
//!
//! The Knactor framework (§3.2): the `knactor` service abstraction, the
//! reconciler programming model, the runtime that hosts them, and the two
//! built-in integrators.
//!
//! ## The Knactor pattern, concretely
//!
//! * A [`knactor::Knactor`] is a service that talks **only to its own
//!   data stores** — one or more Object stores (configuration-like state)
//!   and Log stores (telemetry-like state), hosted on data exchanges.
//! * Its [`reconciler::Reconciler`] watches the knactor's own store and
//!   reacts to state changes (e.g. a new `Shipment` object appears → call
//!   the carrier, write back `trackingID`).
//! * Composition lives **outside** every service, in integrators:
//!   [`cast::Cast`] executes a data-exchange graph over Object stores;
//!   [`sync::Sync`] runs dataflow pipelines between Log stores.
//! * The [`runtime::Runtime`] supervises all of it: spawn, restart on
//!   panic, graceful shutdown (the Tokio shutdown pattern).
//!
//! ## Run-time reconfiguration (§3.3)
//!
//! Both integrators accept configuration updates while running —
//! [`cast::CastController::reconfigure`] swaps in a new DXG without
//! touching, rebuilding, or redeploying any knactor. That operation *is*
//! the paper's headline claim, and Table 1's harness measures it.
//!
//! The [`composer`] module lifts reconfiguration from one integrator to
//! the whole composition: applications declare a [`composer::Composition`]
//! and [`composer::Composer::apply`] diffs it against what is running,
//! disturbing only the edges that actually changed. Both integrator kinds
//! share one lifecycle — the [`integrator::Integrator`] trait
//! (reconfigure / drain / shutdown / health / stats) — which is what the
//! composer manages.
//!
//! ## Observability
//!
//! [`telemetry`] threads exchange-level traces (per-activation spans)
//! through Cast and Sync so cross-service data flows stay visible;
//! [`telemetry::Counters`] counts composer lifecycle events. [`metrics`]
//! is the quantitative side: a process-wide registry of counters, gauges,
//! and latency histograms (aggregating the same stage names the traces
//! use), scrapeable in Prometheus text format over the wire.

pub mod cast;
pub mod composer;
pub mod continuous;
pub mod integrator;
pub mod knactor;
pub mod metrics;
pub mod reconciler;
pub mod runtime;
pub mod schema_file;
pub mod sync;
pub mod telemetry;
pub mod tuner;

pub use cast::{Cast, CastBinding, CastConfig, CastController, CastMode, KeyBinding};
pub use composer::{
    cast_edge_actions, ApplyReport, CastSection, Composer, ComposerHealth, Composition, EdgeAction,
};
pub use continuous::{Continuous, ContinuousConfig, ContinuousController};
pub use integrator::{Health, Integrator, IntegratorConfig, IntegratorStats};
pub use knactor::{Knactor, KnactorBuilder};
pub use reconciler::{FnReconciler, Reconciler, ReconcilerCtx};
pub use runtime::Runtime;
pub use schema_file::{parse_schema, schema_to_yaml};
pub use sync::{Sync, SyncConfig, SyncDest, SyncMode};
pub use telemetry::{Counters, Span, TraceCollector};
pub use tuner::{
    placement_for, Decision, DecisionState, EdgeObservation, Tuner, TunerConfig, TunerHandle,
    TunerPolicy,
};
