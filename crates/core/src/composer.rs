//! The **Composer**: one declarative composition, diff-driven live
//! reconfiguration.
//!
//! Applications declare *what* the exchange should look like — a DXG plus
//! bindings for object exchange, named Sync pipelines for log exchange —
//! and [`Composer::apply`] makes it so. The composer decomposes the DXG
//! into per-target **edges** ([`knactor_dxg::Dxg::edges`]): each target
//! alias gets its own Cast integrator running just the slice of the graph
//! that writes it, and each Sync config is an edge of its own. Keys are
//! `cast:<alias>` and `sync:<name>`.
//!
//! A second `apply` with an evolved composition does not tear the world
//! down. It diffs the new spec against the applied one
//! ([`knactor_dxg::diff`] semantics, realized as per-edge equivalence)
//! and executes only the minimal change set:
//!
//! * **added** edges are preflighted (source stores reachable) and
//!   spawned;
//! * **modified** edges are reconfigured *in place* — the running task
//!   survives, so a Sync's tail position is kept and nothing is
//!   re-delivered;
//! * **removed** edges are drained (barrier: queued events processed)
//!   and then stopped;
//! * **untouched** edges are never disturbed — same task, same state.
//!
//! Ordering makes rollback tractable: reconfigurations run first (their
//! undo is reconfigure-back, which is offline-validatable), spawns second
//! (undo is stop), removals last (no undo ever needed — by the time an
//! edge is drained, every fallible step has succeeded). On any failure
//! the undo log runs in reverse, the previous composition stays applied,
//! and `apply` returns the error.

use crate::cast::{Cast, CastBinding, CastConfig, CastMode};
use crate::continuous::{Continuous, ContinuousConfig};
use crate::integrator::{Health, Integrator, IntegratorConfig, IntegratorStats};
use crate::runtime::Runtime;
use crate::sync::{Sync, SyncConfig};
use crate::telemetry::{Counters, TraceCollector};
use knactor_expr::FnRegistry;
use knactor_net::ExchangeApi;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// The object-exchange half of a composition: one DXG with bindings.
/// The composer slices it per target alias; the mode applies to every
/// slice (pushdown UDF names get an `:<alias>` suffix so slices don't
/// overwrite each other's registration).
#[derive(Debug, Clone)]
pub struct CastSection {
    pub dxg: knactor_dxg::Dxg,
    pub bindings: BTreeMap<String, CastBinding>,
    pub mode: CastMode,
    /// Per-target-alias execution overrides, keyed by alias. An entry
    /// wins over `mode` for that alias's edge only — this is how the
    /// tuner re-plans one edge without restating the whole section.
    /// Pushdown UDF names here get the same `:<alias>` suffix as `mode`.
    pub mode_overrides: BTreeMap<String, CastMode>,
    /// Per-target-alias coalescing window (see [`CastConfig::coalesce`]);
    /// absent aliases run uncoalesced.
    pub coalesce_overrides: BTreeMap<String, usize>,
}

/// A full declarative composition: what should be running.
#[derive(Debug, Clone, Default)]
pub struct Composition {
    pub cast: Option<CastSection>,
    pub syncs: BTreeMap<String, SyncConfig>,
    pub continuous: BTreeMap<String, ContinuousConfig>,
}

impl Composition {
    pub fn new() -> Composition {
        Composition::default()
    }

    pub fn with_cast(
        mut self,
        dxg: knactor_dxg::Dxg,
        bindings: BTreeMap<String, CastBinding>,
        mode: CastMode,
    ) -> Composition {
        self.cast = Some(CastSection {
            dxg,
            bindings,
            mode,
            mode_overrides: BTreeMap::new(),
            coalesce_overrides: BTreeMap::new(),
        });
        self
    }

    /// Override the execution mode of one cast edge (panics without a
    /// cast section — overrides refine `with_cast`, they don't replace
    /// it).
    pub fn with_cast_mode_override(
        mut self,
        alias: impl Into<String>,
        mode: CastMode,
    ) -> Composition {
        self.cast
            .as_mut()
            .expect("with_cast_mode_override requires with_cast first")
            .mode_overrides
            .insert(alias.into(), mode);
        self
    }

    /// Override the coalescing window of one cast edge.
    pub fn with_cast_coalesce(mut self, alias: impl Into<String>, coalesce: usize) -> Composition {
        self.cast
            .as_mut()
            .expect("with_cast_coalesce requires with_cast first")
            .coalesce_overrides
            .insert(alias.into(), coalesce);
        self
    }

    pub fn with_sync(mut self, config: SyncConfig) -> Composition {
        self.syncs.insert(config.name.clone(), config);
        self
    }

    pub fn with_continuous(mut self, config: ContinuousConfig) -> Composition {
        self.continuous.insert(config.name.clone(), config);
        self
    }
}

/// What one [`Composer::apply`] actually did, per edge key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyReport {
    pub spawned: Vec<String>,
    pub reconfigured: Vec<String>,
    pub stopped: Vec<String>,
    pub untouched: Vec<String>,
}

impl ApplyReport {
    /// Edges whose running task was disturbed (spawned or stopped count;
    /// reconfigured does not — the task survives).
    pub fn restarts(&self) -> usize {
        self.spawned.len() + self.stopped.len()
    }
}

/// [`Composer::health`]: per-edge integrator health plus a metrics
/// snapshot from the process-wide registry.
#[derive(Debug, Clone)]
pub struct ComposerHealth {
    pub edges: Vec<(String, Health)>,
    pub metrics: crate::metrics::MetricsSnapshot,
}

impl ComposerHealth {
    /// True when every running edge's task is alive.
    pub fn all_running(&self) -> bool {
        self.edges.iter().all(|(_, h)| *h == Health::Running)
    }
}

/// How an apply would treat one edge — the dry-run view `knactorctl
/// diff` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeAction {
    Spawn,
    Reconfigure,
    Stop,
    Untouched,
}

impl std::fmt::Display for EdgeAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeAction::Spawn => write!(f, "spawn"),
            EdgeAction::Reconfigure => write!(f, "reconfigure"),
            EdgeAction::Stop => write!(f, "stop"),
            EdgeAction::Untouched => write!(f, "untouched"),
        }
    }
}

/// Classify per-target cast edges between two DXGs (dry run of the cast
/// half of an apply; the CLI `diff` command prints this). Bindings and
/// mode are assumed unchanged — spec-level changes only.
pub fn cast_edge_actions(
    old: &knactor_dxg::Dxg,
    new: &knactor_dxg::Dxg,
) -> Vec<(String, EdgeAction)> {
    let old_edges = old.edges();
    let new_edges = new.edges();
    let mut out = Vec::new();
    for (alias, old_edge) in &old_edges {
        match new_edges.get(alias) {
            None => out.push((alias.clone(), EdgeAction::Stop)),
            Some(new_edge) if knactor_dxg::equivalent(old_edge, new_edge) => {
                out.push((alias.clone(), EdgeAction::Untouched))
            }
            Some(_) => out.push((alias.clone(), EdgeAction::Reconfigure)),
        }
    }
    for alias in new_edges.keys() {
        if !old_edges.contains_key(alias) {
            out.push((alias.clone(), EdgeAction::Spawn));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// A running edge: the integrator, the config it runs, and a spawn
/// generation. `instance` changes only when the edge's task is replaced —
/// reconfigure keeps it, which is exactly what the minimal-restart test
/// asserts survives.
struct EdgeSlot {
    integrator: Box<dyn Integrator>,
    config: IntegratorConfig,
    instance: u64,
}

struct Inner {
    edges: BTreeMap<String, EdgeSlot>,
    applied: Option<Composition>,
    next_instance: u64,
    applies: u64,
}

/// Exclusive async access to [`Inner`] without an async mutex (the
/// vendored tokio has none): callers *take* the state out, await freely
/// while holding it, and *put* it back. Concurrent takers poll — applies
/// are rare and short, so contention is theoretical.
struct StateCell(parking_lot::Mutex<Option<Inner>>);

impl StateCell {
    fn new(inner: Inner) -> StateCell {
        StateCell(parking_lot::Mutex::new(Some(inner)))
    }

    async fn take(&self) -> Inner {
        loop {
            if let Some(inner) = self.0.lock().take() {
                return inner;
            }
            tokio::time::sleep(std::time::Duration::from_millis(1)).await;
        }
    }

    fn put(&self, inner: Inner) {
        *self.0.lock() = Some(inner);
    }
}

/// Owns every integrator of one composition and reconciles it toward
/// newly-applied specs (see module docs).
pub struct Composer {
    name: String,
    api: Arc<dyn ExchangeApi>,
    fns: FnRegistry,
    traces: TraceCollector,
    counters: Counters,
    inner: Arc<StateCell>,
}

impl Composer {
    pub fn new(name: impl Into<String>, api: Arc<dyn ExchangeApi>) -> Composer {
        Composer {
            name: name.into(),
            api,
            fns: FnRegistry::standard(),
            traces: TraceCollector::new(),
            counters: Counters::new(),
            inner: Arc::new(StateCell::new(Inner {
                edges: BTreeMap::new(),
                applied: None,
                next_instance: 0,
                applies: 0,
            })),
        }
    }

    pub fn with_functions(mut self, fns: FnRegistry) -> Composer {
        self.fns = fns;
        self
    }

    pub fn with_traces(mut self, traces: TraceCollector) -> Composer {
        self.traces = traces;
        self
    }

    pub fn traces(&self) -> &TraceCollector {
        &self.traces
    }

    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Register this composer with a runtime: when the runtime raises its
    /// shutdown flag, the composer drains and stops every edge inside the
    /// grace window of [`Runtime::shutdown_with_grace`].
    pub fn supervise(&self, runtime: &Runtime) {
        let cell = Arc::clone(&self.inner);
        let mut signal = runtime.shutdown_signal();
        let task = tokio::spawn(async move {
            while !*signal.borrow() {
                if signal.changed().await.is_err() {
                    return;
                }
            }
            let mut inner = cell.take().await;
            let edges = std::mem::take(&mut inner.edges);
            inner.applied = None;
            cell.put(inner);
            for (_key, slot) in edges {
                let _ = slot.integrator.drain().await;
                slot.integrator.shutdown().await;
            }
        });
        runtime.replace(format!("composer:{}", self.name), task);
    }

    /// Apply a composition: diff against the applied one, execute the
    /// minimal change set, roll back on failure (see module docs).
    pub async fn apply(&self, composition: Composition) -> knactor_types::Result<ApplyReport> {
        let mut inner = self.inner.take().await;
        inner.applies += 1;
        let trace_id = format!("apply-{}", inner.applies);
        let component = format!("composer:{}", self.name);
        let start = Instant::now();
        let result = self.apply_locked(&mut inner, composition).await;
        self.inner.put(inner);
        let elapsed = start.elapsed();
        self.traces.record(&trace_id, &component, "apply", elapsed);
        let registry = crate::metrics::global();
        registry
            .histogram(
                "knactor_composer_apply_seconds",
                &[("composer", &self.name)],
            )
            .observe(elapsed);
        let event = |kind: &str, n: u64| {
            registry
                .counter(
                    "knactor_composer_events_total",
                    &[("composer", &self.name), ("kind", kind)],
                )
                .add(n);
        };
        match &result {
            Ok(report) => {
                self.counters.incr("composer.apply.ok");
                self.counters
                    .add("composer.apply.edges_spawned", report.spawned.len() as u64);
                self.counters.add(
                    "composer.apply.edges_reconfigured",
                    report.reconfigured.len() as u64,
                );
                self.counters
                    .add("composer.apply.edges_stopped", report.stopped.len() as u64);
                event("apply_ok", 1);
                event("edges_spawned", report.spawned.len() as u64);
                event("edges_reconfigured", report.reconfigured.len() as u64);
                event("edges_stopped", report.stopped.len() as u64);
            }
            Err(_) => {
                self.counters.incr("composer.apply.rolled_back");
                event("apply_rolled_back", 1);
            }
        }
        result
    }

    async fn apply_locked(
        &self,
        inner: &mut Inner,
        composition: Composition,
    ) -> knactor_types::Result<ApplyReport> {
        // 1. Derive and prevalidate every desired edge before touching
        //    any running one: an invalid spec must leave the world as-is.
        let desired = self.desired_edges(&composition);
        for config in desired.values() {
            config.validate()?;
        }

        // 2. Classify.
        let mut to_reconfigure: Vec<(String, IntegratorConfig)> = Vec::new();
        let mut to_spawn: Vec<(String, IntegratorConfig)> = Vec::new();
        let mut report = ApplyReport::default();
        for (key, config) in &desired {
            match inner.edges.get(key) {
                None => to_spawn.push((key.clone(), config.clone())),
                Some(slot) if config_equal(&slot.config, config) => {
                    report.untouched.push(key.clone())
                }
                Some(_) => to_reconfigure.push((key.clone(), config.clone())),
            }
        }
        let to_stop: Vec<String> = inner
            .edges
            .keys()
            .filter(|k| !desired.contains_key(*k))
            .cloned()
            .collect();

        // 3. Execute with an undo log. Reconfigure first, spawn second,
        //    stop last (see module docs for why this order bounds undo).
        enum Undo {
            Reconfigure(String, IntegratorConfig),
            Despawn(String),
        }
        let mut undo: Vec<Undo> = Vec::new();
        let mut failure: Option<knactor_types::Error> = None;

        'exec: {
            for (key, config) in &to_reconfigure {
                if let Err(e) = self.preflight_reconfigure(config).await {
                    failure = Some(e);
                    break 'exec;
                }
                let slot = inner.edges.get_mut(key).expect("classified as running");
                let old_config = slot.config.clone();
                match slot.integrator.reconfigure(config.clone()).await {
                    Ok(()) => {
                        slot.config = config.clone();
                        undo.push(Undo::Reconfigure(key.clone(), old_config));
                        report.reconfigured.push(key.clone());
                        self.counters
                            .incr(&format!("composer.edge.{key}.reconfigures"));
                    }
                    Err(e) => {
                        failure = Some(e);
                        break 'exec;
                    }
                }
            }
            for (key, config) in &to_spawn {
                let spawned = async {
                    self.preflight(config).await?;
                    self.spawn_edge(config).await
                }
                .await;
                match spawned {
                    Ok(integrator) => {
                        let instance = inner.next_instance;
                        inner.next_instance += 1;
                        inner.edges.insert(
                            key.clone(),
                            EdgeSlot {
                                integrator,
                                config: config.clone(),
                                instance,
                            },
                        );
                        undo.push(Undo::Despawn(key.clone()));
                        report.spawned.push(key.clone());
                        self.counters.incr(&format!("composer.edge.{key}.restarts"));
                    }
                    Err(e) => {
                        failure = Some(e);
                        break 'exec;
                    }
                }
            }
            for key in &to_stop {
                if let Some(slot) = inner.edges.remove(key) {
                    // Lossless stop: barrier first, then shut down.
                    let _ = slot.integrator.drain().await;
                    slot.integrator.shutdown().await;
                    report.stopped.push(key.clone());
                    self.counters.incr(&format!("composer.edge.{key}.stops"));
                }
            }
        }

        let Some(error) = failure else {
            inner.applied = Some(composition);
            return Ok(report);
        };

        // 4. Roll back in reverse. Reconfigure-back re-runs an
        //    already-validated config on a live task; despawn is a plain
        //    stop. Neither depends on the exchange being reachable, so
        //    rollback succeeds even when the failure was a dead network.
        for step in undo.into_iter().rev() {
            match step {
                Undo::Reconfigure(key, old_config) => {
                    if let Some(slot) = inner.edges.get_mut(&key) {
                        match slot.integrator.reconfigure(old_config.clone()).await {
                            Ok(()) => slot.config = old_config,
                            Err(_) => {
                                self.counters.incr("composer.apply.rollback_failed");
                            }
                        }
                    }
                }
                Undo::Despawn(key) => {
                    if let Some(slot) = inner.edges.remove(&key) {
                        slot.integrator.shutdown().await;
                    }
                }
            }
        }
        Err(error)
    }

    /// Drain and stop every edge (manual teardown; [`Composer::supervise`]
    /// does the same on the runtime's shutdown flag).
    pub async fn shutdown_all(&self) {
        let mut inner = self.inner.take().await;
        let edges = std::mem::take(&mut inner.edges);
        inner.applied = None;
        self.inner.put(inner);
        for (_key, slot) in edges {
            let _ = slot.integrator.drain().await;
            slot.integrator.shutdown().await;
        }
    }

    /// Barrier across every running edge: all queued events processed.
    pub async fn drain_all(&self) -> knactor_types::Result<()> {
        let inner = self.inner.take().await;
        let mut result = Ok(());
        for slot in inner.edges.values() {
            if let Err(e) = slot.integrator.drain().await {
                result = Err(e);
                break;
            }
        }
        self.inner.put(inner);
        result
    }

    /// The composer's name — the `composer` label on its metrics and the
    /// prefix of its edge integrator names (`{name}:{alias}`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently-applied composition, if any — the tuner's starting
    /// point for minimal-diff re-plans.
    pub async fn applied(&self) -> Option<Composition> {
        let inner = self.inner.take().await;
        let out = inner.applied.clone();
        self.inner.put(inner);
        out
    }

    /// Keys of the currently-running edges.
    pub async fn edge_keys(&self) -> Vec<String> {
        let inner = self.inner.take().await;
        let out = inner.edges.keys().cloned().collect();
        self.inner.put(inner);
        out
    }

    /// Spawn generation of an edge — survives reconfigure, changes on
    /// respawn. `None` if the edge is not running.
    pub async fn edge_instance(&self, key: &str) -> Option<u64> {
        let inner = self.inner.take().await;
        let out = inner.edges.get(key).map(|s| s.instance);
        self.inner.put(inner);
        out
    }

    pub async fn edge_health(&self, key: &str) -> Option<Health> {
        let inner = self.inner.take().await;
        let out = inner.edges.get(key).map(|s| s.integrator.health());
        self.inner.put(inner);
        out
    }

    pub async fn edge_stats(&self, key: &str) -> Option<IntegratorStats> {
        let inner = self.inner.take().await;
        let out = inner.edges.get(key).map(|s| s.integrator.stats());
        self.inner.put(inner);
        out
    }

    /// One composite health view: per-edge integrator health plus a
    /// point-in-time snapshot of the process-wide metrics registry (the
    /// same snapshot `knactorctl metrics` scrapes over the wire).
    pub async fn health(&self) -> ComposerHealth {
        let inner = self.inner.take().await;
        let edges: Vec<(String, Health)> = inner
            .edges
            .iter()
            .map(|(key, slot)| (key.clone(), slot.integrator.health()))
            .collect();
        self.inner.put(inner);
        ComposerHealth {
            edges,
            metrics: crate::metrics::global().snapshot(),
        }
    }

    /// Decompose a composition into per-edge integrator configs.
    fn desired_edges(&self, composition: &Composition) -> BTreeMap<String, IntegratorConfig> {
        let mut out = BTreeMap::new();
        if let Some(section) = &composition.cast {
            for (alias, edge_dxg) in section.dxg.edges() {
                let bindings: BTreeMap<String, CastBinding> = section
                    .bindings
                    .iter()
                    .filter(|(a, _)| edge_dxg.inputs.contains_key(*a))
                    .map(|(a, b)| (a.clone(), b.clone()))
                    .collect();
                let mode = match section.mode_overrides.get(&alias).unwrap_or(&section.mode) {
                    CastMode::Direct => CastMode::Direct,
                    CastMode::Pushdown { udf_name } => CastMode::Pushdown {
                        udf_name: format!("{udf_name}:{alias}"),
                    },
                };
                let config = CastConfig {
                    name: format!("{}:{alias}", self.name),
                    dxg: edge_dxg,
                    bindings,
                    mode,
                    coalesce: section.coalesce_overrides.get(&alias).copied().unwrap_or(1),
                };
                out.insert(format!("cast:{alias}"), IntegratorConfig::Cast(config));
            }
        }
        for (name, config) in &composition.syncs {
            let mut config = config.clone();
            config.name = name.clone();
            out.insert(format!("sync:{name}"), IntegratorConfig::Sync(config));
        }
        for (name, config) in &composition.continuous {
            let mut config = config.clone();
            config.name = name.clone();
            out.insert(format!("cq:{name}"), IntegratorConfig::Continuous(config));
        }
        out
    }

    /// Reachability check for an edge about to spawn — the fallible step
    /// a fault-injection test trips to exercise rollback.
    async fn preflight(&self, config: &IntegratorConfig) -> knactor_types::Result<()> {
        match config {
            IntegratorConfig::Cast(c) => {
                for binding in c.bindings.values() {
                    self.api.list(binding.store.clone()).await?;
                }
            }
            IntegratorConfig::Sync(c) => {
                // Read past the end: cheap, allocation-free liveness probe.
                self.api.log_read(c.source.clone(), u64::MAX).await?;
            }
            IntegratorConfig::Continuous(c) => {
                self.api.log_read(c.source.clone(), u64::MAX).await?;
            }
        }
        Ok(())
    }

    /// Reconfiguration is normally network-free — the running task keeps
    /// its tail position and watches, and validation is offline. A
    /// **pushdown** cast config is the exception: its UDF executes inside
    /// the target exchange, so retargeting it toward a store the exchange
    /// does not host would otherwise report success while the edge
    /// dead-loops on watch restarts and the stale UDF registration keeps
    /// serving the old target. Probe every binding store first and
    /// surface the failure as a typed [`PushdownUnavailable`] error so
    /// the apply rolls back instead of silently degrading.
    ///
    /// [`PushdownUnavailable`]: knactor_types::Error::PushdownUnavailable
    async fn preflight_reconfigure(&self, config: &IntegratorConfig) -> knactor_types::Result<()> {
        if let IntegratorConfig::Cast(c) = config {
            if let CastMode::Pushdown { udf_name } = &c.mode {
                for binding in c.bindings.values() {
                    if self.api.list(binding.store.clone()).await.is_err() {
                        return Err(knactor_types::Error::PushdownUnavailable {
                            udf: udf_name.clone(),
                            store: binding.store.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    async fn spawn_edge(
        &self,
        config: &IntegratorConfig,
    ) -> knactor_types::Result<Box<dyn Integrator>> {
        match config {
            IntegratorConfig::Cast(c) => {
                let controller = Cast::new(Arc::clone(&self.api))
                    .with_functions(self.fns.clone())
                    .with_traces(self.traces.clone())
                    .spawn(c.clone())
                    .await?;
                Ok(Box::new(controller))
            }
            IntegratorConfig::Sync(c) => {
                let controller = Sync::new(Arc::clone(&self.api))
                    .with_traces(self.traces.clone())
                    .spawn(c.clone())
                    .await?;
                Ok(Box::new(controller))
            }
            IntegratorConfig::Continuous(c) => {
                let controller = Continuous::new(Arc::clone(&self.api))
                    .with_functions(self.fns.clone())
                    .with_traces(self.traces.clone())
                    .spawn(c.clone())
                    .await?;
                Ok(Box::new(controller))
            }
        }
    }
}

/// Structural equality of edge configs. `Dxg` has no `PartialEq`;
/// [`knactor_dxg::equivalent`] is the right notion anyway (formatting
/// and declaration order must not register as changes).
fn config_equal(a: &IntegratorConfig, b: &IntegratorConfig) -> bool {
    match (a, b) {
        (IntegratorConfig::Cast(x), IntegratorConfig::Cast(y)) => {
            x.name == y.name
                && x.bindings == y.bindings
                && x.mode == y.mode
                && x.coalesce == y.coalesce
                && knactor_dxg::equivalent(&x.dxg, &y.dxg)
        }
        (IntegratorConfig::Sync(x), IntegratorConfig::Sync(y)) => x == y,
        (IntegratorConfig::Continuous(x), IntegratorConfig::Continuous(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_net::loopback::in_process;
    use knactor_net::proto::ProfileSpec;
    use knactor_rbac::Subject;
    use knactor_types::StoreId;

    async fn api_with_stores(stores: &[&str]) -> Arc<dyn ExchangeApi> {
        let (_, _, client) = in_process(Subject::integrator("composer"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        for s in stores {
            api.create_store(StoreId::new(*s), ProfileSpec::Instant)
                .await
                .unwrap();
        }
        api
    }

    fn two_edge_dxg() -> knactor_dxg::Dxg {
        knactor_dxg::Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\n  C: g/v/s/c\nDXG:\n  B:\n    x: A.v\n  C:\n    y: A.v\n",
        )
        .unwrap()
    }

    fn bindings() -> BTreeMap<String, CastBinding> {
        let mut b = BTreeMap::new();
        b.insert("A".to_string(), CastBinding::correlated("a/state"));
        b.insert("B".to_string(), CastBinding::correlated("b/state"));
        b.insert("C".to_string(), CastBinding::correlated("c/state"));
        b
    }

    #[tokio::test]
    async fn first_apply_spawns_every_edge() {
        let api = api_with_stores(&["a/state", "b/state", "c/state"]).await;
        let composer = Composer::new("t", api);
        let report = composer
            .apply(Composition::new().with_cast(two_edge_dxg(), bindings(), CastMode::Direct))
            .await
            .unwrap();
        assert_eq!(report.spawned, vec!["cast:B", "cast:C"]);
        assert!(report.reconfigured.is_empty());
        assert!(report.stopped.is_empty());
        assert_eq!(composer.edge_keys().await, vec!["cast:B", "cast:C"]);
        assert_eq!(composer.edge_health("cast:B").await, Some(Health::Running));
        composer.shutdown_all().await;
    }

    #[tokio::test]
    async fn reapplying_same_composition_touches_nothing() {
        let api = api_with_stores(&["a/state", "b/state", "c/state"]).await;
        let composer = Composer::new("t", api);
        let comp = Composition::new().with_cast(two_edge_dxg(), bindings(), CastMode::Direct);
        composer.apply(comp.clone()).await.unwrap();
        let b_instance = composer.edge_instance("cast:B").await;
        let report = composer.apply(comp).await.unwrap();
        assert_eq!(report.untouched, vec!["cast:B", "cast:C"]);
        assert_eq!(report.restarts(), 0);
        assert_eq!(composer.edge_instance("cast:B").await, b_instance);
        composer.shutdown_all().await;
    }

    #[tokio::test]
    async fn invalid_composition_is_rejected_before_touching_edges() {
        let api = api_with_stores(&["a/state", "b/state", "c/state"]).await;
        let composer = Composer::new("t", api);
        composer
            .apply(Composition::new().with_cast(two_edge_dxg(), bindings(), CastMode::Direct))
            .await
            .unwrap();
        let instance = composer.edge_instance("cast:B").await;
        // Unbound alias D → prevalidation fails, nothing changes.
        let bad = knactor_dxg::Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\n  D: g/v/s/d\nDXG:\n  B:\n    x: D.v\n",
        )
        .unwrap();
        let err = composer
            .apply(Composition::new().with_cast(bad, bindings(), CastMode::Direct))
            .await;
        assert!(err.is_err());
        assert_eq!(composer.edge_instance("cast:B").await, instance);
        assert_eq!(composer.edge_health("cast:B").await, Some(Health::Running));
        assert_eq!(composer.counters().get("composer.apply.rolled_back"), 1);
        composer.shutdown_all().await;
    }

    #[tokio::test]
    async fn pushdown_retarget_to_missing_store_fails_typed_and_rolls_back() {
        // Regression: reconfiguring a pushdown edge toward a store the
        // exchange does not host used to "succeed" (validation is
        // offline and register_udf is exchange-global), leaving the
        // stale UDF serving the old target while the watch loop
        // dead-looped. It must surface a typed error and keep the old
        // composition applied.
        let api = api_with_stores(&["a/state", "b/state", "c/state"]).await;
        let composer = Composer::new("t", api);
        let pushdown = CastMode::Pushdown {
            udf_name: "t-udf".to_string(),
        };
        composer
            .apply(Composition::new().with_cast(two_edge_dxg(), bindings(), pushdown.clone()))
            .await
            .unwrap();
        let instance = composer.edge_instance("cast:B").await;

        // Same spec, but alias B now binds a store nobody created.
        let mut bad_bindings = bindings();
        bad_bindings.insert("B".to_string(), CastBinding::correlated("ghost/state"));
        let err = composer
            .apply(Composition::new().with_cast(two_edge_dxg(), bad_bindings, pushdown))
            .await
            .unwrap_err();
        assert!(
            matches!(
                &err,
                knactor_types::Error::PushdownUnavailable { udf, store }
                    if udf == "t-udf:B" && store == "ghost/state"
            ),
            "want typed PushdownUnavailable, got {err:?}"
        );

        // Old composition is still applied and the edge never restarted.
        assert_eq!(composer.edge_instance("cast:B").await, instance);
        assert_eq!(composer.edge_health("cast:B").await, Some(Health::Running));
        let applied = composer.applied().await.expect("prior apply sticks");
        assert_eq!(
            applied.cast.unwrap().bindings["B"],
            CastBinding::correlated("b/state")
        );
        composer.shutdown_all().await;
    }

    #[tokio::test]
    async fn mode_override_retunes_one_edge_only() {
        let api = api_with_stores(&["a/state", "b/state", "c/state"]).await;
        let composer = Composer::new("t", api);
        let comp = Composition::new().with_cast(two_edge_dxg(), bindings(), CastMode::Direct);
        composer.apply(comp.clone()).await.unwrap();
        let b_instance = composer.edge_instance("cast:B").await;
        let c_instance = composer.edge_instance("cast:C").await;
        let report = composer
            .apply(comp.with_cast_mode_override(
                "B",
                CastMode::Pushdown {
                    udf_name: "t-udf".to_string(),
                },
            ))
            .await
            .unwrap();
        assert_eq!(report.reconfigured, vec!["cast:B"]);
        assert_eq!(report.untouched, vec!["cast:C"]);
        assert_eq!(report.restarts(), 0);
        // Reconfigure keeps both tasks; only B's config changed.
        assert_eq!(composer.edge_instance("cast:B").await, b_instance);
        assert_eq!(composer.edge_instance("cast:C").await, c_instance);
        composer.shutdown_all().await;
    }

    #[test]
    fn cast_edge_actions_classify_all_four_ways() {
        let old = knactor_dxg::Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\n  C: g/v/s/c\nDXG:\n  B:\n    x: A.v\n  C:\n    y: A.v\n",
        )
        .unwrap();
        let new = knactor_dxg::Dxg::parse(
            "Input:\n  A: g/v/s/a\n  B: g/v/s/b\n  D: g/v/s/d\nDXG:\n  B:\n    x: A.v + 1\n  D:\n    z: A.v\n",
        )
        .unwrap();
        let actions = cast_edge_actions(&old, &new);
        assert_eq!(
            actions,
            vec![
                ("B".to_string(), EdgeAction::Reconfigure),
                ("C".to_string(), EdgeAction::Stop),
                ("D".to_string(), EdgeAction::Spawn),
            ]
        );
        let same = cast_edge_actions(&old, &old);
        assert!(same.iter().all(|(_, a)| *a == EdgeAction::Untouched));
    }
}
