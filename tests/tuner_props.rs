//! Property tests for the tuner's decision core: under randomized cost
//! trajectories the tuner must never oscillate (cooldown bounds switch
//! frequency), must only ever switch toward a strictly better (by the
//! hysteresis margin) choice, and must converge — stop switching — once
//! costs stabilize.
//!
//! Seeded like the chaos suite:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --test tuner_props
//! ```

use knactor::core::tuner::{DecisionState, EdgeObservation, TunerPolicy};
use knactor::dxg::{CandidateCost, EdgeCostReport, ExecChoice};
use knactor::net::FaultRng;
use std::time::Duration;

fn chaos_seed(default: u64) -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    println!("chaos seed: {seed} (rerun with CHAOS_SEED={seed})");
    seed
}

fn observation(
    edge: &str,
    current: ExecChoice,
    direct: f64,
    pushdown: f64,
    activations: u64,
) -> EdgeObservation {
    let candidate = |choice: ExecChoice, cost: f64| CandidateCost {
        choice,
        per_activation: cost,
        measured: choice == current,
        eligible: true,
        note: String::new(),
    };
    EdgeObservation {
        alias: edge.to_string(),
        report: EdgeCostReport {
            edge: edge.to_string(),
            current,
            candidates: vec![
                candidate(ExecChoice::Direct, direct),
                candidate(ExecChoice::Pushdown, pushdown),
            ],
            suggested_coalesce: 1,
        },
        activations,
    }
}

/// Drive `decide` through `ticks` windows of noisy costs and return the
/// switch history as `(tick, to)` pairs, applying each decision so the
/// next window observes the switched-to choice (the closed loop the
/// live tuner runs).
fn run_trajectory(
    rng: &mut FaultRng,
    policy: &TunerPolicy,
    ticks: u64,
    tick_len: Duration,
    base_direct: f64,
    base_pushdown: f64,
    noise: f64,
) -> Vec<(u64, ExecChoice)> {
    let mut state = DecisionState::default();
    let mut current = ExecChoice::Direct;
    let mut history = Vec::new();
    for tick in 0..ticks {
        let jitter = |rng: &mut FaultRng, base: f64| base * (1.0 + noise * (rng.unit() - 0.5));
        let direct = jitter(rng, base_direct);
        let pushdown = jitter(rng, base_pushdown);
        let obs = observation("S", current, direct, pushdown, 100);
        let decisions = state.decide(tick_len * tick as u32, policy, &[obs]);
        assert!(decisions.len() <= 1, "one edge, at most one decision");
        if let Some(d) = decisions.first() {
            assert_eq!(d.from, current);
            assert_ne!(d.to, current, "a switch must change the choice");
            assert!(
                d.expected_gain > 0.0,
                "a switch must expect a strict improvement"
            );
            current = d.to;
            history.push((tick, d.to));
        }
    }
    history
}

/// Cooldown property: however the costs jitter, two switches of the same
/// edge are never closer than the cooldown.
#[test]
fn switches_respect_cooldown_under_noise() {
    let seed = chaos_seed(271828);
    let policy = TunerPolicy {
        hysteresis: 0.2,
        cooldown: Duration::from_secs(10),
        min_activations: 10,
    };
    let tick_len = Duration::from_secs(1);
    for stream in 0..20 {
        let mut rng = FaultRng::fork(seed, stream);
        // Near-equal bases with heavy noise: the adversarial case for
        // oscillation.
        let history = run_trajectory(&mut rng, &policy, 200, tick_len, 300e-6, 280e-6, 1.2);
        for pair in history.windows(2) {
            let gap = (pair[1].0 - pair[0].0) * tick_len.as_secs();
            assert!(
                gap >= policy.cooldown.as_secs(),
                "stream {stream}: switches at ticks {} and {} violate the \
                 {}s cooldown (history {history:?})",
                pair[0].0,
                pair[1].0,
                policy.cooldown.as_secs()
            );
        }
    }
}

/// Convergence property: with a genuine, stable gap between the choices,
/// the tuner switches to the cheaper one exactly once and then stays.
#[test]
fn stable_costs_converge_without_oscillation() {
    let seed = chaos_seed(3141592);
    let policy = TunerPolicy::default();
    for stream in 0..20 {
        let mut rng = FaultRng::fork(seed, stream);
        // Pushdown is 5× cheaper; mild noise can't mask that.
        let history = run_trajectory(
            &mut rng,
            &policy,
            100,
            Duration::from_secs(1),
            550e-6,
            110e-6,
            0.2,
        );
        assert_eq!(
            history.len(),
            1,
            "stream {stream}: a stable 5× gap must cause exactly one \
             switch, got {history:?}"
        );
        assert_eq!(history[0].1, ExecChoice::Pushdown);
    }
}

/// Hysteresis property: costs inside the margin band never trigger any
/// switch at all, no matter how long the run.
#[test]
fn near_ties_never_switch() {
    let seed = chaos_seed(16180339);
    let policy = TunerPolicy {
        hysteresis: 0.25,
        cooldown: Duration::from_secs(5),
        min_activations: 10,
    };
    for stream in 0..20 {
        let mut rng = FaultRng::fork(seed, stream);
        // 10% apart with tiny noise: always inside the 25% band.
        let history = run_trajectory(
            &mut rng,
            &policy,
            200,
            Duration::from_secs(1),
            300e-6,
            270e-6,
            0.05,
        );
        assert!(
            history.is_empty(),
            "stream {stream}: near-tie must never switch, got {history:?}"
        );
    }
}

/// The decision core is deterministic: the same seed yields the same
/// switch history (this is what makes CHAOS_SEED reproduction work).
#[test]
fn trajectories_are_seed_deterministic() {
    let seed = chaos_seed(8675309);
    let policy = TunerPolicy::default();
    let run = |seed| {
        let mut rng = FaultRng::fork(seed, 7);
        run_trajectory(
            &mut rng,
            &policy,
            150,
            Duration::from_secs(1),
            400e-6,
            200e-6,
            0.8,
        )
    };
    assert_eq!(run(seed), run(seed));
}
