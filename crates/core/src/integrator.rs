//! One lifecycle for every integrator kind.
//!
//! The paper treats Cast (object exchange) and Sync (log exchange) as two
//! instances of the same idea — a *composition task* running inside the
//! data exchange. This module makes that literal: [`Integrator`] is the
//! common lifecycle both controllers implement, and the unit
//! [`crate::composer::Composer`] manages. The contract:
//!
//! * **reconfigure** swaps the configuration in place. The running task
//!   is never restarted; resume state (a Sync's tail position, a Cast's
//!   live watches) survives unless the new config changes the source.
//! * **drain** is a barrier: every event already delivered to the
//!   integrator is processed before it returns. It does not stop the
//!   integrator. Drain-then-shutdown is the lossless stop sequence.
//! * **shutdown** consumes the integrator and waits for its task to end.
//! * **health**/**stats** are cheap, non-blocking observations.

use crate::cast::{CastConfig, CastController};
use crate::continuous::{ContinuousConfig, ContinuousController};
use crate::sync::{SyncConfig, SyncController};
use knactor_net::BoxFuture;
use knactor_types::{Error, Result};

/// Configuration for any integrator kind — what [`Integrator::reconfigure`]
/// accepts and what the composer stores per edge.
#[derive(Debug, Clone)]
pub enum IntegratorConfig {
    Cast(CastConfig),
    Sync(SyncConfig),
    Continuous(ContinuousConfig),
}

impl IntegratorConfig {
    /// The integrator kind this config is for (`"cast"` / `"sync"` /
    /// `"cq"`).
    pub fn kind(&self) -> &'static str {
        match self {
            IntegratorConfig::Cast(_) => "cast",
            IntegratorConfig::Sync(_) => "sync",
            IntegratorConfig::Continuous(_) => "cq",
        }
    }

    /// The instance name inside the config.
    pub fn name(&self) -> &str {
        match self {
            IntegratorConfig::Cast(c) => &c.name,
            IntegratorConfig::Sync(c) => &c.name,
            IntegratorConfig::Continuous(c) => &c.name,
        }
    }

    /// Validate without spawning (plan builds, aliases bound, query
    /// compiles). The composer prevalidates every edge of a new
    /// composition before touching any running one.
    pub fn validate(&self) -> Result<()> {
        match self {
            IntegratorConfig::Cast(c) => c.validate().map(|_| ()),
            IntegratorConfig::Sync(c) => c.validate(),
            IntegratorConfig::Continuous(c) => c.validate(),
        }
    }
}

/// Liveness of a running integrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Task alive and accepting commands.
    Running,
    /// Task finished or command channel closed.
    Stopped,
}

/// Cheap observation of a running integrator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegratorStats {
    /// `"cast"` or `"sync"`.
    pub kind: &'static str,
    /// Activations (Cast), records processed (Sync), or records
    /// windowed (Continuous).
    pub processed: u64,
    /// Highest source sequence processed — Sync only. Surviving a
    /// reconfigure (same source) is the no-re-delivery guarantee the
    /// composer's minimal-restart test asserts.
    pub tail_position: Option<u64>,
}

/// The common lifecycle of a running integrator (see module docs).
pub trait Integrator: Send {
    fn kind(&self) -> &'static str;

    /// Swap configuration in place; `Err` keeps the old config running.
    /// Fails with a kind mismatch if handed the other variant.
    fn reconfigure(&self, config: IntegratorConfig) -> BoxFuture<'_, Result<()>>;

    /// Process everything already queued, then return (barrier).
    fn drain(&self) -> BoxFuture<'_, Result<()>>;

    /// Stop and wait for the task to finish.
    fn shutdown(self: Box<Self>) -> BoxFuture<'static, ()>;

    fn health(&self) -> Health;

    fn stats(&self) -> IntegratorStats;
}

impl Integrator for CastController {
    fn kind(&self) -> &'static str {
        "cast"
    }

    fn reconfigure(&self, config: IntegratorConfig) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match config {
                IntegratorConfig::Cast(c) => CastController::reconfigure(self, c).await,
                other => Err(Error::Internal(format!(
                    "cast integrator handed a {} config",
                    other.kind()
                ))),
            }
        })
    }

    fn drain(&self) -> BoxFuture<'_, Result<()>> {
        Box::pin(CastController::drain(self))
    }

    fn shutdown(self: Box<Self>) -> BoxFuture<'static, ()> {
        Box::pin(CastController::shutdown(*self))
    }

    fn health(&self) -> Health {
        if self.is_running() {
            Health::Running
        } else {
            Health::Stopped
        }
    }

    fn stats(&self) -> IntegratorStats {
        IntegratorStats {
            kind: "cast",
            processed: self.activations(),
            tail_position: None,
        }
    }
}

impl Integrator for SyncController {
    fn kind(&self) -> &'static str {
        "sync"
    }

    fn reconfigure(&self, config: IntegratorConfig) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match config {
                IntegratorConfig::Sync(c) => SyncController::reconfigure(self, c).await,
                other => Err(Error::Internal(format!(
                    "sync integrator handed a {} config",
                    other.kind()
                ))),
            }
        })
    }

    fn drain(&self) -> BoxFuture<'_, Result<()>> {
        Box::pin(SyncController::drain(self))
    }

    fn shutdown(self: Box<Self>) -> BoxFuture<'static, ()> {
        Box::pin(SyncController::shutdown(*self))
    }

    fn health(&self) -> Health {
        if self.is_running() {
            Health::Running
        } else {
            Health::Stopped
        }
    }

    fn stats(&self) -> IntegratorStats {
        IntegratorStats {
            kind: "sync",
            processed: self.processed(),
            tail_position: Some(self.tail_position()),
        }
    }
}

impl Integrator for ContinuousController {
    fn kind(&self) -> &'static str {
        "cq"
    }

    fn reconfigure(&self, config: IntegratorConfig) -> BoxFuture<'_, Result<()>> {
        Box::pin(async move {
            match config {
                IntegratorConfig::Continuous(c) => ContinuousController::reconfigure(self, c).await,
                other => Err(Error::Internal(format!(
                    "continuous integrator handed a {} config",
                    other.kind()
                ))),
            }
        })
    }

    fn drain(&self) -> BoxFuture<'_, Result<()>> {
        Box::pin(ContinuousController::drain(self))
    }

    fn shutdown(self: Box<Self>) -> BoxFuture<'static, ()> {
        Box::pin(ContinuousController::shutdown(*self))
    }

    fn health(&self) -> Health {
        if self.is_running() {
            Health::Running
        } else {
            Health::Stopped
        }
    }

    fn stats(&self) -> IntegratorStats {
        IntegratorStats {
            kind: "cq",
            processed: self.processed(),
            tail_position: Some(self.tail_position()),
        }
    }
}
