//! Data-store schemas and `+kr:` annotations.
//!
//! A schema describes the shape of the state a knactor externalizes
//! (Fig. 5 of the paper). The *Externalize* step of the development
//! workflow registers the schema with the data exchange; the *Express*
//! step annotates fields the store can ingest from outside — in the paper,
//! `# +kr: external` marks `shippingCost`, `paymentID`, and `trackingID`
//! as fields an integrator fills in.
//!
//! Schemas are deliberately structural, not nominal: integrators are
//! written by people who are *not* the service developers, so everything
//! they need must be in the registered schema.

use crate::error::{Error, Result};
use crate::value::{self, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Fully-qualified schema name: `group/version/service/kind`,
/// e.g. `OnlineRetail/v1/Checkout/Order`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SchemaName(pub String);

impl SchemaName {
    pub fn new(s: impl Into<String>) -> Self {
        SchemaName(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Split into (group, version, service, kind) when fully qualified.
    pub fn parts(&self) -> Option<(&str, &str, &str, &str)> {
        let mut it = self.0.split('/');
        match (it.next(), it.next(), it.next(), it.next(), it.next()) {
            (Some(g), Some(v), Some(s), Some(k), None) => Some((g, v, s, k)),
            _ => None,
        }
    }

    /// The version component, when fully qualified (`v1`, `v2`, ...).
    ///
    /// Schema evolution (task T3 in the paper's Table 1) bumps this.
    pub fn version(&self) -> Option<&str> {
        self.parts().map(|(_, v, _, _)| v)
    }
}

impl fmt::Display for SchemaName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SchemaName {
    fn from(s: &str) -> Self {
        SchemaName(s.to_string())
    }
}

/// A `+kr:` field annotation.
///
/// Annotations are how a knactor *expresses* which of its fields
/// participate in composition without naming any peer service.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Annotation {
    /// Filled in externally by an integrator (`# +kr: external`).
    External,
    /// May be ingested from outside at run-time (sensor feeds etc.).
    Ingest,
    /// Never exposed to integrators; field-level RBAC denies by default.
    Secret,
    /// Immutable after first write.
    Immutable,
    /// Free-form annotation we do not interpret but preserve.
    Other(String),
}

impl Annotation {
    /// Parse the text after `+kr:` in a schema comment.
    pub fn parse(s: &str) -> Annotation {
        match s.trim() {
            "external" => Annotation::External,
            "ingest" => Annotation::Ingest,
            "secret" => Annotation::Secret,
            "immutable" => Annotation::Immutable,
            other => Annotation::Other(other.to_string()),
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::External => f.write_str("external"),
            Annotation::Ingest => f.write_str("ingest"),
            Annotation::Secret => f.write_str("secret"),
            Annotation::Immutable => f.write_str("immutable"),
            Annotation::Other(s) => f.write_str(s),
        }
    }
}

/// Declared type of a schema field.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FieldType {
    String,
    Number,
    Bool,
    /// Opaque structured object (the paper's `items: object`).
    Object,
    /// Array of any element type.
    Array,
    /// Any value; used when a field's shape is intentionally open.
    Any,
}

impl FieldType {
    /// Parse the textual type used in schema files.
    pub fn parse(s: &str) -> Result<FieldType> {
        match s.trim() {
            "string" => Ok(FieldType::String),
            "number" => Ok(FieldType::Number),
            "bool" | "boolean" => Ok(FieldType::Bool),
            "object" => Ok(FieldType::Object),
            "array" | "list" => Ok(FieldType::Array),
            "any" => Ok(FieldType::Any),
            other => Err(Error::SchemaViolation(format!(
                "unknown field type '{other}'"
            ))),
        }
    }

    /// Does `v` conform to this type? `Null` conforms to everything:
    /// absence-before-fill is the normal state of `external` fields.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (FieldType::Any, _)
                | (FieldType::String, Value::String(_))
                | (FieldType::Number, Value::Number(_))
                | (FieldType::Bool, Value::Bool(_))
                | (FieldType::Object, Value::Object(_))
                | (FieldType::Array, Value::Array(_))
        )
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::String => "string",
            FieldType::Number => "number",
            FieldType::Bool => "bool",
            FieldType::Object => "object",
            FieldType::Array => "array",
            FieldType::Any => "any",
        };
        f.write_str(s)
    }
}

/// One declared field of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    pub name: String,
    pub ty: FieldType,
    /// `+kr:` annotations attached to the field.
    #[serde(default)]
    pub annotations: Vec<Annotation>,
    /// Whether the field must be present (non-null) for an object to be
    /// accepted. `external` fields are never required at ingest time.
    #[serde(default)]
    pub required: bool,
}

impl FieldSpec {
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldSpec {
            name: name.into(),
            ty,
            annotations: Vec::new(),
            required: false,
        }
    }

    pub fn external(mut self) -> Self {
        self.annotations.push(Annotation::External);
        self
    }

    pub fn required(mut self) -> Self {
        self.required = true;
        self
    }

    pub fn annotated(mut self, a: Annotation) -> Self {
        self.annotations.push(a);
        self
    }

    pub fn is_external(&self) -> bool {
        self.annotations.contains(&Annotation::External)
    }

    pub fn is_secret(&self) -> bool {
        self.annotations.contains(&Annotation::Secret)
    }

    pub fn is_immutable(&self) -> bool {
        self.annotations.contains(&Annotation::Immutable)
    }
}

/// A registered data-store schema: an ordered set of named, typed,
/// annotated fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    pub name: SchemaName,
    pub fields: Vec<FieldSpec>,
}

impl Schema {
    pub fn new(name: impl Into<SchemaName>) -> Self {
        Schema {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    pub fn field(mut self, spec: FieldSpec) -> Self {
        self.fields.push(spec);
        self
    }

    pub fn get(&self, field: &str) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.name == field)
    }

    /// Fields annotated `external` — the store's declared ingest surface
    /// for integrators.
    pub fn external_fields(&self) -> impl Iterator<Item = &FieldSpec> {
        self.fields.iter().filter(|f| f.is_external())
    }

    /// Validate a state object against this schema.
    ///
    /// * every required non-external field must be present and non-null
    /// * every present field must be declared and type-conformant
    pub fn validate(&self, v: &Value) -> Result<()> {
        let obj = v.as_object().ok_or_else(|| {
            Error::SchemaViolation(format!(
                "{}: expected object, got {}",
                self.name,
                value::type_name(v)
            ))
        })?;
        for f in &self.fields {
            match obj.get(&f.name) {
                Some(val) => {
                    if !f.ty.admits(val) {
                        return Err(Error::SchemaViolation(format!(
                            "{}: field '{}' expects {}, got {}",
                            self.name,
                            f.name,
                            f.ty,
                            value::type_name(val)
                        )));
                    }
                }
                None => {
                    if f.required && !f.is_external() {
                        return Err(Error::SchemaViolation(format!(
                            "{}: missing required field '{}'",
                            self.name, f.name
                        )));
                    }
                }
            }
        }
        for key in obj.keys() {
            if self.get(key).is_none() {
                return Err(Error::SchemaViolation(format!(
                    "{}: undeclared field '{}'",
                    self.name, key
                )));
            }
        }
        Ok(())
    }

    /// Validate an *update* against immutability annotations: an
    /// `immutable` field, once non-null, may not change.
    pub fn validate_update(&self, old: &Value, new: &Value) -> Result<()> {
        self.validate(new)?;
        for f in self.fields.iter().filter(|f| f.is_immutable()) {
            let before = old.get(&f.name);
            let after = new.get(&f.name);
            if let Some(b) = before {
                if !b.is_null() && after != before {
                    return Err(Error::SchemaViolation(format!(
                        "{}: field '{}' is immutable",
                        self.name, f.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// An in-memory registry of schemas, keyed by [`SchemaName`].
///
/// The data exchange holds one of these; `knactorctl schema register`
/// populates it, and the DXG analyzer resolves field references against it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaRegistry {
    schemas: BTreeMap<SchemaName, Schema>,
}

impl SchemaRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a schema. Re-registering the same name replaces it only if
    /// the version component changed; silently mutating a published schema
    /// in place is exactly the kind of hidden coupling Knactor avoids.
    pub fn register(&mut self, schema: Schema) -> Result<()> {
        if let Some(existing) = self.schemas.get(&schema.name) {
            if existing != &schema {
                return Err(Error::AlreadyExists(format!(
                    "schema {} already registered with different contents; \
                     bump the version to evolve it",
                    schema.name
                )));
            }
            return Ok(());
        }
        self.schemas.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Replace a schema unconditionally (schema evolution tooling only).
    pub fn force_register(&mut self, schema: Schema) {
        self.schemas.insert(schema.name.clone(), schema);
    }

    pub fn get(&self, name: &SchemaName) -> Option<&Schema> {
        self.schemas.get(name)
    }

    pub fn resolve(&self, name: &SchemaName) -> Result<&Schema> {
        self.get(name)
            .ok_or_else(|| Error::UnknownSchema(name.to_string()))
    }

    pub fn names(&self) -> impl Iterator<Item = &SchemaName> {
        self.schemas.keys()
    }

    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn checkout_schema() -> Schema {
        // Fig. 5 of the paper.
        Schema::new("OnlineRetail/v1/Checkout/Order")
            .field(FieldSpec::new("items", FieldType::Object).required())
            .field(FieldSpec::new("address", FieldType::String).required())
            .field(FieldSpec::new("cost", FieldType::Number))
            .field(FieldSpec::new("shippingCost", FieldType::Number).external())
            .field(FieldSpec::new("totalCost", FieldType::Number))
            .field(FieldSpec::new("currency", FieldType::String))
            .field(FieldSpec::new("paymentID", FieldType::String).external())
            .field(FieldSpec::new("trackingID", FieldType::String).external())
    }

    #[test]
    fn schema_name_parts() {
        let n = SchemaName::new("OnlineRetail/v1/Checkout/Order");
        assert_eq!(n.parts(), Some(("OnlineRetail", "v1", "Checkout", "Order")));
        assert_eq!(n.version(), Some("v1"));
        assert_eq!(SchemaName::new("short").parts(), None);
    }

    #[test]
    fn valid_order_passes() {
        let s = checkout_schema();
        let order = json!({
            "items": {"mug": 2},
            "address": "Soda Hall",
            "cost": 30.0,
            "totalCost": 30.0,
            "currency": "USD"
        });
        s.validate(&order).unwrap();
    }

    #[test]
    fn external_fields_not_required_at_ingest() {
        let s = checkout_schema();
        let ext: Vec<_> = s.external_fields().map(|f| f.name.clone()).collect();
        assert_eq!(ext, vec!["shippingCost", "paymentID", "trackingID"]);
        // Order without any external fields still validates.
        s.validate(&json!({"items": {}, "address": "x"})).unwrap();
    }

    #[test]
    fn missing_required_field_rejected() {
        let s = checkout_schema();
        let err = s.validate(&json!({"items": {}})).unwrap_err();
        assert!(matches!(err, Error::SchemaViolation(ref m) if m.contains("address")));
    }

    #[test]
    fn wrong_type_rejected() {
        let s = checkout_schema();
        let err = s
            .validate(&json!({"items": {}, "address": "x", "cost": "thirty"}))
            .unwrap_err();
        assert!(matches!(err, Error::SchemaViolation(ref m) if m.contains("cost")));
    }

    #[test]
    fn undeclared_field_rejected() {
        let s = checkout_schema();
        let err = s
            .validate(&json!({"items": {}, "address": "x", "extra": 1}))
            .unwrap_err();
        assert!(matches!(err, Error::SchemaViolation(ref m) if m.contains("extra")));
    }

    #[test]
    fn null_conforms_to_any_declared_type() {
        let s = checkout_schema();
        s.validate(&json!({"items": {}, "address": "x", "shippingCost": null}))
            .unwrap();
    }

    #[test]
    fn immutable_field_cannot_change_once_set() {
        let s = Schema::new("T/v1/S/K")
            .field(FieldSpec::new("id", FieldType::String).annotated(Annotation::Immutable))
            .field(FieldSpec::new("note", FieldType::String));
        let old = json!({"id": "a", "note": "x"});
        s.validate_update(&old, &json!({"id": "a", "note": "y"}))
            .unwrap();
        assert!(s
            .validate_update(&old, &json!({"id": "b", "note": "y"}))
            .is_err());
        // Setting an immutable field for the first time is fine.
        let unset = json!({"note": "x"});
        s.validate_update(&unset, &json!({"id": "fresh", "note": "x"}))
            .unwrap();
    }

    #[test]
    fn registry_rejects_silent_mutation() {
        let mut reg = SchemaRegistry::new();
        reg.register(checkout_schema()).unwrap();
        // Idempotent re-register of identical schema is fine.
        reg.register(checkout_schema()).unwrap();
        // Mutating in place is not.
        let mut changed = checkout_schema();
        changed.fields.pop();
        assert!(reg.register(changed.clone()).is_err());
        // But force_register (explicit evolution tooling) works.
        reg.force_register(changed);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_resolve_unknown_fails() {
        let reg = SchemaRegistry::new();
        assert!(matches!(
            reg.resolve(&SchemaName::new("nope")),
            Err(Error::UnknownSchema(_))
        ));
    }

    #[test]
    fn annotation_parse_roundtrip() {
        for a in ["external", "ingest", "secret", "immutable", "custom-tag"] {
            let ann = Annotation::parse(a);
            assert_eq!(ann.to_string(), a);
        }
    }

    #[test]
    fn field_type_parse() {
        assert_eq!(FieldType::parse("string").unwrap(), FieldType::String);
        assert_eq!(FieldType::parse("boolean").unwrap(), FieldType::Bool);
        assert_eq!(FieldType::parse("list").unwrap(), FieldType::Array);
        assert!(FieldType::parse("quux").is_err());
    }
}
