//! # knactor-loadgen
//!
//! The load harness for the paper's scale question: a data-centric
//! exchange that composes *millions of users'* worth of service state
//! has to keep serving — and degrade in a *typed*, recoverable way —
//! when offered load passes capacity. This crate provides the three
//! pieces the SLO and backpressure suites are built from:
//!
//! * [`zipf`] — seeded Zipf key selection (YCSB-style skew), so hot-key
//!   effects show up the way they do in production traffic.
//! * [`workload`] — deterministic app-shaped operation generators for
//!   the retail and smart-home case studies. Same spec + seed ⇒ same
//!   operation sequence, always (property-tested).
//! * [`driver`] — an **open-loop** runner: ops are issued on a schedule
//!   derived from the target rate, never gated on earlier completions,
//!   and latency is measured from scheduled start to completion —
//!   the coordinated-omission-free methodology. Watch-subscriber churn
//!   (connect, subscribe, consume, depart) runs alongside.
//! * [`report`] — p50/p95/p99 and shed/error rates read back from the
//!   process-global metrics registry, the same series operators scrape.
//!
//! The `load` binary sweeps arrival rates against a real TCP exchange
//! with both apps deployed and emits `BENCH_load.json` + `metrics.prom`.

pub mod driver;
pub mod report;
pub mod workload;
pub mod zipf;

pub use driver::{run, RunConfig, RunOutcome};
pub use workload::{AppKind, LoadOp, OpGen, WorkloadSpec};
pub use zipf::Zipf;
