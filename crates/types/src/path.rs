//! Dotted field paths into state values.
//!
//! DXG specifications reference state as `C.order.totalCost` (Fig. 6); once
//! the leading service alias is resolved, the remainder is a [`FieldPath`]
//! into that service's externalized state. Paths support object fields and
//! array indices: `order.items[0].name`.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of a [`FieldPath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Object member access (`.name`).
    Field(String),
    /// Array element access (`[3]`).
    Index(usize),
}

/// A parsed path into a structured value, e.g. `order.items[0].name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FieldPath {
    pub segments: Vec<Segment>,
}

impl FieldPath {
    /// The empty path, addressing the whole value.
    pub fn root() -> Self {
        FieldPath {
            segments: Vec::new(),
        }
    }

    /// Parse a dotted path. Field names are non-empty runs of characters
    /// other than `.` and `[`; indices are decimal integers in brackets.
    ///
    /// ```
    /// use knactor_types::FieldPath;
    /// let p = FieldPath::parse("items[2].name").unwrap();
    /// assert_eq!(p.to_string(), "items[2].name");
    /// ```
    pub fn parse(s: &str) -> Result<Self> {
        if s.is_empty() {
            return Ok(FieldPath::root());
        }
        let mut segments = Vec::new();
        let mut chars = s.chars().peekable();
        let mut expect_field = true;
        while let Some(&c) = chars.peek() {
            if c == '.' {
                if expect_field {
                    return Err(Error::BadPath(format!("empty segment in '{s}'")));
                }
                chars.next();
                expect_field = true;
                if chars.peek().is_none() {
                    return Err(Error::BadPath(format!("trailing dot in '{s}'")));
                }
            } else if c == '[' {
                chars.next();
                let mut digits = String::new();
                while let Some(&d) = chars.peek() {
                    if d == ']' {
                        break;
                    }
                    digits.push(d);
                    chars.next();
                }
                if chars.next() != Some(']') {
                    return Err(Error::BadPath(format!("unterminated index in '{s}'")));
                }
                let idx: usize = digits
                    .parse()
                    .map_err(|_| Error::BadPath(format!("bad index '{digits}' in '{s}'")))?;
                segments.push(Segment::Index(idx));
                expect_field = false;
            } else {
                if !expect_field && !segments.is_empty() {
                    return Err(Error::BadPath(format!(
                        "expected '.' or '[' before '{c}' in '{s}'"
                    )));
                }
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d == '.' || d == '[' {
                        break;
                    }
                    name.push(d);
                    chars.next();
                }
                if name.is_empty() {
                    return Err(Error::BadPath(format!("empty segment in '{s}'")));
                }
                segments.push(Segment::Field(name));
                expect_field = false;
            }
        }
        if expect_field && !segments.is_empty() {
            return Err(Error::BadPath(format!("dangling separator in '{s}'")));
        }
        Ok(FieldPath { segments })
    }

    /// Append a field segment, returning the extended path.
    pub fn child(&self, name: impl Into<String>) -> Self {
        let mut p = self.clone();
        p.segments.push(Segment::Field(name.into()));
        p
    }

    /// Append an index segment, returning the extended path.
    pub fn index(&self, idx: usize) -> Self {
        let mut p = self.clone();
        p.segments.push(Segment::Index(idx));
        p
    }

    /// The first segment's field name, if the path starts with a field.
    pub fn head_field(&self) -> Option<&str> {
        match self.segments.first() {
            Some(Segment::Field(f)) => Some(f),
            _ => None,
        }
    }

    /// Path with the first segment removed.
    pub fn tail(&self) -> FieldPath {
        FieldPath {
            segments: self.segments.iter().skip(1).cloned().collect(),
        }
    }

    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// Whether `self` is `other` or an ancestor of `other`.
    ///
    /// Used by field-level RBAC: a rule granting `order` covers
    /// `order.totalCost`.
    pub fn is_prefix_of(&self, other: &FieldPath) -> bool {
        self.segments.len() <= other.segments.len()
            && self
                .segments
                .iter()
                .zip(other.segments.iter())
                .all(|(a, b)| a == b)
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                Segment::Field(name) => {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    f.write_str(name)?;
                }
                Segment::Index(idx) => write!(f, "[{idx}]")?,
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for FieldPath {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        FieldPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_fields() {
        let p = FieldPath::parse("order.totalCost").unwrap();
        assert_eq!(
            p.segments,
            vec![
                Segment::Field("order".into()),
                Segment::Field("totalCost".into())
            ]
        );
    }

    #[test]
    fn parses_indices() {
        let p = FieldPath::parse("items[2].name").unwrap();
        assert_eq!(
            p.segments,
            vec![
                Segment::Field("items".into()),
                Segment::Index(2),
                Segment::Field("name".into())
            ]
        );
    }

    #[test]
    fn index_can_follow_index() {
        let p = FieldPath::parse("grid[1][2]").unwrap();
        assert_eq!(p.segments.len(), 3);
    }

    #[test]
    fn empty_string_is_root() {
        assert!(FieldPath::parse("").unwrap().is_root());
    }

    #[test]
    fn rejects_trailing_dot() {
        assert!(FieldPath::parse("a.").is_err());
        assert!(FieldPath::parse("a..b").is_err());
    }

    #[test]
    fn rejects_unterminated_or_bad_index() {
        assert!(FieldPath::parse("a[2").is_err());
        assert!(FieldPath::parse("a[x]").is_err());
        assert!(FieldPath::parse("a[]").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for s in ["a", "a.b.c", "a[0]", "a[0].b[12].c", "grid[1][2]"] {
            let p = FieldPath::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
            assert_eq!(FieldPath::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn prefix_relation() {
        let a = FieldPath::parse("order").unwrap();
        let b = FieldPath::parse("order.totalCost").unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        let c = FieldPath::parse("shipping").unwrap();
        assert!(!a.is_prefix_of(&c));
        assert!(FieldPath::root().is_prefix_of(&c));
    }

    #[test]
    fn head_and_tail() {
        let p = FieldPath::parse("a.b[1]").unwrap();
        assert_eq!(p.head_field(), Some("a"));
        assert_eq!(p.tail().to_string(), "b[1]");
        assert_eq!(FieldPath::parse("x").unwrap().tail(), FieldPath::root());
    }
}
