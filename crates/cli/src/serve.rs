//! `knactorctl serve` — run exchange shard nodes.
//!
//! ```text
//! knactorctl serve                     one node on 127.0.0.1:7070
//! knactorctl serve --shards 4          a 4-shard exchange on ports 7070..7073
//! knactorctl serve --shards 4 --port 9000
//! ```
//!
//! Each shard node is a full [`ExchangeServer`] — its own object store,
//! log store, and WAL directory. The printed topology JSON is the
//! versioned [`ShardMap`] paired with each node's address; hand it to
//! `ShardRouter::connect_tcp` (or `connect_resilient`) and every
//! `ExchangeApi` integration routes across the nodes unchanged.
//!
//! Nodes serve until the process is killed (Ctrl-C).

use knactor_logstore::LogExchange;
use knactor_net::server::ExchangeServer;
use knactor_store::{DataExchange, ShardMap};
use serde_json::json;
use std::process::ExitCode;
use std::sync::Arc;

pub fn run(shards: usize, port: u16) -> ExitCode {
    if shards == 0 {
        eprintln!("--shards must be at least 1");
        return ExitCode::FAILURE;
    }
    let rt = match tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
    {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("cannot start runtime: {e}");
            return ExitCode::FAILURE;
        }
    };
    rt.block_on(async move {
        let map = ShardMap::uniform(shards);
        let mut servers = Vec::with_capacity(shards);
        let mut nodes = Vec::with_capacity(shards);
        for (i, node) in map.nodes().iter().enumerate() {
            let bind = format!("127.0.0.1:{}", port + i as u16);
            let server = match ExchangeServer::bind(
                bind.as_str(),
                Arc::new(DataExchange::new()),
                Arc::new(LogExchange::new()),
            )
            .await
            {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot bind shard {node} on {bind}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.local_addr();
            eprintln!(
                "shard {node} serving on {addr} (WALs under {})",
                server.data_dir().display()
            );
            nodes.push(json!({"node": node, "addr": addr.to_string()}));
            servers.push(server);
        }
        // The client-side topology object: feed to ShardRouter.
        println!(
            "{}",
            json!({
                "version": map.version(),
                "vnodes": map.vnodes(),
                "nodes": nodes,
            })
        );
        eprintln!("{shards}-shard exchange up; Ctrl-C to stop");
        std::future::pending::<ExitCode>().await
    })
}
