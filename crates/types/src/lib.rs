//! # knactor-types
//!
//! Foundational types shared by every crate in the Knactor workspace:
//!
//! * [`value`] — the dynamic state model (JSON-compatible values) plus
//!   path-based access helpers used by data stores and the DXG evaluator.
//! * [`path`] — [`FieldPath`], a parsed dotted path (`order.items[0].name`)
//!   into a state value.
//! * [`schema`] — data-store schemas with `+kr:` field annotations
//!   (Fig. 5 of the paper) and a [`schema::SchemaRegistry`].
//! * [`id`] — strongly-typed identifiers: knactors, stores, object keys,
//!   and monotonically increasing store [`id::Revision`]s.
//! * [`metrics`] — the process-wide metrics registry (counters, gauges,
//!   latency histograms) every layer instruments into; re-exported by
//!   `knactor-core` as `core::metrics`.
//! * [`error`] — the shared [`error::Error`] type.
//!
//! The paper externalizes each service's state into a data store hosted on
//! a data exchange; these types define what a "state" *is* (a structured
//! value conforming to a registered schema) independent of which exchange
//! hosts it.

pub mod error;
pub mod id;
pub mod metrics;
pub mod path;
pub mod schema;
pub mod value;

pub use error::{Error, Result};
pub use id::{KnactorId, ObjectKey, Revision, StoreId};
pub use path::FieldPath;
pub use schema::{Annotation, FieldSpec, FieldType, Schema, SchemaName, SchemaRegistry};
pub use value::Value;
