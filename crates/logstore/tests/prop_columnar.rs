//! Columnar encode → materialize round-trip properties.
//!
//! The columnar layout is only allowed to change *representation*, never
//! content: re-encoding a sealed segment's rows into per-field columns
//! (dictionary + RLE or plain) and materializing them back must be
//! bit-identical — including the `1` vs `1.0` number distinction, absent
//! vs `null` fields, and arbitrarily nested payloads. These tests drive
//! the encoder with a seeded generator (same SplitMix64 idiom as
//! `crates/expr/tests/prop_expr.rs`) so failures reproduce by case
//! number.

use knactor_logstore::columnar::{approx_value_bytes, ColumnarSegment};
use serde_json::{json, Value};

/// SplitMix64 — tiny, seedable, good-enough mixing for case generation.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// An arbitrary JSON value: scalars are common; arrays/objects recurse
/// with shrinking depth. Ints and floats are generated separately so the
/// dictionary's `1` ≠ `1.0` identity rule is exercised.
fn gen_value(rng: &mut SplitMix, depth: u32) -> Value {
    let top = if depth == 0 { 6 } else { 8 };
    match rng.below(top) {
        0 => Value::Null,
        1 => json!(rng.below(2) == 0),
        2 => json!(rng.next() as i64 % 1000),
        3 => json!((rng.below(2000) as f64 - 1000.0) / 8.0),
        4 => json!(format!("s{}", rng.below(12))),
        5 => json!(""),
        6 => Value::Array(
            (0..rng.below(4))
                .map(|_| gen_value(rng, depth - 1))
                .collect(),
        ),
        _ => {
            let mut map = serde_json::Map::new();
            for _ in 0..rng.below(4) {
                map.insert(format!("k{}", rng.below(6)), gen_value(rng, depth - 1));
            }
            Value::Object(map)
        }
    }
}

/// One record payload: an object with a random subset of a small field
/// pool (so columns see absent slots) plus occasional one-off fields
/// (so columns see high cardinality and sparse coverage).
fn gen_row(rng: &mut SplitMix, case: u64) -> Value {
    let mut map = serde_json::Map::new();
    for field in ["kind", "room", "n", "payload"] {
        if rng.below(4) > 0 {
            map.insert(field.to_string(), gen_value(rng, 2));
        }
    }
    if rng.below(8) == 0 {
        map.insert(format!("rare{}", case % 97), gen_value(rng, 1));
    }
    Value::Object(map)
}

#[test]
fn columnar_round_trips_arbitrary_rows() {
    let mut rng = SplitMix(0x636F_6C75_6D6E_6172);
    for case in 0..2000u64 {
        let rows: Vec<Value> = (0..rng.below(40))
            .map(|_| gen_row(&mut rng, case))
            .collect();
        let seg = ColumnarSegment::encode(&rows)
            .unwrap_or_else(|| panic!("case {case}: object rows must encode"));
        assert_eq!(seg.len(), rows.len(), "case {case}: length must survive");
        let back = seg.materialize_all();
        assert_eq!(back, rows, "case {case}: round-trip must be bit-identical");
    }
}

#[test]
fn selected_matches_full_materialization() {
    let mut rng = SplitMix(0x7365_6C65_6374_6564);
    for case in 0..500u64 {
        let rows: Vec<Value> = (0..1 + rng.below(60))
            .map(|_| gen_row(&mut rng, case))
            .collect();
        let seg = ColumnarSegment::encode(&rows).expect("object rows must encode");
        // A random sorted subset of row indices, possibly empty or full.
        let mut indices: Vec<u32> = (0..rows.len() as u32)
            .filter(|_| rng.below(3) > 0)
            .collect();
        indices.dedup();
        let got = seg.materialize_selected(&indices);
        let want: Vec<Value> = indices.iter().map(|&i| rows[i as usize].clone()).collect();
        assert_eq!(got, want, "case {case}: selected rows must match full rows");
    }
}

#[test]
fn int_and_float_never_merge_in_dictionary() {
    // `1` and `1.0` serialize differently and must stay distinct values
    // through the dictionary (the bug this guards against: canonicalizing
    // numbers during encode and handing floats back for ints).
    let rows: Vec<Value> = (0..32)
        .map(|i| {
            if i % 2 == 0 {
                json!({"v": 1})
            } else {
                json!({"v": 1.0})
            }
        })
        .collect();
    let seg = ColumnarSegment::encode(&rows).unwrap();
    let back = seg.materialize_all();
    assert_eq!(back, rows);
    for (i, v) in back.iter().enumerate() {
        let n = v["v"].as_i64();
        if i % 2 == 0 {
            assert_eq!(n, Some(1), "row {i} must stay an integer");
        } else {
            assert_eq!(n, None, "row {i} must stay a float");
        }
    }
}

#[test]
fn absent_and_null_stay_distinct() {
    let rows = vec![
        json!({"a": null, "b": 1}),
        json!({"b": 2}),
        json!({"a": null}),
        json!({}),
    ];
    let seg = ColumnarSegment::encode(&rows).unwrap();
    let back = seg.materialize_all();
    assert_eq!(back, rows);
    assert!(back[0].as_object().unwrap().contains_key("a"));
    assert!(!back[1].as_object().unwrap().contains_key("a"));
}

#[test]
fn repetitive_rows_compress_below_row_accounting() {
    // Dictionary + RLE must beat per-row accounting on telemetry-shaped
    // data (few distinct values, long runs) — the premise of compaction's
    // retained-bytes win.
    let rows: Vec<Value> = (0..512)
        .map(|i| json!({"kind": "energy", "room": "kitchen", "on": i > 0}))
        .collect();
    let seg = ColumnarSegment::encode(&rows).unwrap();
    let row_bytes: usize = rows.iter().map(approx_value_bytes).sum();
    assert!(
        seg.approx_bytes() * 2 < row_bytes,
        "columnar {} must be well under half of row {}",
        seg.approx_bytes(),
        row_bytes
    );
}

#[test]
fn non_object_rows_refuse_to_encode() {
    assert!(ColumnarSegment::encode(&[json!({"a": 1}), json!(7)]).is_none());
}
