//! RBAC model and evaluation.

use knactor_types::{FieldPath, StoreId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of component is asking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SubjectKind {
    /// The reconciler inside a knactor (accesses only its own stores).
    Reconciler,
    /// An integrator module (Cast, Sync, or custom).
    Integrator,
    /// A human or tooling identity (`knactorctl`).
    Operator,
}

/// An authenticated identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subject {
    pub kind: SubjectKind,
    pub name: String,
}

impl Subject {
    pub fn reconciler(name: impl Into<String>) -> Subject {
        Subject {
            kind: SubjectKind::Reconciler,
            name: name.into(),
        }
    }

    pub fn integrator(name: impl Into<String>) -> Subject {
        Subject {
            kind: SubjectKind::Integrator,
            name: name.into(),
        }
    }

    pub fn operator(name: impl Into<String>) -> Subject {
        Subject {
            kind: SubjectKind::Operator,
            name: name.into(),
        }
    }
}

impl std::fmt::Display for Subject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = match self.kind {
            SubjectKind::Reconciler => "reconciler",
            SubjectKind::Integrator => "integrator",
            SubjectKind::Operator => "operator",
        };
        write!(f, "{k}:{}", self.name)
    }
}

/// Operations on a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Verb {
    Get,
    List,
    Watch,
    Create,
    Update,
    Delete,
    /// Run a pushed-down UDF inside the store (§3.3 optimization).
    Execute,
}

/// A condition gating a rule. Evaluated against caller-supplied context so
/// policy evaluation stays pure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Condition {
    /// No condition.
    Always,
    /// Allowed only when `ctx.minute_of_day` lies inside `[start, end)`.
    /// Wrapping windows (start > end) span midnight.
    WithinMinutes { start: u16, end: u16 },
    /// Allowed only when `ctx.minute_of_day` lies *outside* `[start, end)`
    /// — e.g. "the House integrator may not touch the Lamp during sleep
    /// hours 22:00–07:00" is `OutsideMinutes { start: 1320, end: 420 }`.
    OutsideMinutes { start: u16, end: u16 },
}

impl Condition {
    pub fn holds(&self, ctx: &AccessContext) -> bool {
        match self {
            Condition::Always => true,
            Condition::WithinMinutes { start, end } => in_window(ctx.minute_of_day, *start, *end),
            Condition::OutsideMinutes { start, end } => !in_window(ctx.minute_of_day, *start, *end),
        }
    }
}

fn in_window(now: u16, start: u16, end: u16) -> bool {
    if start <= end {
        now >= start && now < end
    } else {
        // Wraps midnight.
        now >= start || now < end
    }
}

/// Caller-supplied evaluation context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessContext {
    /// Minutes since local midnight, `0..1440`.
    pub minute_of_day: u16,
}

impl AccessContext {
    pub fn at(hour: u16, minute: u16) -> AccessContext {
        AccessContext {
            minute_of_day: (hour % 24) * 60 + (minute % 60),
        }
    }
}

/// Field-level scoping attached to a rule. Only meaningful for verbs that
/// touch object contents (`get`, `watch`, `update`, `create`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FieldRule {
    /// If non-empty, access is limited to these paths (and descendants).
    #[serde(default)]
    pub allow: Vec<String>,
    /// Paths (and descendants) excluded even when covered by `allow`.
    #[serde(default)]
    pub deny: Vec<String>,
}

impl FieldRule {
    pub fn allow_paths<I, S>(paths: I) -> FieldRule
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FieldRule {
            allow: paths.into_iter().map(Into::into).collect(),
            deny: Vec::new(),
        }
    }

    pub fn deny_paths<I, S>(mut self, paths: I) -> FieldRule
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.deny = paths.into_iter().map(Into::into).collect();
        self
    }

    /// Does this rule admit `path`?
    ///
    /// * Denied if any deny path is a prefix of `path` **or** `path` is a
    ///   proper prefix of a deny path (reading `order` would reveal the
    ///   denied `order.paymentID`).
    /// * Otherwise allowed if `allow` is empty or some allow path is a
    ///   prefix of `path` (or `path` a prefix of an allow path — listing
    ///   `order` when only `order.items` is granted is **not** allowed,
    ///   because it would reveal siblings, so only the prefix direction
    ///   allow→path counts).
    pub fn admits(&self, path: &FieldPath) -> bool {
        for d in &self.deny {
            if let Ok(dp) = FieldPath::parse(d) {
                if dp.is_prefix_of(path) || path.is_prefix_of(&dp) {
                    return false;
                }
            }
        }
        if self.allow.is_empty() {
            return true;
        }
        self.allow.iter().any(|a| {
            FieldPath::parse(a)
                .map(|ap| ap.is_prefix_of(path))
                .unwrap_or(false)
        })
    }
}

/// One grant: verbs on a store (pattern), optionally field-scoped and
/// conditional.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Store id, or a prefix pattern ending in `*` (`house/*`), or `*`.
    pub store: String,
    pub verbs: Vec<Verb>,
    #[serde(default)]
    pub field_rule: Option<FieldRule>,
    #[serde(default = "default_condition")]
    pub condition: Condition,
}

fn default_condition() -> Condition {
    Condition::Always
}

impl Rule {
    pub fn on(store: impl Into<String>) -> Rule {
        Rule {
            store: store.into(),
            verbs: Vec::new(),
            field_rule: None,
            condition: Condition::Always,
        }
    }

    pub fn verbs(mut self, verbs: impl IntoIterator<Item = Verb>) -> Rule {
        self.verbs = verbs.into_iter().collect();
        self
    }

    pub fn all_verbs(mut self) -> Rule {
        self.verbs = vec![
            Verb::Get,
            Verb::List,
            Verb::Watch,
            Verb::Create,
            Verb::Update,
            Verb::Delete,
            Verb::Execute,
        ];
        self
    }

    pub fn fields(mut self, fr: FieldRule) -> Rule {
        self.field_rule = Some(fr);
        self
    }

    pub fn when(mut self, condition: Condition) -> Rule {
        self.condition = condition;
        self
    }

    fn matches_store(&self, store: &StoreId) -> bool {
        if self.store == "*" {
            return true;
        }
        if let Some(prefix) = self.store.strip_suffix('*') {
            return store.as_str().starts_with(prefix);
        }
        self.store == store.as_str()
    }
}

/// A named set of rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Role {
    pub name: String,
    pub rules: Vec<Rule>,
}

impl Role {
    pub fn new(name: impl Into<String>) -> Role {
        Role {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    pub fn rule(mut self, rule: Rule) -> Role {
        self.rules.push(rule);
        self
    }

    /// Convenience: every verb on one store.
    pub fn full_access(name: impl Into<String>, store: impl Into<String>) -> Role {
        Role::new(name).rule(Rule::on(store).all_verbs())
    }
}

/// Binds a subject to a role.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleBinding {
    pub subject: Subject,
    pub role: String,
}

impl RoleBinding {
    pub fn new(subject: Subject, role: impl Into<String>) -> RoleBinding {
        RoleBinding {
            subject,
            role: role.into(),
        }
    }
}

/// The outcome of an access check, with the reason for audit logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    Allow { role: String },
    Deny { reason: String },
}

impl Decision {
    pub fn allowed(&self) -> bool {
        matches!(self, Decision::Allow { .. })
    }

    pub fn reason(&self) -> &str {
        match self {
            Decision::Allow { role } => role,
            Decision::Deny { reason } => reason,
        }
    }
}

/// Holds roles and bindings; answers access questions.
///
/// When no roles are registered at all the controller is **open**
/// (`enforcing() == false` until the first role/binding arrives) — this
/// keeps single-process experiments ergonomic while production setups,
/// which always configure roles, get deny-by-default.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessController {
    roles: BTreeMap<String, Role>,
    bindings: Vec<RoleBinding>,
    /// Force enforcement even with an empty policy set.
    #[serde(default)]
    pub always_enforce: bool,
}

impl AccessController {
    pub fn new() -> AccessController {
        AccessController::default()
    }

    /// A controller that denies everything until policies are added,
    /// regardless of whether any roles exist yet.
    pub fn enforcing() -> AccessController {
        AccessController {
            always_enforce: true,
            ..Default::default()
        }
    }

    pub fn add_role(&mut self, role: Role) {
        self.roles.insert(role.name.clone(), role);
    }

    pub fn bind(&mut self, binding: RoleBinding) {
        if !self.bindings.contains(&binding) {
            self.bindings.push(binding);
        }
    }

    pub fn unbind(&mut self, subject: &Subject, role: &str) {
        self.bindings
            .retain(|b| !(b.subject == *subject && b.role == role));
    }

    pub fn is_enforcing(&self) -> bool {
        self.always_enforce || !self.roles.is_empty() || !self.bindings.is_empty()
    }

    /// Object-level check: may `subject` perform `verb` on `store`?
    pub fn check(
        &self,
        subject: &Subject,
        verb: Verb,
        store: &StoreId,
        ctx: &AccessContext,
    ) -> Decision {
        if !self.is_enforcing() {
            return Decision::Allow {
                role: "<open>".to_string(),
            };
        }
        for binding in self.bindings.iter().filter(|b| b.subject == *subject) {
            let Some(role) = self.roles.get(&binding.role) else {
                continue;
            };
            for rule in &role.rules {
                if rule.matches_store(store)
                    && rule.verbs.contains(&verb)
                    && rule.condition.holds(ctx)
                {
                    return Decision::Allow {
                        role: role.name.clone(),
                    };
                }
            }
        }
        Decision::Deny {
            reason: format!("{subject} has no role granting {verb:?} on {store}"),
        }
    }

    /// Field-level check: object-level grant plus field-rule admission.
    pub fn check_field(
        &self,
        subject: &Subject,
        verb: Verb,
        store: &StoreId,
        path: &FieldPath,
        ctx: &AccessContext,
    ) -> Decision {
        if !self.is_enforcing() {
            return Decision::Allow {
                role: "<open>".to_string(),
            };
        }
        let mut denied_reason = None;
        for binding in self.bindings.iter().filter(|b| b.subject == *subject) {
            let Some(role) = self.roles.get(&binding.role) else {
                continue;
            };
            for rule in &role.rules {
                if !(rule.matches_store(store)
                    && rule.verbs.contains(&verb)
                    && rule.condition.holds(ctx))
                {
                    continue;
                }
                match &rule.field_rule {
                    None => {
                        return Decision::Allow {
                            role: role.name.clone(),
                        }
                    }
                    Some(fr) if fr.admits(path) => {
                        return Decision::Allow {
                            role: role.name.clone(),
                        }
                    }
                    Some(_) => {
                        denied_reason = Some(format!(
                            "field '{path}' excluded by field rules of role {}",
                            role.name
                        ));
                    }
                }
            }
        }
        Decision::Deny {
            reason: denied_reason
                .unwrap_or_else(|| format!("{subject} has no role granting {verb:?} on {store}")),
        }
    }

    /// Project an object down to the fields `subject` may read, removing
    /// everything else. Returns `None` when even the object root is
    /// denied.
    pub fn redact(
        &self,
        subject: &Subject,
        store: &StoreId,
        value: &serde_json::Value,
        ctx: &AccessContext,
    ) -> Option<serde_json::Value> {
        if !self.is_enforcing() {
            return Some(value.clone());
        }
        if !self.check(subject, Verb::Get, store, ctx).allowed() {
            return None;
        }
        let serde_json::Value::Object(map) = value else {
            return Some(value.clone());
        };
        let mut out = serde_json::Map::new();
        for (k, v) in map {
            let path = FieldPath::root().child(k.clone());
            if self
                .check_field(subject, Verb::Get, store, &path, ctx)
                .allowed()
            {
                out.insert(k.clone(), v.clone());
            }
        }
        Some(serde_json::Value::Object(out))
    }

    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.roles.values()
    }

    pub fn bindings(&self) -> &[RoleBinding] {
        &self.bindings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sleep_hours_controller() -> AccessController {
        // House's Cast integrator may write the Lamp's store only outside
        // sleep hours (22:00–07:00).
        let mut ac = AccessController::new();
        ac.add_role(
            Role::new("lamp-writer").rule(
                Rule::on("lamp/config")
                    .verbs([Verb::Get, Verb::Update])
                    .when(Condition::OutsideMinutes {
                        start: 22 * 60,
                        end: 7 * 60,
                    }),
            ),
        );
        ac.bind(RoleBinding::new(
            Subject::integrator("house-cast"),
            "lamp-writer",
        ));
        ac
    }

    #[test]
    fn sleep_hours_block_access() {
        let ac = sleep_hours_controller();
        let sub = Subject::integrator("house-cast");
        let store = StoreId::new("lamp/config");
        assert!(ac
            .check(&sub, Verb::Update, &store, &AccessContext::at(14, 0))
            .allowed());
        assert!(!ac
            .check(&sub, Verb::Update, &store, &AccessContext::at(23, 30))
            .allowed());
        assert!(!ac
            .check(&sub, Verb::Update, &store, &AccessContext::at(3, 0))
            .allowed());
        assert!(ac
            .check(&sub, Verb::Update, &store, &AccessContext::at(7, 0))
            .allowed());
        // 22:00 exactly is inside the window (inclusive start).
        assert!(!ac
            .check(&sub, Verb::Update, &store, &AccessContext::at(22, 0))
            .allowed());
    }

    #[test]
    fn window_without_wrap() {
        assert!(in_window(100, 50, 200));
        assert!(!in_window(20, 50, 200));
        assert!(!in_window(200, 50, 200)); // end exclusive
        assert!(in_window(50, 50, 200)); // start inclusive
    }

    #[test]
    fn store_patterns() {
        let rule = Rule::on("house/*").verbs([Verb::Get]);
        assert!(rule.matches_store(&StoreId::new("house/config")));
        assert!(rule.matches_store(&StoreId::new("house/telemetry")));
        assert!(!rule.matches_store(&StoreId::new("lamp/config")));
        let any = Rule::on("*").verbs([Verb::Get]);
        assert!(any.matches_store(&StoreId::new("anything")));
    }

    #[test]
    fn field_rule_prefix_semantics() {
        let fr = FieldRule::allow_paths(["order"]).deny_paths(["order.paymentID"]);
        let p = |s: &str| FieldPath::parse(s).unwrap();
        assert!(!fr.admits(&p("order"))); // order reveals paymentID
        assert!(fr.admits(&p("order.totalCost")));
        assert!(!fr.admits(&p("order.paymentID")));
        assert!(!fr.admits(&p("order.paymentID.raw")));
        assert!(!fr.admits(&p("elsewhere")));
        // Empty allow admits everything not denied.
        let open = FieldRule::default().deny_paths(["secret"]);
        assert!(open.admits(&p("anything")));
        assert!(!open.admits(&p("secret.inner")));
    }

    #[test]
    fn redact_projects_fields() {
        let mut ac = AccessController::new();
        ac.add_role(
            Role::new("reader").rule(
                Rule::on("checkout/state")
                    .verbs([Verb::Get])
                    .fields(FieldRule::allow_paths(["order", "status"]).deny_paths(["order"])),
            ),
        );
        ac.bind(RoleBinding::new(Subject::integrator("cast"), "reader"));
        let sub = Subject::integrator("cast");
        let redacted = ac
            .redact(
                &sub,
                &StoreId::new("checkout/state"),
                &json!({"order": {"x": 1}, "status": "ok", "hidden": 2}),
                &AccessContext::default(),
            )
            .unwrap();
        assert_eq!(redacted, json!({"status": "ok"}));
    }

    #[test]
    fn redact_denies_whole_object_without_get() {
        let ac = AccessController::enforcing();
        assert_eq!(
            ac.redact(
                &Subject::integrator("x"),
                &StoreId::new("s"),
                &json!({"a": 1}),
                &AccessContext::default()
            ),
            None
        );
    }

    #[test]
    fn open_mode_until_policies_exist() {
        let ac = AccessController::new();
        assert!(!ac.is_enforcing());
        assert!(ac
            .check(
                &Subject::operator("cli"),
                Verb::Delete,
                &StoreId::new("s"),
                &AccessContext::default()
            )
            .allowed());
        let strict = AccessController::enforcing();
        assert!(strict.is_enforcing());
        assert!(!strict
            .check(
                &Subject::operator("cli"),
                Verb::Get,
                &StoreId::new("s"),
                &AccessContext::default()
            )
            .allowed());
    }

    #[test]
    fn unbind_revokes() {
        let mut ac = AccessController::new();
        ac.add_role(Role::full_access("r", "s"));
        let sub = Subject::operator("cli");
        ac.bind(RoleBinding::new(sub.clone(), "r"));
        let store = StoreId::new("s");
        assert!(ac
            .check(&sub, Verb::Get, &store, &AccessContext::default())
            .allowed());
        ac.unbind(&sub, "r");
        assert!(!ac
            .check(&sub, Verb::Get, &store, &AccessContext::default())
            .allowed());
    }

    #[test]
    fn decisions_carry_reasons() {
        let ac = AccessController::enforcing();
        let d = ac.check(
            &Subject::integrator("cast"),
            Verb::Get,
            &StoreId::new("s"),
            &AccessContext::default(),
        );
        assert!(d.reason().contains("integrator:cast"));
    }

    #[test]
    fn policy_serde_roundtrip() {
        let mut ac = AccessController::new();
        ac.add_role(
            Role::new("r").rule(
                Rule::on("s/*")
                    .verbs([Verb::Get, Verb::Execute])
                    .fields(FieldRule::allow_paths(["a"]))
                    .when(Condition::WithinMinutes { start: 0, end: 60 }),
            ),
        );
        ac.bind(RoleBinding::new(Subject::reconciler("x"), "r"));
        let text = serde_json::to_string(&ac).unwrap();
        let back: AccessController = serde_json::from_str(&text).unwrap();
        assert_eq!(back.bindings(), ac.bindings());
        assert_eq!(back.roles().count(), 1);
    }

    #[test]
    fn binding_duplicates_ignored() {
        let mut ac = AccessController::new();
        ac.add_role(Role::full_access("r", "s"));
        let b = RoleBinding::new(Subject::operator("o"), "r");
        ac.bind(b.clone());
        ac.bind(b);
        assert_eq!(ac.bindings().len(), 1);
    }
}
