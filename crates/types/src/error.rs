//! The shared error type for the Knactor workspace.
//!
//! Every crate layers its failures onto [`Error`]; keeping a single error
//! enum lets state flow through stores, integrators, and the wire protocol
//! without per-crate conversion boilerplate, and lets the protocol encode
//! errors losslessly (see `knactor-net`).

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// The error type shared by all Knactor crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A referenced object key does not exist in the store.
    NotFound(String),
    /// An object with this key already exists (create conflict).
    AlreadyExists(String),
    /// An optimistic-concurrency write carried a stale revision.
    ///
    /// Contains the expected (client-supplied) and actual (store) revisions.
    Conflict { expected: u64, actual: u64 },
    /// The caller is not authorized for the attempted operation.
    Forbidden(String),
    /// A value failed schema validation.
    SchemaViolation(String),
    /// A schema (or other named entity) reference could not be resolved.
    UnknownSchema(String),
    /// A field path could not be parsed or resolved against a value.
    BadPath(String),
    /// An expression failed to lex, parse, or evaluate.
    Expr(String),
    /// A DXG specification is malformed or fails static analysis.
    Dxg(String),
    /// A YAML-subset document failed to parse.
    Parse { line: usize, msg: String },
    /// A watch was requested from a revision the store's bounded history
    /// no longer covers; the watcher must re-list and resume from there.
    ///
    /// Contains the requested resume point and the oldest replayable
    /// revision still held.
    WatchTooOld { from: u64, oldest: u64 },
    /// The exchange is saturated and shed this request before executing
    /// it; the caller should back off at least `retry_after_ms` and retry.
    ///
    /// Shed requests are rejected at admission, before any side effect,
    /// so retrying is always safe (no idempotency disambiguation needed).
    Overloaded { retry_after_ms: u64 },
    /// A wire-protocol or transport failure.
    Transport(String),
    /// The store or exchange rejected the request (internal invariant,
    /// engine failure, serialization problem, ...).
    Internal(String),
    /// The target component is shutting down and no longer accepts work.
    ShuttingDown,
    /// A mutation reached a replica that is not the current leader; the
    /// client must re-resolve leadership (at or above `epoch`) and retry
    /// there. Not blindly retryable: retrying the *same* node cannot
    /// succeed, which is why this is distinct from `Transport`.
    NotLeader { epoch: u64 },
    /// A request exceeded its deadline.
    Timeout(String),
    /// A pushdown cast edge cannot run against its (new) target: the
    /// named UDF has no usable registration for `store` — typically a
    /// live retarget onto a store the exchange does not host. Surfaced
    /// by `Composer::apply` so a re-plan fails loudly (and rolls back)
    /// instead of leaving an edge silently executing a stale `udf_name`
    /// against a target that will never serve it.
    PushdownUnavailable { udf: String, store: String },
}

impl Error {
    /// Short machine-readable code used by the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            Error::NotFound(_) => "not_found",
            Error::AlreadyExists(_) => "already_exists",
            Error::Conflict { .. } => "conflict",
            Error::Forbidden(_) => "forbidden",
            Error::SchemaViolation(_) => "schema_violation",
            Error::UnknownSchema(_) => "unknown_schema",
            Error::BadPath(_) => "bad_path",
            Error::Expr(_) => "expr",
            Error::Dxg(_) => "dxg",
            Error::Parse { .. } => "parse",
            Error::WatchTooOld { .. } => "watch_too_old",
            Error::Overloaded { .. } => "overloaded",
            Error::Transport(_) => "transport",
            Error::Internal(_) => "internal",
            Error::ShuttingDown => "shutting_down",
            Error::NotLeader { .. } => "not_leader",
            Error::Timeout(_) => "timeout",
            Error::PushdownUnavailable { .. } => "pushdown_unavailable",
        }
    }

    /// Rebuild an error from its wire form (`code`, human message).
    ///
    /// `Conflict`'s revisions are carried in the message as `expected:actual`;
    /// anything unparsable degrades to `Internal`, which is safe because the
    /// code/message pair is only advisory once it crossed the wire.
    pub fn from_wire(code: &str, msg: &str) -> Error {
        match code {
            "not_found" => Error::NotFound(msg.to_string()),
            "already_exists" => Error::AlreadyExists(msg.to_string()),
            "conflict" => {
                let mut parts = msg.split(':');
                let expected = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let actual = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                Error::Conflict { expected, actual }
            }
            "watch_too_old" => {
                let mut parts = msg.split(':');
                let from = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let oldest = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                Error::WatchTooOld { from, oldest }
            }
            "overloaded" => Error::Overloaded {
                retry_after_ms: msg.parse().unwrap_or(0),
            },
            "forbidden" => Error::Forbidden(msg.to_string()),
            "schema_violation" => Error::SchemaViolation(msg.to_string()),
            "unknown_schema" => Error::UnknownSchema(msg.to_string()),
            "bad_path" => Error::BadPath(msg.to_string()),
            "expr" => Error::Expr(msg.to_string()),
            "dxg" => Error::Dxg(msg.to_string()),
            "transport" => Error::Transport(msg.to_string()),
            "shutting_down" => Error::ShuttingDown,
            "not_leader" => Error::NotLeader {
                epoch: msg.parse().unwrap_or(0),
            },
            "timeout" => Error::Timeout(msg.to_string()),
            "pushdown_unavailable" => {
                let mut parts = msg.splitn(2, ':');
                let store = parts.next().unwrap_or_default().to_string();
                Error::PushdownUnavailable {
                    udf: parts.next().unwrap_or_default().to_string(),
                    store,
                }
            }
            _ => Error::Internal(msg.to_string()),
        }
    }

    /// Message component for the wire form (pairs with [`Error::code`]).
    pub fn wire_message(&self) -> String {
        match self {
            Error::Conflict { expected, actual } => format!("{expected}:{actual}"),
            Error::WatchTooOld { from, oldest } => format!("{from}:{oldest}"),
            Error::Overloaded { retry_after_ms } => format!("{retry_after_ms}"),
            Error::NotLeader { epoch } => format!("{epoch}"),
            // Store first: UDF names may contain ':' (per-edge
            // registrations are suffixed `{udf}:{alias}`), store ids
            // cannot, so the first ':' splits unambiguously.
            Error::PushdownUnavailable { udf, store } => format!("{store}:{udf}"),
            Error::Parse { line, msg } => format!("line {line}: {msg}"),
            other => format!("{other}"),
        }
    }

    /// True for errors that a retry with fresh state may resolve.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Conflict { .. }
                | Error::Timeout(_)
                | Error::Transport(_)
                | Error::Overloaded { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(k) => write!(f, "not found: {k}"),
            Error::AlreadyExists(k) => write!(f, "already exists: {k}"),
            Error::Conflict { expected, actual } => {
                write!(f, "revision conflict: expected {expected}, actual {actual}")
            }
            Error::Forbidden(m) => write!(f, "forbidden: {m}"),
            Error::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            Error::UnknownSchema(m) => write!(f, "unknown schema: {m}"),
            Error::BadPath(m) => write!(f, "bad path: {m}"),
            Error::Expr(m) => write!(f, "expression error: {m}"),
            Error::Dxg(m) => write!(f, "dxg error: {m}"),
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::WatchTooOld { from, oldest } => {
                write!(f, "watch too old: from {from}, oldest retained {oldest}")
            }
            Error::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms}ms")
            }
            Error::Transport(m) => write!(f, "transport error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::ShuttingDown => write!(f, "shutting down"),
            Error::NotLeader { epoch } => write!(f, "not the leader (epoch {epoch})"),
            Error::Timeout(m) => write!(f, "timeout: {m}"),
            Error::PushdownUnavailable { udf, store } => {
                write!(
                    f,
                    "pushdown unavailable: udf '{udf}' cannot serve store '{store}'"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Transport(e.to_string())
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Internal(format!("json: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_key() {
        let e = Error::NotFound("orders/1".into());
        assert_eq!(format!("{e}"), "not found: orders/1");
    }

    #[test]
    fn conflict_roundtrips_through_wire_form() {
        let e = Error::Conflict {
            expected: 3,
            actual: 7,
        };
        let rebuilt = Error::from_wire(e.code(), &e.wire_message());
        assert_eq!(rebuilt, e);
    }

    #[test]
    fn watch_too_old_roundtrips_through_wire_form() {
        let e = Error::WatchTooOld { from: 3, oldest: 9 };
        let rebuilt = Error::from_wire(e.code(), &e.wire_message());
        assert_eq!(rebuilt, e);
    }

    #[test]
    fn every_variant_roundtrips_code() {
        let samples = vec![
            Error::NotFound("k".into()),
            Error::AlreadyExists("k".into()),
            Error::Conflict {
                expected: 1,
                actual: 2,
            },
            Error::Forbidden("nope".into()),
            Error::SchemaViolation("bad".into()),
            Error::UnknownSchema("s".into()),
            Error::BadPath("p".into()),
            Error::Expr("e".into()),
            Error::Dxg("d".into()),
            Error::WatchTooOld { from: 3, oldest: 9 },
            Error::Overloaded { retry_after_ms: 25 },
            Error::Transport("t".into()),
            Error::ShuttingDown,
            Error::NotLeader { epoch: 4 },
            Error::Timeout("t".into()),
            Error::PushdownUnavailable {
                udf: "u:T".into(),
                store: "t/state".into(),
            },
        ];
        for e in samples {
            let rebuilt = Error::from_wire(e.code(), &e.wire_message());
            assert_eq!(rebuilt.code(), e.code(), "{e:?}");
        }
    }

    #[test]
    fn parse_error_degrades_to_internal_on_wire() {
        let e = Error::Parse {
            line: 4,
            msg: "oops".into(),
        };
        let rebuilt = Error::from_wire(e.code(), &e.wire_message());
        // Parse has no structured wire form; it degrades but keeps the text.
        assert!(matches!(rebuilt, Error::Internal(ref m) if m.contains("oops")));
    }

    #[test]
    fn retryability() {
        assert!(Error::Conflict {
            expected: 0,
            actual: 1
        }
        .is_retryable());
        assert!(Error::Timeout("x".into()).is_retryable());
        assert!(Error::Overloaded { retry_after_ms: 10 }.is_retryable());
        assert!(!Error::Forbidden("x".into()).is_retryable());
    }

    #[test]
    fn not_leader_roundtrips_epoch_through_wire_form() {
        let e = Error::NotLeader { epoch: 12 };
        let rebuilt = Error::from_wire(e.code(), &e.wire_message());
        assert_eq!(rebuilt, e);
        assert!(!e.is_retryable());
    }

    #[test]
    fn overloaded_roundtrips_retry_after_through_wire_form() {
        let e = Error::Overloaded { retry_after_ms: 40 };
        let rebuilt = Error::from_wire(e.code(), &e.wire_message());
        assert_eq!(rebuilt, e);
    }

    #[test]
    fn io_error_converts_to_transport() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        let e: Error = io.into();
        assert!(matches!(e, Error::Transport(_)));
    }
}
