//! Regenerates **Table 2**: latency of one shipment request with a
//! per-stage breakdown, across the four setups the paper compares.
//!
//! ```text
//! cargo run -p knactor-bench --bin table2 --release          # full (S ≈ 446 ms)
//! cargo run -p knactor-bench --bin table2 --release -- quick # fast variant
//! ```

use knactor_bench::table2::{render, run_all, Params};

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let params = if quick {
        Params::quick()
    } else {
        Params::default()
    };

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let rows = runtime.block_on(run_all(&params)).expect("table2 run");

    println!(
        "Table 2: latency completing one shipment request (mean of {} runs, ms)\n",
        params.iterations
    );
    println!("{}", render(&rows));
    println!("Stage key: C-I = Checkout->integrator (watch delivery), I = integrator");
    println!("compute (or in-exchange UDF), I-S = integrator->Shipping write, S =");
    println!(
        "shipment processing (simulated carrier: {:?}).",
        params.shipment_processing
    );
    println!();
    println!("Paper's measurements (their Kubernetes testbed):");
    println!("  RPC          -     -     -    446  1.8   447.8");
    println!("  K-apiserver  20.6  0.01  12.5 453  33.1  486.1");
    println!("  K-redis      3.2   0.06  2.7  444  5.8   449.8");
    println!("  K-redis-udf  2.1   0.7   0.1  450  2.9   452.9");
}
