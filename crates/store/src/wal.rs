//! Write-ahead log for the durable ("apiserver-like") engine.
//!
//! One JSON-serialized [`WatchEvent`] per line. A commit appends the event
//! and optionally `fsync`s — the fsync is precisely where the paper's
//! K-apiserver configuration pays its latency (Table 2: 20.6 ms between
//! Checkout and the integrator vs 3.2 ms for K-redis).
//!
//! # Recovery
//!
//! Opening a log runs **recovery** ([`Wal::open_recovering`]): the file is
//! scanned record by record, a torn final record (a crash mid-write or
//! mid-fsync) is physically truncated away so later appends can never
//! land after garbage, and the surviving records are checked for
//! **revision continuity** — every record's revision must be exactly one
//! more than its predecessor's. A hole or duplicate means the log prefix
//! is not trustworthy and recovery fails loudly rather than replaying a
//! corrupt history.
//!
//! # Group commit
//!
//! Durability is split in two: [`Wal::stage`] writes the record's bytes
//! into the file (buffered, ordered by the staging lock) and hands back a
//! ticket, and [`Wal::wait_durable`] blocks until an fsync covering that
//! ticket has completed. Concurrent committers that stage while an fsync
//! is in flight are all covered by the *next* one — a single
//! leader-elected `sync_data` acknowledges the whole group, so N
//! concurrent (or batched) commits cost one fsync, not N. The classic
//! [`Wal::append`] is `stage` + `wait_durable` back to back.
//!
//! Because staged records hit the file in ticket order, a crash can only
//! lose a *suffix* of the log: recovery always lands on a group boundary
//! (the last fsync-covered record), never in the middle of one.
//!
//! # Crash points
//!
//! For deterministic crash testing, a WAL can be armed with a
//! [`CrashPoint`] ([`Wal::arm_crash`]): the Nth append after arming then
//! fails as if the process had died at that instant — before the write,
//! after the (durable) write, or halfway through it, leaving a torn tail
//! on disk. A fired crash point **poisons** the log: every later append
//! fails too, modelling a dead process until the store is reopened. A
//! firing crash also fails the in-flight fsync group — commits staged but
//! not yet covered by an fsync can never be acknowledged by a process
//! that just died.

use crate::event::WatchEvent;
use knactor_types::metrics::{self, Counter, Histogram};
use knactor_types::{Error, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
// The vendored `parking_lot` wraps std primitives (its `MutexGuard` *is*
// `std::sync::MutexGuard`), so std's Condvar pairs with its Mutex.
use std::sync::{Arc, Condvar};

/// Where an injected crash interrupts [`Wal::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die before any bytes reach the file: the commit is simply lost.
    BeforeAppend,
    /// Die after the record (and its fsync) hit the disk but before the
    /// caller learns about it: the write is durable yet unacknowledged.
    AfterAppend,
    /// Die mid-write/mid-fsync: only a prefix of the record survives,
    /// leaving a torn tail for recovery to truncate.
    TornWrite,
}

struct CrashState {
    /// `(point, appends_to_skip_first)` — fires on the (N+1)th append.
    armed: Option<(CrashPoint, u64)>,
    /// Set once a crash point fired; the "process" is dead.
    poisoned: bool,
}

/// What [`Wal::recover`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Every complete, continuous record, in append order.
    pub events: Vec<WatchEvent>,
    /// Bytes of torn trailing data that must be truncated away.
    pub torn_bytes: u64,
    /// Length of the valid prefix (the post-truncation file size).
    pub valid_len: u64,
    /// The valid prefix ends without a record terminator (a crash fell
    /// between the payload and its newline); opening re-terminates it.
    pub needs_terminator: bool,
}

/// Group-commit bookkeeping: which staged records an fsync has covered.
struct GroupState {
    /// Ticket of the most recently staged record.
    staged: u64,
    /// Highest ticket covered by a completed fsync.
    durable: u64,
    /// An fsync leader is currently running `sync_data`.
    syncing: bool,
    /// Sticky failure: a crashed/failed group can never be acknowledged.
    failed: Option<String>,
}

/// An append-only event log on disk.
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
    fsync: bool,
    crash: Mutex<CrashState>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    appends_total: Arc<Counter>,
    fsyncs_total: Arc<Counter>,
    /// Records acknowledged per fsync — the amortization the group-commit
    /// machinery exists to buy (1 = no batching benefit).
    group_records: Arc<Histogram>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("fsync", &self.fsync)
            .finish()
    }
}

fn crash_err(which: &str) -> Error {
    Error::Internal(format!("crash injected: {which}"))
}

impl Wal {
    /// Open (creating if absent) the log at `path`, running recovery but
    /// discarding the recovered events (callers that need them use
    /// [`Wal::open_recovering`]).
    pub fn open(path: impl AsRef<Path>, fsync: bool) -> Result<Wal> {
        Ok(Wal::open_recovering(path, fsync)?.0)
    }

    /// Open the log, truncating any torn tail, verifying revision
    /// continuity, and returning the recovered events alongside the
    /// append handle.
    pub fn open_recovering(path: impl AsRef<Path>, fsync: bool) -> Result<(Wal, Vec<WatchEvent>)> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let recovery = Wal::recover(&path)?;
        metrics::global()
            .counter("knactor_wal_recoveries_total", &[])
            .inc();
        if recovery.torn_bytes > 0 || recovery.needs_terminator {
            // Physically repair the file before any append can follow
            // torn garbage: truncate to the valid prefix and restore the
            // missing terminator of a complete-but-unterminated record.
            let repair = OpenOptions::new()
                .create(true)
                .truncate(false)
                .write(true)
                .open(&path)?;
            repair.set_len(recovery.valid_len)?;
            repair.sync_data()?;
            if recovery.needs_terminator {
                let mut repair = OpenOptions::new().append(true).open(&path)?;
                repair.write_all(b"\n")?;
                repair.sync_data()?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let registry = metrics::global();
        let wal = Wal {
            path,
            file: Mutex::new(file),
            fsync,
            crash: Mutex::new(CrashState {
                armed: None,
                poisoned: false,
            }),
            group: Mutex::new(GroupState {
                staged: 0,
                durable: 0,
                syncing: false,
                failed: None,
            }),
            group_cv: Condvar::new(),
            appends_total: registry.counter("knactor_wal_appends_total", &[]),
            fsyncs_total: registry.counter("knactor_wal_fsyncs_total", &[]),
            group_records: registry.histogram("knactor_wal_group_commit_records", &[]),
        };
        Ok((wal, recovery.events))
    }

    /// Arm a crash point: the `after`-th append from now (0 = the next
    /// one) fails at `point` and poisons the log.
    pub fn arm_crash(&self, point: CrashPoint, after: u64) {
        self.crash.lock().armed = Some((point, after));
    }

    /// True once an injected crash has fired.
    pub fn is_poisoned(&self) -> bool {
        self.crash.lock().poisoned
    }

    /// Append one committed event. With `fsync` enabled the call returns
    /// only after an fsync covering the record has completed — possibly
    /// one issued by a concurrent committer's group.
    pub fn append(&self, event: &WatchEvent) -> Result<()> {
        let ticket = self.stage(event)?;
        self.wait_durable(ticket)
    }

    /// Write one record's bytes to the file without waiting for
    /// durability. Returns the record's group-commit ticket: pass it to
    /// [`Wal::wait_durable`] before acknowledging the commit.
    pub fn stage(&self, event: &WatchEvent) -> Result<u64> {
        self.stage_batch(std::slice::from_ref(event))
    }

    /// Stage a run of records as one buffered file write. Returns the
    /// ticket of the *last* record; waiting on it covers the whole run
    /// (tickets are assigned in file order).
    pub fn stage_batch(&self, events: &[WatchEvent]) -> Result<u64> {
        let mut crash = self.crash.lock();
        if crash.poisoned {
            return Err(crash_err("wal poisoned by earlier crash"));
        }
        // One crash decision per record, so "crash on the Nth append"
        // lands mid-batch exactly like it would mid-sequence: records
        // before the firing point reach the file, the rest never do.
        let mut firing: Option<(CrashPoint, usize)> = None;
        let mut writable = events.len();
        for (i, _) in events.iter().enumerate() {
            match &mut crash.armed {
                Some((point, remaining)) => {
                    if *remaining == 0 {
                        let point = *point;
                        crash.armed = None;
                        crash.poisoned = true;
                        firing = Some((point, i));
                        writable = i;
                        break;
                    } else {
                        *remaining -= 1;
                    }
                }
                None => break,
            }
        }

        let mut buf = Vec::with_capacity(events.len() * 128);
        for event in &events[..writable] {
            buf.append(&mut serde_json::to_vec(event)?);
            buf.push(b'\n');
        }
        // The crash lock is held across the file write so an armed crash
        // and the append it interrupts are one atomic decision.
        let mut file = self.file.lock();
        match firing {
            None => {
                file.write_all(&buf)?;
                drop(file);
                self.appends_total.add(events.len() as u64);
                let mut group = self.group.lock();
                group.staged += events.len() as u64;
                Ok(group.staged)
            }
            Some((point, at)) => {
                // The "process" dies here: whatever this batch (and any
                // concurrently staged, not-yet-fsynced commit) wrote can
                // never be acknowledged.
                let result = match point {
                    CrashPoint::BeforeAppend => {
                        file.write_all(&buf)?;
                        Err(crash_err("before append"))
                    }
                    CrashPoint::TornWrite => {
                        // Half of the firing record reaches the disk; the
                        // terminator never does. This is what a power cut
                        // mid-write leaves behind.
                        let mut line = serde_json::to_vec(&events[at])?;
                        line.push(b'\n');
                        buf.extend_from_slice(&line[..(line.len() / 2).max(1)]);
                        file.write_all(&buf)?;
                        let _ = file.sync_data();
                        Err(crash_err("torn write"))
                    }
                    CrashPoint::AfterAppend => {
                        let mut line = serde_json::to_vec(&events[at])?;
                        line.push(b'\n');
                        buf.extend_from_slice(&line);
                        file.write_all(&buf)?;
                        file.sync_data()?;
                        Err(crash_err("after append"))
                    }
                };
                drop(file);
                self.fail_group("crash injected mid-group");
                result
            }
        }
    }

    /// Block until an fsync covering `ticket` has completed, joining (or
    /// leading) a group fsync. Without `fsync` mode this is free: the
    /// engine never promised stable storage.
    pub fn wait_durable(&self, ticket: u64) -> Result<()> {
        if !self.fsync {
            return Ok(());
        }
        let mut group = self.group.lock();
        loop {
            if group.durable >= ticket {
                return Ok(());
            }
            if let Some(msg) = &group.failed {
                return Err(Error::Internal(format!("wal group commit failed: {msg}")));
            }
            if group.syncing {
                // A leader's fsync is in flight; it (or the next one)
                // will cover us. Wait for the verdict.
                group = self
                    .group_cv
                    .wait(group)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                continue;
            }
            // Become the leader: everything staged up to here rides this
            // one fsync.
            group.syncing = true;
            let target = group.staged;
            let covered = target - group.durable;
            drop(group);
            let synced = self.file.lock().sync_data();
            group = self.group.lock();
            group.syncing = false;
            match synced {
                Ok(()) => {
                    group.durable = group.durable.max(target);
                    self.fsyncs_total.inc();
                    self.group_records.observe_ns(covered);
                }
                Err(e) => {
                    group.failed = Some(e.to_string());
                }
            }
            self.group_cv.notify_all();
        }
    }

    /// Wait until everything staged so far is durable (one group fsync
    /// for a whole batch of staged commits).
    pub fn durable_barrier(&self) -> Result<()> {
        let ticket = self.group.lock().staged;
        self.wait_durable(ticket)
    }

    /// Fail the in-flight group: staged-but-unfsynced commits can never
    /// be acknowledged (the "process" died before their fsync).
    fn fail_group(&self, msg: &str) {
        let mut group = self.group.lock();
        group.failed = Some(msg.to_string());
        self.group_cv.notify_all();
    }

    /// Scan the log without modifying it: parse every record, locate the
    /// valid prefix, and verify revision continuity.
    ///
    /// A torn *final* record (truncated bytes, or a trailing segment that
    /// no longer parses) is reported for truncation; a corrupt record
    /// *before* the end, or any revision hole/duplicate, is an error
    /// because the already-replayed prefix would be suspect.
    pub fn recover(path: impl AsRef<Path>) -> Result<Recovery> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Recovery {
                events: Vec::new(),
                torn_bytes: 0,
                valid_len: 0,
                needs_terminator: false,
            });
        }
        let bytes = std::fs::read(path)?;
        let total = bytes.len() as u64;
        let mut events: Vec<WatchEvent> = Vec::new();
        let mut valid_len: u64 = 0;
        let mut needs_terminator = false;
        let mut pending_error: Option<String> = None;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        while offset < bytes.len() {
            let (segment, end, terminated) = match bytes[offset..].iter().position(|b| *b == b'\n')
            {
                Some(nl) => (&bytes[offset..offset + nl], offset + nl + 1, true),
                None => (&bytes[offset..], bytes.len(), false),
            };
            line_no += 1;
            if let Some(msg) = pending_error.take() {
                // The bad record was not the last one: real corruption.
                return Err(Error::Internal(format!("corrupt WAL entry: {msg}")));
            }
            if segment.iter().all(|b| b.is_ascii_whitespace()) {
                offset = end;
                if terminated {
                    valid_len = end as u64;
                }
                continue;
            }
            match serde_json::from_slice::<WatchEvent>(segment) {
                Ok(event) => {
                    if let Some(prev) = events.last() {
                        if event.revision.0 != prev.revision.0 + 1 {
                            return Err(Error::Internal(format!(
                                "WAL revision discontinuity at line {line_no}: \
                                 {} follows {}",
                                event.revision, prev.revision
                            )));
                        }
                    }
                    events.push(event);
                    if terminated {
                        valid_len = end as u64;
                    } else {
                        // A complete record whose terminator was lost in
                        // the crash: keep it, restore the newline later.
                        valid_len = end as u64;
                        needs_terminator = true;
                    }
                }
                Err(e) => pending_error = Some(format!("line {line_no}: {e}")),
            }
            offset = end;
        }
        // pending_error still set => torn tail; everything after the last
        // good record is garbage to truncate.
        Ok(Recovery {
            events,
            torn_bytes: total - valid_len,
            valid_len,
            needs_terminator,
        })
    }

    /// Read every complete event in the log, in append order, without
    /// repairing the file (use [`Wal::open_recovering`] to also truncate
    /// a torn tail before appending).
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WatchEvent>> {
        Ok(Wal::recover(path)?.events)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use knactor_types::{ObjectKey, Revision};
    use serde_json::json;

    fn ev(rev: u64) -> WatchEvent {
        WatchEvent {
            revision: Revision(rev),
            kind: EventKind::Created,
            key: ObjectKey::new(format!("k{rev}")),
            value: json!({"r": rev}).into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("knactor-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("basic");
        let wal = Wal::open(&path, false).unwrap();
        for r in 1..=5 {
            wal.append(&ev(r)).unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[4].revision, Revision(5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert_eq!(Wal::replay("/nonexistent/knactor-wal").unwrap().len(), 0);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&ev(1)).unwrap();
        wal.append(&ev(2)).unwrap();
        drop(wal);
        // Simulate a crash mid-append.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"revision\":3,\"kind\":\"crea").unwrap();
        drop(f);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    /// The regression the recovery path exists for: a torn tail must be
    /// truncated on open, so a post-crash append starts on a fresh line
    /// instead of gluing itself to the garbage (which would corrupt the
    /// log *mid-file*, an unrecoverable state).
    #[test]
    fn open_truncates_torn_tail_so_appends_stay_parseable() {
        let path = tmp("torn-then-append");
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(1)).unwrap();
            wal.append(&ev(2)).unwrap();
        }
        let len_before_tear = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"revision\":3,\"kind\":\"upd").unwrap();
        }
        let (wal, recovered) = Wal::open_recovering(&path, false).unwrap();
        assert_eq!(recovered.len(), 2, "torn record dropped");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before_tear,
            "torn bytes physically removed"
        );
        wal.append(&ev(3)).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2].revision, Revision(3));
        std::fs::remove_file(&path).unwrap();
    }

    /// A record whose newline was lost (crash between payload and
    /// terminator) is complete data: recovery keeps it and re-terminates.
    #[test]
    fn unterminated_final_record_is_kept_and_reterminated() {
        let path = tmp("no-terminator");
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(1)).unwrap();
            wal.append(&ev(2)).unwrap();
        }
        // Chop exactly the trailing newline.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 1).unwrap();
        drop(f);
        let (wal, recovered) = Wal::open_recovering(&path, false).unwrap();
        assert_eq!(recovered.len(), 2, "unterminated record kept");
        wal.append(&ev(3)).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = tmp("corrupt");
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(1)).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage line\n").unwrap();
        }
        {
            // Raw append (not through recovery) so the garbage stays.
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let mut line = serde_json::to_vec(&ev(2)).unwrap();
            line.push(b'\n');
            f.write_all(&line).unwrap();
        }
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn revision_hole_is_an_error() {
        let path = tmp("hole");
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(1)).unwrap();
            // Skip revision 2 entirely; append itself does not police
            // revisions, recovery does.
            wal.append(&ev(3)).unwrap();
        }
        let err = Wal::recover(&path).unwrap_err();
        assert!(err.to_string().contains("discontinuity"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_mode_still_appends() {
        let path = tmp("fsync");
        let wal = Wal::open(&path, true).unwrap();
        wal.append(&ev(1)).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_before_append_leaves_no_trace() {
        let path = tmp("crash-before");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&ev(1)).unwrap();
        wal.arm_crash(CrashPoint::BeforeAppend, 0);
        assert!(wal.append(&ev(2)).is_err());
        assert!(wal.is_poisoned());
        // Poisoned: later appends fail too.
        assert!(wal.append(&ev(2)).is_err());
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_after_append_is_durable_but_unacked() {
        let path = tmp("crash-after");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&ev(1)).unwrap();
        wal.arm_crash(CrashPoint::AfterAppend, 0);
        assert!(wal.append(&ev(2)).is_err());
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "the unacked record is on disk");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_torn_write_recovers_to_clean_prefix() {
        let path = tmp("crash-torn");
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(1)).unwrap();
            wal.arm_crash(CrashPoint::TornWrite, 0);
            assert!(wal.append(&ev(2)).is_err());
        }
        let (wal, recovered) = Wal::open_recovering(&path, false).unwrap();
        assert_eq!(recovered.len(), 1, "torn record dropped");
        wal.append(&ev(2)).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stage_batch_writes_all_records_under_one_ticket() {
        let path = tmp("stage-batch");
        let wal = Wal::open(&path, true).unwrap();
        let events: Vec<WatchEvent> = (1..=4).map(ev).collect();
        let ticket = wal.stage_batch(&events).unwrap();
        assert_eq!(ticket, 4);
        wal.wait_durable(ticket).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_barrier_covers_everything_staged() {
        let path = tmp("barrier");
        let wal = Wal::open(&path, true).unwrap();
        wal.stage(&ev(1)).unwrap();
        wal.stage(&ev(2)).unwrap();
        wal.durable_barrier().unwrap();
        // Both tickets are now covered without further fsyncs.
        wal.wait_durable(1).unwrap();
        wal.wait_durable(2).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    /// One fsync covers the whole group: concurrent committers that stage
    /// before any of them reaches wait_durable share a leader's sync.
    #[test]
    fn group_commit_amortizes_fsyncs() {
        let path = tmp("group-amortize");
        let wal = Wal::open(&path, true).unwrap();
        let before = wal.fsyncs_total.get();
        let tickets: Vec<u64> = (1..=8).map(|r| wal.stage(&ev(r)).unwrap()).collect();
        for t in tickets {
            wal.wait_durable(t).unwrap();
        }
        let fsyncs = wal.fsyncs_total.get() - before;
        assert!(
            fsyncs <= 2,
            "8 staged records should share at most a couple of fsyncs, got {fsyncs}"
        );
        assert_eq!(Wal::replay(&path).unwrap().len(), 8);
        std::fs::remove_file(&path).unwrap();
    }

    /// A crash firing mid-batch loses the firing record and everything
    /// after it, but keeps the batch prefix — recovery lands on a clean
    /// group boundary.
    #[test]
    fn crash_mid_batch_keeps_prefix_and_fails_group() {
        let path = tmp("crash-mid-batch");
        {
            let wal = Wal::open(&path, true).unwrap();
            let ticket = wal.stage(&ev(1)).unwrap();
            // Fires on the second record of the batch (ev 3).
            wal.arm_crash(CrashPoint::TornWrite, 1);
            let events: Vec<WatchEvent> = (2..=6).map(ev).collect();
            assert!(wal.stage_batch(&events).is_err());
            assert!(wal.is_poisoned());
            // The in-flight group is failed: the commit staged before the
            // crash can never be acknowledged by this "process".
            assert!(wal.wait_durable(ticket).is_err());
        }
        let (_, recovered) = Wal::open_recovering(&path, true).unwrap();
        assert_eq!(recovered.len(), 2, "prefix before the crash survives");
        std::fs::remove_file(&path).unwrap();
    }

    /// After a crash fires, a committer already staged (but not yet
    /// durable) must see an error from wait_durable, never a false ack.
    #[test]
    fn crash_fails_already_staged_commits() {
        let path = tmp("crash-staged");
        let wal = Wal::open(&path, true).unwrap();
        let ticket = wal.stage(&ev(1)).unwrap();
        wal.arm_crash(CrashPoint::BeforeAppend, 0);
        assert!(wal.stage(&ev(2)).is_err());
        let err = wal.wait_durable(ticket).unwrap_err();
        assert!(err.to_string().contains("group commit failed"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_fires_on_the_nth_append() {
        let path = tmp("crash-nth");
        let wal = Wal::open(&path, false).unwrap();
        wal.arm_crash(CrashPoint::BeforeAppend, 2);
        wal.append(&ev(1)).unwrap();
        wal.append(&ev(2)).unwrap();
        assert!(wal.append(&ev(3)).is_err());
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
