//! Background compaction: merge runs of small sealed segments.
//!
//! Rotation seals segments at a fixed record count, so a long-lived
//! store accumulates many small segments — each with its own dictionary,
//! its own per-segment overheads, and its own entry in every scan.
//! Compaction merges adjacent *small* sealed segments into one larger
//! (columnar, when enabled) segment: dictionaries are shared across more
//! rows, scans touch fewer segments, and the parallel query path gets
//! chunkier work items.
//!
//! Merges are computed entirely off the store lock: candidates are
//! snapshotted as `Arc`s, merged, and spliced back only if the exact run
//! is still retained (pointer identity) — a concurrent retention drop
//! simply wins and the merged segment is discarded. Readers racing a
//! compaction hold their own `Arc` snapshots, so they observe either the
//! old run or the merged segment, never a mix: record-level results are
//! identical either way.

use crate::segment::SealedSegment;
use crate::store::LogStore;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// When and how aggressively to merge sealed segments.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Merge only when a run of at least this many undersized adjacent
    /// segments exists.
    pub min_segments: usize,
    /// A segment with at least this many records is "big enough" and is
    /// never merged further (bounds write amplification).
    pub target_records: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_segments: 4,
            target_records: 8192,
        }
    }
}

/// Find the first run of adjacent undersized segments worth merging.
fn candidate_run(
    sealed: &[Arc<SealedSegment>],
    policy: &CompactionPolicy,
) -> Option<Vec<Arc<SealedSegment>>> {
    let mut run: Vec<Arc<SealedSegment>> = Vec::new();
    let mut run_records = 0usize;
    for seg in sealed {
        let small = seg.len() < policy.target_records;
        if small && run_records + seg.len() <= policy.target_records * 2 {
            run_records += seg.len();
            run.push(Arc::clone(seg));
            continue;
        }
        if run.len() >= policy.min_segments.max(2) {
            return Some(run);
        }
        run.clear();
        run_records = 0;
        // A small segment that overflowed the budget starts the next run.
        if small {
            run_records = seg.len();
            run.push(Arc::clone(seg));
        }
    }
    if run.len() >= policy.min_segments.max(2) {
        return Some(run);
    }
    None
}

/// One merge attempt. Returns whether a merge was spliced in; `false`
/// means no candidate run remains. A splice lost to a concurrent
/// retention drop or rival merge re-snapshots and retries, so a lost
/// race never masquerades as quiescence.
fn compact_once(store: &LogStore, policy: &CompactionPolicy) -> bool {
    loop {
        let sealed = store.sealed_snapshot();
        let Some(run) = candidate_run(&sealed, policy) else {
            return false;
        };
        // Merge off the lock; splice only if the run survived untouched.
        let merged = Arc::new(SealedSegment::merge(&run, store.config().columnar));
        if store.replace_run(&run, merged) {
            return true;
        }
    }
}

impl LogStore {
    /// Run compaction to quiescence on the calling thread (deterministic
    /// variant for tests and benchmarks — the background path calls the
    /// same code). Returns the number of merges performed. Uses the
    /// configured policy, or the default when compaction is not enabled
    /// on this store.
    pub fn compact_now(&self) -> usize {
        let policy = self.config().compaction.clone().unwrap_or_default();
        let mut merges = 0;
        while compact_once(self, &policy) {
            merges += 1;
        }
        merges
    }
}

/// Kick a background compaction task if the policy asks for one and no
/// task is already running. Called after every seal; the flag keeps it
/// to at most one compactor thread per store.
pub(crate) fn maybe_spawn(store: &LogStore) {
    let Some(policy) = store.config().compaction.clone() else {
        return;
    };
    {
        let sealed = store.sealed_snapshot();
        if candidate_run(&sealed, &policy).is_none() {
            return;
        }
    }
    if store
        .compacting_flag()
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return;
    }
    let Some(store) = store.strong_opt() else {
        store.compacting_flag().store(false, Ordering::Release);
        return;
    };
    tokio::task::spawn(async move {
        while compact_once(&store, &policy) {}
        store.compacting_flag().store(false, Ordering::Release);
    });
}

#[cfg(test)]
mod tests {
    use crate::store::{LogConfig, LogStore};
    use serde_json::json;

    fn small_store(compaction: Option<super::CompactionPolicy>) -> std::sync::Arc<LogStore> {
        LogStore::with_config(
            "t",
            LogConfig {
                segment_capacity: 8,
                columnar: true,
                compaction,
                ..Default::default()
            },
        )
    }

    #[test]
    fn compact_now_merges_small_runs() {
        // No auto-compaction: the append path would otherwise kick a
        // background merge and race the counts below. `compact_now`
        // falls back to the default policy.
        let log = small_store(None);
        for i in 0..64 {
            log.append(json!({"i": i, "kind": "telemetry"}));
        }
        let (before, _) = log.segment_counts();
        assert_eq!(before, 8);
        let all_before = log.read_all();
        assert!(log.compact_now() > 0);
        let (after, columnar) = log.segment_counts();
        assert!(after < before, "merging must reduce segment count");
        assert_eq!(columnar, after, "merged segments are columnar");
        // Record-level contents are untouched.
        assert_eq!(log.read_all(), all_before);
    }

    #[test]
    fn compaction_respects_target_size() {
        let log = small_store(Some(super::CompactionPolicy {
            min_segments: 2,
            target_records: 16,
        }));
        for i in 0..128 {
            log.append(json!({"i": i}));
        }
        log.compact_now();
        let (sealed, _) = log.segment_counts();
        // 128 records, ≤32 per merged segment → at least 4 segments left.
        assert!(sealed >= 4);
        assert!(log.compact_now() == 0, "compaction must reach quiescence");
    }

    #[test]
    fn compaction_shares_dictionaries() {
        let log = small_store(Some(super::CompactionPolicy {
            min_segments: 2,
            target_records: 1024,
        }));
        for i in 0..256 {
            log.append(json!({"kind": "energy", "room": ["kitchen", "hall"][i % 2]}));
        }
        let before = log.retained_bytes();
        log.compact_now();
        let after = log.retained_bytes();
        assert!(after <= before, "merging repetitive data must not grow");
    }

    #[test]
    fn background_compaction_converges() {
        let log = small_store(Some(super::CompactionPolicy {
            min_segments: 2,
            target_records: 64,
        }));
        for i in 0..512 {
            log.append(json!({"i": i, "kind": "telemetry"}));
        }
        // The seal path spawned compactor tasks; wait for quiescence.
        for _ in 0..200 {
            let (sealed, _) = log.segment_counts();
            if sealed <= 512 / 64 + 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        log.compact_now();
        let recs = log.read_all();
        assert_eq!(recs.len(), 512);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
    }
}
