//! Strongly-typed identifiers.
//!
//! Knactor composes services by moving state between *data stores*; getting
//! an identifier mixed up (writing to the wrong store, watching from the
//! wrong revision) is the kind of bug the type system should rule out, so
//! each identifier is its own newtype.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a knactor (a service participating in composition).
///
/// Knactor ids are plain names (`"checkout"`, `"shipping"`); the paper's
/// fully-qualified form `OnlineRetail/v1/Checkout/knactor-checkout`
/// is represented by pairing a [`KnactorId`] with its store's
/// [`crate::schema::SchemaName`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct KnactorId(pub String);

impl KnactorId {
    pub fn new(name: impl Into<String>) -> Self {
        KnactorId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for KnactorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for KnactorId {
    fn from(s: &str) -> Self {
        KnactorId(s.to_string())
    }
}

/// Identifies one data store hosted on a data exchange.
///
/// A knactor may own several stores (Fig. 4: House has one Object store and
/// one Log store), so the id is `<knactor>/<store>`, e.g. `house/config`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StoreId(pub String);

impl StoreId {
    pub fn new(name: impl Into<String>) -> Self {
        StoreId(name.into())
    }

    /// Build the conventional `<knactor>/<store>` id.
    pub fn of(knactor: &KnactorId, store: &str) -> Self {
        StoreId(format!("{}/{}", knactor.0, store))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The knactor component of a `<knactor>/<store>` id, if present.
    pub fn knactor(&self) -> Option<KnactorId> {
        self.0
            .split_once('/')
            .map(|(k, _)| KnactorId(k.to_string()))
    }
}

impl fmt::Display for StoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StoreId {
    fn from(s: &str) -> Self {
        StoreId(s.to_string())
    }
}

/// Key of one state object within a store (e.g. `order-1042`).
///
/// Backed by `Arc<str>` so keys travel through events, watch histories,
/// and fan-out queues as reference bumps rather than heap copies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ObjectKey(pub std::sync::Arc<str>);

impl ObjectKey {
    pub fn new(key: impl Into<std::sync::Arc<str>>) -> Self {
        ObjectKey(key.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> Self {
        ObjectKey(s.into())
    }
}

/// A store-wide, strictly monotonic revision number.
///
/// Every committed mutation bumps the store revision by exactly one; watch
/// streams are ordered by revision and resumable from any revision. This is
/// the same role `resourceVersion` plays for the Kubernetes apiserver the
/// paper built on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Revision(pub u64);

impl Revision {
    /// The revision before any write; watches from `ZERO` replay everything.
    pub const ZERO: Revision = Revision(0);

    pub fn next(self) -> Revision {
        Revision(self.0 + 1)
    }
}

impl fmt::Display for Revision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_id_of_builds_qualified_name() {
        let id = StoreId::of(&KnactorId::new("house"), "config");
        assert_eq!(id.as_str(), "house/config");
        assert_eq!(id.knactor(), Some(KnactorId::new("house")));
    }

    #[test]
    fn bare_store_id_has_no_knactor() {
        assert_eq!(StoreId::new("solo").knactor(), None);
    }

    #[test]
    fn revisions_are_ordered_and_monotonic() {
        let r = Revision::ZERO;
        assert!(r.next() > r);
        assert_eq!(r.next(), Revision(1));
        assert_eq!(r.next().next(), Revision(2));
    }

    #[test]
    fn ids_serialize_transparently() {
        let k = KnactorId::new("checkout");
        assert_eq!(serde_json::to_string(&k).unwrap(), "\"checkout\"");
        let back: KnactorId = serde_json::from_str("\"checkout\"").unwrap();
        assert_eq!(back, k);
        let r = Revision(42);
        assert_eq!(serde_json::to_string(&r).unwrap(), "42");
    }
}
