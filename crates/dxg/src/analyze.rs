//! Static analysis over DXG specifications.
//!
//! The paper (§5) argues that making data exchanges explicit lets the
//! framework bring program-analysis tooling to composition. This module
//! implements the two analyses the paper names — **loop detection** and
//! **unused state detection** — plus the checks a registry of schemas
//! makes possible: unknown references and unfilled `external` fields.

use crate::spec::{Assignment, Dxg};
use knactor_types::{FieldPath, Schema};
use std::collections::BTreeMap;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The spec cannot execute correctly.
    Error,
    /// Suspicious but executable.
    Warning,
    /// Informational (e.g. unused declared state).
    Info,
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub severity: Severity,
    pub code: &'static str,
    pub message: String,
}

impl Finding {
    fn error(code: &'static str, message: String) -> Finding {
        Finding {
            severity: Severity::Error,
            code,
            message,
        }
    }

    fn warning(code: &'static str, message: String) -> Finding {
        Finding {
            severity: Severity::Warning,
            code,
            message,
        }
    }

    fn info(code: &'static str, message: String) -> Finding {
        Finding {
            severity: Severity::Info,
            code,
            message,
        }
    }
}

/// The result of analyzing a DXG.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// Indices of assignments participating in a dependency cycle.
    pub cyclic_assignments: Vec<usize>,
    /// A dependency-respecting evaluation order (assignment indices),
    /// present only when the graph is acyclic.
    pub order: Option<Vec<usize>>,
}

impl Analysis {
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }
}

/// Does assignment `writer`'s write overlap one of `reader`'s reads?
///
/// Overlap is prefix overlap in either direction: writing `order` affects
/// a reader of `order.cost`, and writing `order.cost` affects a reader of
/// `order`.
fn depends_on(reader: &Assignment, writer: &Assignment) -> bool {
    let w_alias = &writer.target_alias;
    let w_path = writer.target_path();
    for r in reader.read_refs() {
        let Some((alias, rest)) = split_ref(&r) else {
            continue;
        };
        if alias != *w_alias {
            continue;
        }
        let Ok(r_path) = FieldPath::parse(&rest) else {
            continue;
        };
        if w_path.is_prefix_of(&r_path) || r_path.is_prefix_of(&w_path) {
            return true;
        }
    }
    false
}

fn split_ref(r: &str) -> Option<(String, String)> {
    match r.split_once('.') {
        Some((alias, rest)) => Some((alias.to_string(), rest.to_string())),
        None => Some((r.to_string(), String::new())),
    }
}

/// Analyze without schema information: duplicate targets, dependency
/// cycles, self-dependencies, and an execution order when acyclic.
pub fn analyze(dxg: &Dxg) -> Analysis {
    let mut analysis = Analysis::default();
    let n = dxg.assignments.len();

    // Duplicate / overlapping writes to the same path.
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (&dxg.assignments[i], &dxg.assignments[j]);
            if a.target_alias == b.target_alias {
                let (pa, pb) = (a.target_path(), b.target_path());
                if pa.is_prefix_of(&pb) || pb.is_prefix_of(&pa) {
                    analysis.findings.push(Finding::error(
                        "overlapping-writes",
                        format!(
                            "assignments at lines {} and {} both write {} / {}",
                            a.line,
                            b.line,
                            a.write_ref(),
                            b.write_ref()
                        ),
                    ));
                }
            }
        }
    }

    // Dependency edges: edge i -> j when j reads what i writes
    // (i must run before j).
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, out) in edges.iter_mut().enumerate() {
        for (j, indeg) in indegree.iter_mut().enumerate() {
            if i != j && depends_on(&dxg.assignments[j], &dxg.assignments[i]) {
                out.push(j);
                *indeg += 1;
            }
        }
    }

    // Self-dependency (an assignment reading its own target) is a direct
    // loop: `x: A.x + 1` would re-trigger itself forever.
    for (i, a) in dxg.assignments.iter().enumerate() {
        if depends_on(a, a) {
            analysis.findings.push(Finding::error(
                "self-dependency",
                format!(
                    "assignment {} (line {}) reads its own target",
                    a.write_ref(),
                    a.line
                ),
            ));
            analysis.cyclic_assignments.push(i);
        }
    }

    // Kahn's algorithm; leftovers are on cycles.
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut indegree_mut = indegree.clone();
    while let Some(i) = queue.pop() {
        order.push(i);
        for &j in &edges[i] {
            indegree_mut[j] -= 1;
            if indegree_mut[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() < n {
        let mut cyclic: Vec<usize> = (0..n).filter(|i| !order.contains(i)).collect();
        let names: Vec<String> = cyclic
            .iter()
            .map(|&i| dxg.assignments[i].write_ref())
            .collect();
        analysis.findings.push(Finding::error(
            "dependency-cycle",
            format!(
                "assignments form a dependency cycle: {}",
                names.join(" -> ")
            ),
        ));
        analysis.cyclic_assignments.append(&mut cyclic);
        analysis.cyclic_assignments.sort_unstable();
        analysis.cyclic_assignments.dedup();
    } else {
        analysis.order = Some(order);
    }

    analysis
}

/// Analyze with schemas bound per alias: adds unknown-reference checking,
/// unfilled-external-field warnings, and unused-state reporting.
pub fn analyze_with_schemas(dxg: &Dxg, schemas: &BTreeMap<String, Schema>) -> Analysis {
    let mut analysis = analyze(dxg);

    for (alias, schema) in schemas {
        if !dxg.inputs.contains_key(alias) {
            analysis.findings.push(Finding::warning(
                "schema-for-unknown-alias",
                format!("schema {} bound to undeclared alias '{alias}'", schema.name),
            ));
        }
    }

    // Unknown references: the first field segment of each read and write
    // must be declared in the alias's schema.
    for a in &dxg.assignments {
        let mut check = |alias: &str, path: &FieldPath, what: &str| {
            let Some(schema) = schemas.get(alias) else {
                return;
            };
            let Some(first) = path.head_field() else {
                return;
            };
            if schema.get(first).is_none() {
                analysis.findings.push(Finding::error(
                    "unknown-field",
                    format!(
                        "{what} '{alias}.{path}' (line {}): field '{first}' not in schema {}",
                        a.line, schema.name
                    ),
                ));
            }
        };
        check(&a.target_alias, &a.target_path(), "write to");
        for r in a.read_refs() {
            if let Some((alias, rest)) = split_ref(&r) {
                if rest.is_empty() {
                    continue;
                }
                if let Ok(path) = FieldPath::parse(&rest) {
                    check(&alias, &path, "read of");
                }
            }
        }
    }

    // External fields the DXG never fills (the store declared it expects
    // an integrator to provide them).
    for (alias, schema) in schemas {
        for field in schema.external_fields() {
            let filled = dxg.assignments.iter().any(|a| {
                a.target_alias == *alias
                    && a.target_path().head_field() == Some(field.name.as_str())
            });
            if !filled {
                analysis.findings.push(Finding::warning(
                    "unfilled-external",
                    format!(
                        "external field '{alias}.{}' ({}) is never filled by this DXG",
                        field.name, schema.name
                    ),
                ));
            }
        }
    }

    // Unused state: declared fields neither read nor written.
    for (alias, schema) in schemas {
        for field in &schema.fields {
            let touched = dxg.assignments.iter().any(|a| {
                let written = a.target_alias == *alias
                    && a.target_path().head_field() == Some(field.name.as_str());
                let read = a.read_refs().iter().any(|r| {
                    split_ref(r)
                        .and_then(|(ra, rest)| {
                            if ra == *alias {
                                FieldPath::parse(&rest).ok()
                            } else {
                                None
                            }
                        })
                        .and_then(|p| p.head_field().map(|h| h == field.name))
                        .unwrap_or(false)
                });
                written || read
            });
            if !touched {
                analysis.findings.push(Finding::info(
                    "unused-state",
                    format!("field '{alias}.{}' is not used by this DXG", field.name),
                ));
            }
        }
    }

    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FIG6_RETAIL_DXG;
    use knactor_types::schema::{FieldSpec, FieldType};

    #[test]
    fn fig6_is_clean_and_ordered() {
        let dxg = Dxg::parse(FIG6_RETAIL_DXG).unwrap();
        let analysis = analyze(&dxg);
        assert!(!analysis.has_errors(), "{:?}", analysis.findings);
        let order = analysis.order.expect("acyclic");
        assert_eq!(order.len(), dxg.assignments.len());
        // Dependencies respected: P.amount (reads C.order.totalCost) may
        // be anywhere, but C.order.paymentID (reads P.id) must come after
        // nothing writes P.id in this DXG — verify ordering is at least a
        // permutation that respects S.method-before-nothing and the
        // writes-before-reads pairs that do exist:
        // C.order.shippingCost reads S.quote.* — never written here, fine.
        let pos = |write: &str| {
            order
                .iter()
                .position(|&i| dxg.assignments[i].write_ref() == write)
                .unwrap()
        };
        // P.amount and P.currency are written; nothing reads them. The
        // assignments reading C.order.* must run after writes into
        // C.order.* only when they overlap — shippingCost writes
        // C.order.shippingCost, and no assignment reads it, so any order
        // works. Sanity: all 8 present.
        assert_eq!(order.len(), 8);
        let _ = pos("C.order.shippingCost");
    }

    #[test]
    fn cycle_detected() {
        let src = "\
Input:
  A: g/v/s/a
  B: g/v/s/b
DXG:
  A:
    x: B.y
  B:
    y: A.x
";
        let dxg = Dxg::parse(src).unwrap();
        let analysis = analyze(&dxg);
        assert!(analysis.has_errors());
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.code == "dependency-cycle"));
        assert_eq!(analysis.cyclic_assignments.len(), 2);
        assert!(analysis.order.is_none());
    }

    #[test]
    fn self_dependency_detected() {
        let src = "Input:\n  A: g/v/s/a\nDXG:\n  A:\n    x: A.x + 1\n";
        let dxg = Dxg::parse(src).unwrap();
        let analysis = analyze(&dxg);
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.code == "self-dependency"));
    }

    #[test]
    fn chain_is_ordered_writes_before_reads() {
        let src = "\
Input:
  A: g/v/s/a
  B: g/v/s/b
  C: g/v/s/c
DXG:
  B:
    y: A.x
  C:
    z: B.y
";
        let dxg = Dxg::parse(src).unwrap();
        let analysis = analyze(&dxg);
        assert!(!analysis.has_errors());
        let order = analysis.order.unwrap();
        let by = order
            .iter()
            .position(|&i| dxg.assignments[i].write_ref() == "B.y")
            .unwrap();
        let cz = order
            .iter()
            .position(|&i| dxg.assignments[i].write_ref() == "C.z")
            .unwrap();
        assert!(by < cz, "B.y must be computed before C.z reads it");
    }

    #[test]
    fn overlapping_writes_detected() {
        let src = "\
Input:
  A: g/v/s/a
  B: g/v/s/b
DXG:
  A:
    order: B.whole
    order.cost: B.cost
";
        let dxg = Dxg::parse(src).unwrap();
        let analysis = analyze(&dxg);
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.code == "overlapping-writes"));
    }

    #[test]
    fn prefix_overlap_creates_dependency() {
        // Writing A.order (whole object) then reading A.order.cost.
        let src = "\
Input:
  A: g/v/s/a
  B: g/v/s/b
  C: g/v/s/c
DXG:
  A.order:
    cost: B.cost
  C:
    x: A.order.cost * 2
";
        let dxg = Dxg::parse(src).unwrap();
        let analysis = analyze(&dxg);
        let order = analysis.order.unwrap();
        let w = order
            .iter()
            .position(|&i| dxg.assignments[i].write_ref() == "A.order.cost")
            .unwrap();
        let r = order
            .iter()
            .position(|&i| dxg.assignments[i].write_ref() == "C.x")
            .unwrap();
        assert!(w < r);
    }

    fn checkout_schema() -> Schema {
        Schema::new("OnlineRetail/v1/Checkout/Order")
            .field(FieldSpec::new("order", FieldType::Object))
            .field(FieldSpec::new("neverTouched", FieldType::String))
    }

    #[test]
    fn unknown_field_reported_with_schemas() {
        let src = "Input:\n  C: g/v/s/c\n  S: g/v/s/s\nDXG:\n  S:\n    x: C.bogus.y\n";
        let dxg = Dxg::parse(src).unwrap();
        let mut schemas = BTreeMap::new();
        schemas.insert("C".to_string(), checkout_schema());
        let analysis = analyze_with_schemas(&dxg, &schemas);
        assert!(analysis.findings.iter().any(|f| f.code == "unknown-field"));
    }

    #[test]
    fn unused_and_unfilled_reported() {
        let src = "Input:\n  C: g/v/s/c\n  S: g/v/s/s\nDXG:\n  S:\n    x: C.order.cost\n";
        let dxg = Dxg::parse(src).unwrap();
        let mut schemas = BTreeMap::new();
        schemas.insert(
            "C".to_string(),
            Schema::new("T/v1/C/K")
                .field(FieldSpec::new("order", FieldType::Object))
                .field(FieldSpec::new("unused", FieldType::String))
                .field(FieldSpec::new("tracking", FieldType::String).external()),
        );
        let analysis = analyze_with_schemas(&dxg, &schemas);
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.code == "unused-state" && f.message.contains("C.unused")));
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.code == "unfilled-external" && f.message.contains("C.tracking")));
        assert!(!analysis.has_errors());
    }
}
