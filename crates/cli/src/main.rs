//! `knactorctl` — the operator CLI for the Knactor framework.
//!
//! ```text
//! knactorctl schema validate <file>       check a schema file, list external fields
//! knactorctl schema show <file>           parse and re-render a schema
//! knactorctl dxg validate <file>          parse a DXG spec and run static analysis
//! knactorctl dxg plan <file>              show the consolidated execution plan
//! knactorctl plan --explain <file>        score execution candidates per edge (cost model)
//! knactorctl dxg udf <file>               export the DXG as pushdown UDF assignments
//! knactorctl diff <old> <new>             diff two DXGs + composer dry-run of edge actions
//! knactorctl codegen <schema-file>        generate typed Rust accessors
//! knactorctl metrics <addr> [--watch|--prom]  scrape a live exchange's metrics
//! knactorctl serve [--shards N] [--port P]    run exchange shard nodes
//! knactorctl serve --replicas N [--port P]    run a leader + N replicating followers
//! ```

mod codegen;
mod metrics;
mod serve;

use knactor_dxg::{analyze, Dxg, Plan, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match arg_strs.as_slice() {
        ["schema", "validate", file] => schema_validate(file),
        ["schema", "show", file] => schema_show(file),
        ["dxg", "validate", file] => dxg_validate(file),
        ["dxg", "plan", file] => dxg_plan(file),
        ["plan", "--explain", file]
        | ["plan", file, "--explain"]
        | ["dxg", "plan", "--explain", file] => plan_explain(file),
        ["dxg", "udf", file] => dxg_udf(file),
        ["dxg", "diff", old, new] => dxg_diff(old, new),
        ["diff", old, new] => composer_diff(old, new),
        ["codegen", file] => codegen_cmd(file),
        ["metrics", addr] => metrics::run(addr, false, false),
        ["metrics", addr, "--watch"] | ["metrics", "--watch", addr] => {
            metrics::run(addr, true, false)
        }
        ["metrics", addr, "--prom"] | ["metrics", "--prom", addr] => {
            metrics::run(addr, false, true)
        }
        ["serve", rest @ ..] => serve_cmd(rest),
        ["help"] | ["--help"] | ["-h"] | [] => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {}\n", other.join(" "));
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "knactorctl — operate knactors, validate specs, generate code\n\n\
     USAGE:\n\
     \u{20}   knactorctl schema validate <file>\n\
     \u{20}   knactorctl schema show <file>\n\
     \u{20}   knactorctl dxg validate <file>\n\
     \u{20}   knactorctl dxg plan <file>\n\
     \u{20}   knactorctl plan --explain <file>\n\
     \u{20}   knactorctl dxg udf <file>\n\
     \u{20}   knactorctl dxg diff <old> <new>\n\
     \u{20}   knactorctl diff <old> <new>\n\
     \u{20}   knactorctl codegen <schema-file>\n\
     \u{20}   knactorctl metrics <addr> [--watch|--prom]\n\
     \u{20}   knactorctl serve [--shards N] [--port P]\n\
     \u{20}   knactorctl serve --replicas N [--port P]\n"
        .to_string()
}

/// Parse `serve` flags: `--shards N` (default 1), `--replicas N`
/// (leader + N followers; exclusive with `--shards`), and `--port P`
/// (default 7070, consecutive ports for the remaining nodes).
fn serve_cmd(rest: &[&str]) -> ExitCode {
    let mut shards = 1usize;
    let mut replicas: Option<usize> = None;
    let mut port = 7070u16;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<&str>| -> Option<String> {
            it.next().map(|v| v.to_string())
        };
        match *flag {
            "--shards" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) => shards = n,
                None => {
                    eprintln!("--shards needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--replicas" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) => replicas = Some(n),
                None => {
                    eprintln!("--replicas needs a follower count");
                    return ExitCode::FAILURE;
                }
            },
            "--port" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(p) => port = p,
                None => {
                    eprintln!("--port needs a port number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown serve flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match replicas {
        Some(_) if shards != 1 => {
            eprintln!(
                "--replicas and --shards are exclusive: a node set either shards or replicates"
            );
            ExitCode::FAILURE
        }
        Some(followers) => serve::run_replicated(followers, port),
        None => serve::run(shards, port),
    }
}

fn read(file: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(file).map_err(|e| {
        eprintln!("cannot read {file}: {e}");
        ExitCode::FAILURE
    })
}

fn schema_validate(file: &str) -> ExitCode {
    let text = match read(file) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match knactor_core::parse_schema(&text) {
        Ok(schema) => {
            println!("schema {} is valid", schema.name);
            println!("  {} fields", schema.fields.len());
            let external: Vec<&str> = schema.external_fields().map(|f| f.name.as_str()).collect();
            if external.is_empty() {
                println!("  no external fields (nothing for integrators to fill)");
            } else {
                println!(
                    "  external fields (integrator-filled): {}",
                    external.join(", ")
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("invalid schema: {e}");
            ExitCode::FAILURE
        }
    }
}

fn schema_show(file: &str) -> ExitCode {
    let text = match read(file) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match knactor_core::parse_schema(&text) {
        Ok(schema) => {
            print!("{}", knactor_core::schema_to_yaml(&schema));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("invalid schema: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_dxg(file: &str) -> Result<Dxg, ExitCode> {
    let text = read(file)?;
    Dxg::parse(&text).map_err(|e| {
        eprintln!("invalid DXG: {e}");
        ExitCode::FAILURE
    })
}

fn dxg_validate(file: &str) -> ExitCode {
    let dxg = match load_dxg(file) {
        Ok(d) => d,
        Err(code) => return code,
    };
    println!(
        "DXG parsed: {} inputs, {} assignments",
        dxg.inputs.len(),
        dxg.assignments.len()
    );
    let analysis = analyze::analyze(&dxg);
    if analysis.findings.is_empty() {
        println!("static analysis: clean");
    }
    for f in &analysis.findings {
        let tag = match f.severity {
            Severity::Error => "ERROR",
            Severity::Warning => "WARN ",
            Severity::Info => "INFO ",
        };
        println!("  {tag} [{}] {}", f.code, f.message);
    }
    if analysis.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn dxg_plan(file: &str) -> ExitCode {
    let dxg = match load_dxg(file) {
        Ok(d) => d,
        Err(code) => return code,
    };
    match Plan::build(&dxg) {
        Ok(plan) => {
            println!(
                "plan: {} assignments consolidated into {} write steps",
                plan.assignment_count(),
                plan.write_ops()
            );
            for (i, step) in plan.steps.iter().enumerate() {
                println!("  step {} -> {}", i + 1, step.target_alias);
                for &idx in &step.assignments {
                    let a = &dxg.assignments[idx];
                    println!("      {} = {}", a.write_ref(), a.source.trim());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot plan: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `plan --explain`: slice the DXG into per-target edges and print the
/// cost model's verdict for each — both candidates with their derivation,
/// eligibility, the winner, and the consolidation saving. Offline static
/// costs (a Redis-like engine); the live tuner runs the same model over
/// measured windows.
fn plan_explain(file: &str) -> ExitCode {
    use knactor_dxg::cost::{explain, CostModel, StaticCosts};
    let dxg = match load_dxg(file) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let costs = StaticCosts::default();
    let reports = match explain(&dxg, &costs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cost model (static: read {:.0}µs, write {:.0}µs, eval {:.0}µs per step)",
        costs.read_seconds * 1e6,
        costs.write_seconds * 1e6,
        costs.eval_seconds * 1e6
    );
    for (report, plan) in &reports {
        let best = report.best().map(|c| c.choice);
        println!("edge {} (cast:{}):", report.edge, report.edge);
        for c in &report.candidates {
            let marker = if Some(c.choice) == best { "→" } else { " " };
            let eligible = if c.eligible { "" } else { "  [ineligible]" };
            println!(
                "  {marker} {:<8} {:>9.1}µs/activation{}  ({})",
                c.choice.to_string(),
                c.per_activation * 1e6,
                eligible,
                c.note
            );
        }
        let (naive, consolidated) = CostModel::default().consolidation(plan);
        println!("    consolidation: {naive} assignments → {consolidated} write op(s)");
    }
    ExitCode::SUCCESS
}

fn dxg_udf(file: &str) -> ExitCode {
    let dxg = match load_dxg(file) {
        Ok(d) => d,
        Err(code) => return code,
    };
    match Plan::build(&dxg) {
        Ok(plan) => {
            println!("inputs: {}", Plan::udf_inputs(&dxg).join(", "));
            for a in plan.to_udf_assignments(&dxg) {
                println!("  {}.{} := {}", a.target_alias, a.target_path, a.expr);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot export: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dxg_diff(old: &str, new: &str) -> ExitCode {
    let (old, new) = match (load_dxg(old), load_dxg(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let changes = knactor_dxg::diff(&old, &new);
    if changes.is_empty() {
        println!("specs are equivalent (no exchange-level changes)");
        return ExitCode::SUCCESS;
    }
    println!("{} exchange-level change(s):", changes.len());
    for c in &changes {
        println!("  {c}");
    }
    ExitCode::SUCCESS
}

fn composer_diff(old: &str, new: &str) -> ExitCode {
    let (old, new) = match (load_dxg(old), load_dxg(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let changes = knactor_dxg::diff(&old, &new);
    if changes.is_empty() {
        println!("specs are equivalent (no exchange-level changes)");
    } else {
        println!("{} exchange-level change(s):", changes.len());
        for c in &changes {
            println!("  {c}");
        }
    }
    // Dry-run: what a live Composer::apply of the new spec would do to a
    // system currently running the old one, edge by edge.
    println!("\ncomposer dry-run (per-edge actions):");
    let mut counts = std::collections::BTreeMap::new();
    for (alias, action) in knactor_core::cast_edge_actions(&old, &new) {
        println!("  cast:{alias:<12} {action}");
        *counts.entry(action.to_string()).or_insert(0u32) += 1;
    }
    let summary: Vec<String> = counts.iter().map(|(a, n)| format!("{n} {a}")).collect();
    println!("  => {}", summary.join(", "));
    ExitCode::SUCCESS
}

fn codegen_cmd(file: &str) -> ExitCode {
    let text = match read(file) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match knactor_core::parse_schema(&text) {
        Ok(schema) => {
            print!("{}", codegen::generate(&schema));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("invalid schema: {e}");
            ExitCode::FAILURE
        }
    }
}
