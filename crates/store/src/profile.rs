//! Engine profiles: the knobs that turn one store core into the paper's
//! different Object exchanges.
//!
//! The paper evaluates three configurations (Table 2):
//!
//! * **K-apiserver** — Kubernetes apiserver semantics: every write is
//!   persisted (WAL + fsync) before acknowledgement, and watchers learn
//!   about changes with list-watch polling cadence rather than
//!   immediately. Strong durability, tens of milliseconds of propagation.
//! * **K-redis** — in-memory store: no persistence, push-style watch
//!   notification, sub-millisecond operations.
//! * **K-redis-udf** — K-redis plus integrator pushdown; the pushdown
//!   itself lives in [`crate::udf`], not the profile.
//!
//! A profile also carries a per-operation processing delay, modelling the
//! request handling cost of the real system the engine stands in for
//! (the apiserver's admission/serialization pipeline is far heavier than
//! Redis's command loop). Delays are applied in the async
//! [`crate::handle::StoreHandle`], never inside the sync core, so unit
//! tests of store logic stay instant.

use std::path::PathBuf;
use std::time::Duration;

/// How watchers learn about committed events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchDelivery {
    /// Events are pushed to watch streams as they commit.
    Push,
    /// Watch streams poll: events become visible at the next tick of a
    /// fixed-interval poller (Kubernetes list-watch cadence).
    Poll { interval: Duration },
}

/// Configuration of one store engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Human-readable engine name (shows up in benchmarks and traces).
    pub name: String,
    /// Write-ahead log path; `None` disables persistence.
    pub wal_path: Option<PathBuf>,
    /// fsync each commit (only meaningful with a WAL).
    pub fsync: bool,
    /// Extra processing delay applied to every read operation.
    pub read_delay: Duration,
    /// Extra processing delay applied to every write operation
    /// (on top of any real WAL/fsync cost).
    pub write_delay: Duration,
    /// Watch delivery behaviour.
    pub watch: WatchDelivery,
    /// How many committed events the store retains for watch replay.
    /// Watches resuming from before this window get
    /// [`knactor_types::Error::WatchTooOld`] and must re-list.
    pub history_cap: usize,
    /// Per-subscriber watch backlog bound: a subscriber whose unread
    /// event queue reaches this depth is cut from the fan-out with a
    /// typed resume point instead of queueing without bound (and
    /// without ever blocking the shared outbox drainer).
    pub watch_lag_cap: usize,
    /// Replication ack quorum: how many followers must durably stage a
    /// commit before it is acknowledged (`Durability::Replicated(n)`).
    /// `0` disables the quorum wait (single-node operation). Only
    /// meaningful on a store with an attached
    /// [`crate::repl::ReplState`] whose node is leading.
    pub repl_acks: usize,
}

/// Default watch-replay window, sized so short reconnect gaps replay
/// cheaply while a hot store's memory stays bounded.
pub const DEFAULT_HISTORY_CAP: usize = 8192;

/// Default per-subscriber lag bound. Matches the history window: a
/// subscriber cut at this depth can always resume through history
/// replay, so the cutoff is recoverable rather than lossy.
pub const DEFAULT_WATCH_LAG_CAP: usize = DEFAULT_HISTORY_CAP;

impl EngineProfile {
    /// The Kubernetes-apiserver-like engine: durable, deliberate.
    ///
    /// `dir` receives the WAL file. The 10 ms poll interval and
    /// millisecond-scale op delays reproduce the *relative* cost the
    /// paper measured for K-apiserver, on top of the very real fsync.
    pub fn apiserver(dir: impl Into<PathBuf>, store_name: &str) -> EngineProfile {
        let mut wal = dir.into();
        wal.push(format!("{}.wal", store_name.replace('/', "_")));
        EngineProfile {
            name: "apiserver".to_string(),
            wal_path: Some(wal),
            fsync: true,
            read_delay: Duration::from_micros(1500),
            write_delay: Duration::from_micros(2500),
            watch: WatchDelivery::Poll {
                interval: Duration::from_millis(10),
            },
            history_cap: DEFAULT_HISTORY_CAP,
            watch_lag_cap: DEFAULT_WATCH_LAG_CAP,
            repl_acks: 0,
        }
    }

    /// Durable with no modelled latency: fsync-on-commit WAL, push
    /// watches, zero simulated op delays. The profile for measuring the
    /// *real* durability pipeline (wire + framing + group fsync) — and
    /// the per-shard engine of a sharded exchange, where each node's WAL
    /// is its genuine serial resource.
    pub fn durable(dir: impl Into<PathBuf>, store_name: &str) -> EngineProfile {
        let mut wal = dir.into();
        wal.push(format!("{}.wal", store_name.replace('/', "_")));
        EngineProfile {
            name: "durable".to_string(),
            wal_path: Some(wal),
            fsync: true,
            read_delay: Duration::ZERO,
            write_delay: Duration::ZERO,
            watch: WatchDelivery::Push,
            history_cap: DEFAULT_HISTORY_CAP,
            watch_lag_cap: DEFAULT_WATCH_LAG_CAP,
            repl_acks: 0,
        }
    }

    /// The Redis-like engine: in-memory, immediate notification.
    ///
    /// The per-op delays model one in-cluster command round trip to a
    /// remote Redis (network RTT + command processing) — the paper's
    /// K-redis ran against a Redis pod, not an in-process map.
    pub fn redis() -> EngineProfile {
        EngineProfile {
            name: "redis".to_string(),
            wal_path: None,
            fsync: false,
            read_delay: Duration::from_micros(250),
            write_delay: Duration::from_micros(300),
            watch: WatchDelivery::Push,
            history_cap: DEFAULT_HISTORY_CAP,
            watch_lag_cap: DEFAULT_WATCH_LAG_CAP,
            repl_acks: 0,
        }
    }

    /// A zero-latency engine for unit tests and logic-only benchmarks.
    pub fn instant() -> EngineProfile {
        EngineProfile {
            name: "instant".to_string(),
            wal_path: None,
            fsync: false,
            read_delay: Duration::ZERO,
            write_delay: Duration::ZERO,
            watch: WatchDelivery::Push,
            history_cap: DEFAULT_HISTORY_CAP,
            watch_lag_cap: DEFAULT_WATCH_LAG_CAP,
            repl_acks: 0,
        }
    }

    /// Rename the profile (useful when benchmarks run several variants).
    pub fn named(mut self, name: impl Into<String>) -> EngineProfile {
        self.name = name.into();
        self
    }

    /// Require `acks` follower acknowledgements before a write acks
    /// (see [`crate::repl`]).
    pub fn replicated(mut self, acks: usize) -> EngineProfile {
        self.repl_acks = acks;
        self
    }

    pub fn is_durable(&self) -> bool {
        self.wal_path.is_some()
    }
}

impl Default for EngineProfile {
    fn default() -> Self {
        EngineProfile::instant()
    }
}

/// Sleep for `d` with sub-millisecond fidelity.
///
/// Tokio's timer has ~1 ms granularity; engine-profile delays are often
/// tens to hundreds of microseconds, and rounding them all up to a
/// millisecond would distort every latency experiment. Short delays
/// spin (yielding to the scheduler between checks); long ones use the
/// timer.
pub async fn precise_sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d >= Duration::from_millis(2) {
        tokio::time::sleep(d).await;
        return;
    }
    let deadline = std::time::Instant::now() + d;
    while std::time::Instant::now() < deadline {
        tokio::task::yield_now().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        let tmp = std::env::temp_dir();
        let api = EngineProfile::apiserver(&tmp, "checkout/state");
        assert!(api.is_durable());
        assert!(api.fsync);
        assert!(matches!(api.watch, WatchDelivery::Poll { .. }));
        assert!(api
            .wal_path
            .unwrap()
            .to_string_lossy()
            .contains("checkout_state"));

        let redis = EngineProfile::redis();
        assert!(!redis.is_durable());
        assert_eq!(redis.watch, WatchDelivery::Push);
        assert!(redis.write_delay < api.write_delay);

        let instant = EngineProfile::instant();
        assert_eq!(instant.read_delay, Duration::ZERO);
    }

    #[test]
    fn named_overrides_name_only() {
        let p = EngineProfile::redis().named("redis-variant");
        assert_eq!(p.name, "redis-variant");
        assert_eq!(p.watch, WatchDelivery::Push);
    }
}
