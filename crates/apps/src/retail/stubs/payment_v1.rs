// >>> T1-API
//! Generated-style stub for `OnlineRetail.Payment` v1.

use knactor_rpc::RpcClient;
use knactor_types::{Error, Result};
use serde::{Deserialize, Serialize};

pub const METHOD_CHARGE: &str = "Payment.v1/Charge";

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ChargeRequest {
    pub amount: f64,
    pub currency: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ChargeResponse {
    pub payment_id: String,
}

pub struct PaymentClient<'c> {
    inner: &'c RpcClient,
}

impl<'c> PaymentClient<'c> {
    pub fn new(inner: &'c RpcClient) -> Self {
        PaymentClient { inner }
    }

    pub async fn charge(&self, request: ChargeRequest) -> Result<ChargeResponse> {
        let payload = serde_json::to_value(&request)?;
        let reply = self.inner.call(METHOD_CHARGE, payload).await?;
        serde_json::from_value(reply)
            .map_err(|e| Error::SchemaViolation(format!("ChargeResponse: {e}")))
    }
}
// <<< T1-API
