//! Property tests for the workload generator: seeded determinism and
//! Zipf frequencies that match theory.
//!
//! Every assertion message carries the seed, so a failing case replays
//! exactly — the determinism guarantee these tests pin down is the same
//! one that makes that replay possible.

use knactor_loadgen::{LoadOp, OpGen, WorkloadSpec, Zipf};
use proptest::prelude::*;

/// Two generators built from the same spec must produce identical
/// operation sequences — key choice, value payloads, batch contents,
/// everything.
fn assert_deterministic(spec: WorkloadSpec, ops: usize) {
    let seed = spec.seed;
    let mut a = OpGen::new(spec.clone());
    let mut b = OpGen::new(spec);
    for i in 0..ops {
        let (x, y) = (a.next_op(), b.next_op());
        assert_eq!(x, y, "op {i} diverged (seed {seed:#x})");
    }
}

/// A generator must be insensitive to what other generators do: a
/// third instance interleaved differently still matches.
fn assert_independent(spec: WorkloadSpec, ops: usize) {
    let seed = spec.seed;
    let mut a = OpGen::new(spec.clone());
    let reference: Vec<LoadOp> = (0..ops).map(|_| a.next_op()).collect();

    let mut decoy = OpGen::new(WorkloadSpec::retail(seed ^ 0xDEAD_BEEF));
    let mut c = OpGen::new(spec);
    for (i, expected) in reference.iter().enumerate() {
        let _ = decoy.next_op(); // unrelated generator churning alongside
        assert_eq!(
            &c.next_op(),
            expected,
            "op {i} affected by unrelated generator (seed {seed:#x})"
        );
    }
}

proptest! {
    #[test]
    fn retail_sequences_are_deterministic(seed in any::<u64>()) {
        assert_deterministic(WorkloadSpec::retail(seed), 200);
    }

    #[test]
    fn smarthome_sequences_are_deterministic(seed in any::<u64>()) {
        assert_deterministic(WorkloadSpec::smarthome(seed), 200);
    }

    #[test]
    fn sequences_are_independent_of_other_generators(seed in any::<u64>()) {
        assert_independent(WorkloadSpec::retail(seed), 100);
    }

    /// Empirical Zipf frequencies track the precomputed distribution:
    /// over many samples the hottest rank's observed share converges on
    /// its theoretical mass.
    #[test]
    fn zipf_matches_theory(seed in any::<u64>(), theta in 0.0f64..1.2) {
        let n = 64usize;
        let samples = 20_000usize;
        let zipf = Zipf::new(n, theta);
        let mut rng = knactor_net::FaultRng::new(seed);
        let mut counts = vec![0u64; n];
        for _ in 0..samples {
            counts[zipf.sample(rng.unit())] += 1;
        }
        // Check the head (largest mass, tightest relative bound) and a
        // mid rank against theory with a tolerance comfortably above
        // binomial noise at 20k samples.
        for rank in [0usize, 7] {
            let expected = zipf.mass(rank);
            let observed = counts[rank] as f64 / samples as f64;
            let tolerance = 0.02 + expected * 0.15;
            prop_assert!(
                (observed - expected).abs() <= tolerance,
                "rank {rank}: observed {observed:.4}, expected {expected:.4} ± {tolerance:.4} \
                 (seed {seed:#x}, theta {theta})"
            );
        }
    }
}

#[test]
fn same_seed_same_sequence_across_presets() {
    // Fixed-seed smoke twin of the property: a seed that shows up in CI
    // logs reproduces the exact sequence on a developer machine.
    assert_deterministic(WorkloadSpec::retail(0x6C6F_6164), 500);
    assert_deterministic(WorkloadSpec::smarthome(0x6C6F_6164), 500);
}

#[test]
fn different_seeds_diverge() {
    let mut a = OpGen::new(WorkloadSpec::retail(1));
    let mut b = OpGen::new(WorkloadSpec::retail(2));
    let a_ops: Vec<LoadOp> = (0..100).map(|_| a.next_op()).collect();
    let b_ops: Vec<LoadOp> = (0..100).map(|_| b.next_op()).collect();
    assert_ne!(a_ops, b_ops, "seeds 1 and 2 produced identical sequences");
}
