//! Write-ahead log for the durable ("apiserver-like") engine.
//!
//! One JSON-serialized [`WatchEvent`] per line. A commit appends the event
//! and optionally `fsync`s — the fsync is precisely where the paper's
//! K-apiserver configuration pays its latency (Table 2: 20.6 ms between
//! Checkout and the integrator vs 3.2 ms for K-redis).
//!
//! Replay is total: a truncated final line (torn write) is ignored, and
//! everything before it is recovered.

use crate::event::WatchEvent;
use knactor_types::{Error, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// An append-only event log on disk.
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
    fsync: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("fsync", &self.fsync)
            .finish()
    }
}

impl Wal {
    /// Open (creating if absent) the log at `path`.
    pub fn open(path: impl AsRef<Path>, fsync: bool) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            file: Mutex::new(file),
            fsync,
        })
    }

    /// Append one committed event. With `fsync` enabled the call returns
    /// only after the OS confirms the write is on stable storage.
    pub fn append(&self, event: &WatchEvent) -> Result<()> {
        let mut line = serde_json::to_vec(event)?;
        line.push(b'\n');
        let mut file = self.file.lock();
        file.write_all(&line)?;
        if self.fsync {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Read every complete event in the log, in append order.
    ///
    /// A torn final line is tolerated; a corrupt line *before* the end is
    /// an error because it means the prefix already replayed is suspect.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WatchEvent>> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let reader = BufReader::new(File::open(path)?);
        let mut events = Vec::new();
        let mut pending_error: Option<String> = None;
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(msg) = pending_error.take() {
                // The bad line was not the last one: real corruption.
                return Err(Error::Internal(format!("corrupt WAL entry: {msg}")));
            }
            match serde_json::from_str::<WatchEvent>(&line) {
                Ok(e) => events.push(e),
                Err(e) => pending_error = Some(format!("line {}: {e}", idx + 1)),
            }
        }
        // pending_error still set => torn tail; drop it silently.
        Ok(events)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use knactor_types::{ObjectKey, Revision};
    use serde_json::json;

    fn ev(rev: u64) -> WatchEvent {
        WatchEvent {
            revision: Revision(rev),
            kind: EventKind::Created,
            key: ObjectKey::new(format!("k{rev}")),
            value: json!({"r": rev}).into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("knactor-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("basic");
        let wal = Wal::open(&path, false).unwrap();
        for r in 1..=5 {
            wal.append(&ev(r)).unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[4].revision, Revision(5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert_eq!(Wal::replay("/nonexistent/knactor-wal").unwrap().len(), 0);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&ev(1)).unwrap();
        wal.append(&ev(2)).unwrap();
        drop(wal);
        // Simulate a crash mid-append.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"revision\":3,\"kind\":\"crea").unwrap();
        drop(f);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = tmp("corrupt");
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(1)).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage line\n").unwrap();
        }
        {
            let wal = Wal::open(&path, false).unwrap();
            wal.append(&ev(2)).unwrap();
        }
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_mode_still_appends() {
        let path = tmp("fsync");
        let wal = Wal::open(&path, true).unwrap();
        wal.append(&ev(1)).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
