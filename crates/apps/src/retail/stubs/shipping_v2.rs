// >>> T3-API
//! Generated-style stub for `OnlineRetail.Shipping` **v2** (task T3).
//!
//! The Shipping team evolved its API: `addr` became `destination`, a
//! required `contact` was added, and the quote moved inside the ship
//! response. In the API-centric world every consumer must regenerate
//! this stub *and* adapt its call sites, then rebuild and redeploy.

use knactor_rpc::RpcClient;
use knactor_types::{Error, Result};
use serde::{Deserialize, Serialize};

pub const METHOD_GET_QUOTE: &str = "Shipping.v2/GetQuote";
pub const METHOD_SHIP_ORDER: &str = "Shipping.v2/ShipOrder";

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GetQuoteRequest {
    pub destination: String,
    pub items: Vec<String>,
    pub contact: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Quote {
    pub price: f64,
    pub currency: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GetQuoteResponse {
    pub quote: Quote,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShipOrderRequest {
    pub destination: String,
    pub items: Vec<String>,
    pub contact: String,
    pub method: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShipOrderResponse {
    pub tracking_id: String,
    pub quote: Quote,
}

pub struct ShippingClient<'c> {
    inner: &'c RpcClient,
}

impl<'c> ShippingClient<'c> {
    pub fn new(inner: &'c RpcClient) -> Self {
        ShippingClient { inner }
    }

    pub async fn get_quote(&self, request: GetQuoteRequest) -> Result<GetQuoteResponse> {
        let payload = serde_json::to_value(&request)?;
        let reply = self.inner.call(METHOD_GET_QUOTE, payload).await?;
        serde_json::from_value(reply)
            .map_err(|e| Error::SchemaViolation(format!("GetQuoteResponse: {e}")))
    }

    pub async fn ship_order(&self, request: ShipOrderRequest) -> Result<ShipOrderResponse> {
        let payload = serde_json::to_value(&request)?;
        let reply = self.inner.call(METHOD_SHIP_ORDER, payload).await?;
        serde_json::from_value(reply)
            .map_err(|e| Error::SchemaViolation(format!("ShipOrderResponse: {e}")))
    }
}
// <<< T3-API
