//! The chaos suite, re-run against a **4-shard exchange**: every invariant
//! the single-node chaos suite proves (`tests/chaos_recovery.rs`) must
//! survive sharding, because the [`ShardRouter`] is just another
//! [`ExchangeApi`] — integrator code cannot tell the difference.
//!
//! Faults are injected per shard: each shard node sits behind its own
//! seeded [`FaultProxy`], and the router's per-shard [`ResilientClient`]s
//! retry and resume **per shard** — a fault on one node never re-sends
//! another node's traffic.
//!
//! Seeds follow the chaos convention: printed at the top, overridable
//! with `CHAOS_SEED=<seed>` for exact replay (CI runs the same seed
//! matrix as `chaos_recovery`).

use knactor::net::{FaultPlan, FaultProxy, RetryPolicy, ShardRouter};
use knactor::prelude::*;
use serde_json::json;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;

fn chaos_seed(default: u64) -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    println!("chaos seed: {seed} (rerun with CHAOS_SEED={seed})");
    seed
}

fn key(i: u64) -> ObjectKey {
    ObjectKey::new(format!("chaos-{i}"))
}

fn val(i: u64) -> Value {
    json!({"n": i, "payload": format!("data-{i}")})
}

/// A 4-shard exchange with one flaky proxy per shard node.
struct ChaosShards {
    exchange: ShardedExchange,
    proxies: Vec<FaultProxy>,
}

impl ChaosShards {
    async fn launch(seed: u64, plan: fn(u64) -> FaultPlan) -> ChaosShards {
        let exchange = ShardedExchange::launch(SHARDS).await.unwrap();
        let mut proxies = Vec::with_capacity(SHARDS);
        for (i, addr) in exchange.addrs().into_iter().enumerate() {
            // Each shard gets its own fault stream forked off the seed,
            // so the schedule stays a pure function of (seed, shard).
            proxies.push(
                FaultProxy::spawn(addr, plan(seed ^ (0xD15C_0000 + i as u64)))
                    .await
                    .unwrap(),
            );
        }
        ChaosShards { exchange, proxies }
    }

    fn proxied_addrs(&self) -> Vec<SocketAddr> {
        self.proxies.iter().map(|p| p.local_addr()).collect()
    }

    /// A router whose per-shard clients ride the flaky proxies with
    /// per-shard retry/resume.
    async fn faulted_router(&self, seed: u64, subject: Subject) -> ShardRouter {
        ShardRouter::connect_resilient(
            self.exchange.map().clone(),
            &self.proxied_addrs(),
            subject,
            RetryPolicy::fast(seed),
        )
        .await
        .unwrap()
    }

    /// A clean router straight to the shard nodes, for audits.
    async fn audit_router(&self, subject: Subject) -> ShardRouter {
        ShardRouter::connect_tcp(self.exchange.map().clone(), &self.exchange.addrs(), subject)
            .await
            .unwrap()
    }

    fn kill_connections(&self) {
        for proxy in &self.proxies {
            proxy.kill_connections();
        }
    }

    async fn shutdown(self) {
        for proxy in &self.proxies {
            proxy.shutdown();
        }
        for proxy in &self.proxies {
            println!("proxy faults: {}", proxy.stats().summary());
        }
        self.exchange.shutdown().await;
    }
}

/// Exactly-once writes through four flaky wires: 40 creates scatter over
/// the shards, every one retried per shard until acked; the clean audit
/// must see every object exactly once and a virtual revision of exactly
/// the write count (sum of shard revisions — an overshoot means some
/// shard double-committed, an undershoot means one lost an acked write).
#[tokio::test]
async fn sharded_writes_commit_exactly_once_through_flaky_wire() {
    let seed = chaos_seed(0x5AAD_EE01);
    const WRITES: u64 = 40;

    let shards = ChaosShards::launch(seed, FaultPlan::flaky).await;
    let api: Arc<dyn ExchangeApi> = Arc::new(
        shards
            .faulted_router(seed, Subject::integrator("chaos"))
            .await,
    );

    api.create_store("chaos/state".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    for i in 0..WRITES {
        api.create("chaos/state".into(), key(i), val(i))
            .await
            .unwrap();
    }

    let audit = shards.audit_router(Subject::operator("audit")).await;
    let (objects, revision) = audit.list("chaos/state".into()).await.unwrap();
    assert_eq!(
        objects.len() as u64,
        WRITES,
        "every acked create is present"
    );
    assert_eq!(
        revision,
        Revision(WRITES),
        "virtual revision must be exactly the commit count: no shard lost or double-committed"
    );
    for i in 0..WRITES {
        let got = audit.get("chaos/state".into(), key(i)).await.unwrap();
        assert_eq!(*got.value, val(i), "value for {} corrupted", key(i));
    }

    shards.shutdown().await;
}

/// The merged watch stays dense through per-shard faults and forced
/// disconnects: revisions must be exactly 1..=N in order (the router's
/// virtual numbering), and every written key must appear exactly once.
#[tokio::test]
async fn sharded_watch_delivers_every_write_exactly_once() {
    let seed = chaos_seed(0x5AAD_EE02);
    const WRITES: u64 = 50;

    let shards = ChaosShards::launch(seed, FaultPlan::flaky).await;
    let watcher: Arc<dyn ExchangeApi> = Arc::new(
        shards
            .faulted_router(seed, Subject::operator("watcher"))
            .await,
    );
    let writer = shards.audit_router(Subject::operator("writer")).await;

    writer
        .create_store("chaos/feed".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    let mut events = watcher
        .watch("chaos/feed".into(), Revision::ZERO)
        .await
        .unwrap();

    for i in 0..WRITES {
        writer
            .create("chaos/feed".into(), key(i), val(i))
            .await
            .unwrap();
        if i % 10 == 9 {
            // Sever every proxied connection on every shard mid-stream;
            // each shard's resilient watch must resume from its own
            // per-shard cursor.
            shards.kill_connections();
        }
    }

    let seen = tokio::time::timeout(Duration::from_secs(60), async {
        let mut seen = Vec::new();
        while (seen.len() as u64) < WRITES {
            match events.recv().await {
                Some(event) => seen.push(event),
                None => break,
            }
        }
        seen
    })
    .await
    .expect("merged watch did not deliver all revisions in time");

    let revisions: Vec<u64> = seen.iter().map(|e| e.revision.0).collect();
    let expected: Vec<u64> = (1..=WRITES).collect();
    assert_eq!(
        revisions, expected,
        "merged watch must deliver dense virtual revisions, exactly once, in order"
    );
    // Cross-shard delivery order may interleave, but the key *set* must
    // be exactly the writes — no loss, no duplication.
    let mut keys: Vec<ObjectKey> = seen.iter().map(|e| e.key.clone()).collect();
    keys.sort();
    let mut expected_keys: Vec<ObjectKey> = (0..WRITES).map(key).collect();
    expected_keys.sort();
    assert_eq!(keys, expected_keys);

    shards.shutdown().await;
}

/// Batched commits scatter-gathered across four flaky wires stay
/// exactly-once: per-shard sub-batches are retried independently with
/// per-item OCC disambiguation, and the audited virtual revision equals
/// the total item count.
#[tokio::test]
async fn sharded_batch_commits_exactly_once_through_flaky_wire() {
    let seed = chaos_seed(0x5AAD_EE03);
    const BATCHES: u64 = 10;
    const PER_BATCH: u64 = 8;

    let shards = ChaosShards::launch(seed, FaultPlan::flaky).await;
    let api: Arc<dyn ExchangeApi> = Arc::new(
        shards
            .faulted_router(seed, Subject::integrator("chaos"))
            .await,
    );

    api.create_store("chaos/batched".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    for b in 0..BATCHES {
        let ops: Vec<BatchOp> = (0..PER_BATCH)
            .map(|j| {
                let i = b * PER_BATCH + j;
                BatchOp::Create {
                    key: key(i),
                    value: val(i),
                }
            })
            .collect();
        let items = api.batch_commit("chaos/batched".into(), ops).await.unwrap();
        for (j, item) in items.into_iter().enumerate() {
            item.into_revision()
                .unwrap_or_else(|e| panic!("batch {b} item {j} did not recover to a commit: {e}"));
        }
        if b % 3 == 2 {
            shards.kill_connections();
        }
    }

    const WRITES: u64 = BATCHES * PER_BATCH;
    let audit = shards.audit_router(Subject::operator("audit")).await;
    let (objects, revision) = audit.list("chaos/batched".into()).await.unwrap();
    assert_eq!(objects.len() as u64, WRITES, "every acked item is present");
    assert_eq!(
        revision,
        Revision(WRITES),
        "virtual revision must be exactly the item count across shards"
    );

    shards.shutdown().await;
}

/// The refactor's success test: the same Cast integration, with zero
/// integrator-code changes, converges to the same state on a clean
/// single-node exchange and on a faulted 4-shard exchange.
#[tokio::test]
async fn sharded_cast_converges_to_faultless_state() {
    let seed = chaos_seed(0x5AAD_EE04);
    const OBJECTS: u64 = 12;
    let dxg_spec =
        "Input:\n  A: chaos/v1/A/a\n  B: chaos/v1/B/b\nDXG:\n  B:\n    shout: upper(A.greeting)\n";
    let config = || -> CastConfig {
        let mut bindings = std::collections::BTreeMap::new();
        bindings.insert("A".to_string(), CastBinding::correlated("a/state"));
        bindings.insert("B".to_string(), CastBinding::correlated("b/state"));
        CastConfig {
            name: "chaos".into(),
            dxg: Dxg::parse(dxg_spec).unwrap(),
            bindings,
            mode: CastMode::Direct,
            coalesce: 1,
        }
    };
    let deploy = |api: &Arc<dyn ExchangeApi>| {
        let api = Arc::clone(api);
        async move {
            api.create_store("a/state".into(), ProfileSpec::Instant)
                .await?;
            api.create_store("b/state".into(), ProfileSpec::Instant)
                .await?;
            Cast::new(api).spawn(config()).await
        }
    };
    let feed = |api: &Arc<dyn ExchangeApi>| {
        let api = Arc::clone(api);
        async move {
            for i in 0..OBJECTS {
                api.create(
                    "a/state".into(),
                    key(i),
                    json!({"greeting": format!("msg-{i}")}),
                )
                .await?;
            }
            Ok::<_, Error>(())
        }
    };
    let converged = |api: &Arc<dyn ExchangeApi>| {
        let api = Arc::clone(api);
        async move {
            let mut finals = Vec::new();
            for i in 0..OBJECTS {
                let value = knactor::testkit::await_object_state(
                    &api,
                    "b/state",
                    key(i),
                    Duration::from_secs(30),
                    |v| !v["shout"].is_null(),
                )
                .await
                .unwrap_or_else(|e| panic!("b/state {} never converged: {e}", key(i)));
                finals.push((key(i), value["shout"].clone()));
            }
            finals
        }
    };

    // Baseline: clean single-node in-process exchange.
    let (_object, _log, clean) = knactor::net::loopback::in_process(Subject::integrator("chaos"));
    let clean: Arc<dyn ExchangeApi> = Arc::new(clean);
    let baseline_cast = deploy(&clean).await.unwrap();
    feed(&clean).await.unwrap();
    let baseline = converged(&clean).await;

    // Sharded + faulted: the identical integrator code over a 4-shard
    // exchange behind flaky proxies.
    let shards = ChaosShards::launch(seed, FaultPlan::flaky).await;
    let faulted: Arc<dyn ExchangeApi> = Arc::new(
        shards
            .faulted_router(seed, Subject::integrator("chaos"))
            .await,
    );
    let faulted_cast = deploy(&faulted).await.unwrap();
    feed(&faulted).await.unwrap();
    let audit: Arc<dyn ExchangeApi> =
        Arc::new(shards.audit_router(Subject::operator("audit")).await);
    let chaotic = converged(&audit).await;

    assert_eq!(
        baseline, chaotic,
        "sharding + faults must not change what the integration converges to"
    );
    assert_eq!(baseline[0].1, json!("MSG-0"));

    baseline_cast.shutdown().await;
    faulted_cast.shutdown().await;
    shards.shutdown().await;
}

/// Scatter-gather partial failure (the satellite test): with one shard
/// node unreachable, a batch spanning all shards must yield typed
/// per-item errors for the dead shard's keys *only*, commit everything
/// else, and retry only the dead shard's sub-batch — the healthy shards
/// see their sub-batch exactly once.
#[tokio::test]
async fn one_shard_down_fails_only_its_items_and_retries_only_its_sub_batch() {
    let seed = chaos_seed(0x5AAD_EE05);

    // Transparent proxies: the only fault in this scenario is the outage.
    let shards = ChaosShards::launch(seed, FaultPlan::none).await;
    let router = Arc::new(
        ShardRouter::connect_resilient(
            shards.exchange.map().clone(),
            &shards.proxied_addrs(),
            Subject::integrator("chaos"),
            RetryPolicy::fast(seed),
        )
        .await
        .unwrap(),
    );
    router
        .create_store("chaos/partial".into(), ProfileSpec::Instant)
        .await
        .unwrap();

    // Pick the victim shard, then compose a batch with keys on every
    // shard so the outage splits it.
    let store = StoreId::new("chaos/partial");
    let keys: Vec<ObjectKey> = (0..32).map(key).collect();
    let down_shard = router.shard_of_key(&store, &keys[0]);

    // Take the victim's proxy down: connections die and reconnects are
    // refused — the node is unreachable.
    shards.proxies[down_shard].shutdown();
    shards.proxies[down_shard].kill_connections();
    tokio::time::sleep(Duration::from_millis(50)).await;

    // Snapshot healthy-shard traffic so we can prove their sub-batches
    // were sent exactly once (no whole-batch retry).
    let healthy_before: Vec<(usize, u64)> = (0..SHARDS)
        .filter(|&s| s != down_shard)
        .map(|s| {
            (
                s,
                shards.proxies[s]
                    .stats()
                    .frames_forwarded
                    .load(std::sync::atomic::Ordering::Relaxed),
            )
        })
        .collect();

    let ops: Vec<BatchOp> = keys
        .iter()
        .map(|k| BatchOp::Create {
            key: k.clone(),
            value: json!({"v": k.as_str()}),
        })
        .collect();
    let items = router.batch_commit(store.clone(), ops).await.unwrap();

    let mut failed = 0;
    let mut committed = 0;
    for (k, item) in keys.iter().zip(&items) {
        if router.shard_of_key(&store, k) == down_shard {
            let err = item
                .as_error()
                .unwrap_or_else(|| panic!("{k} is on the dead shard but its item succeeded"));
            assert!(
                matches!(err, Error::Transport(_) | Error::Timeout(_)),
                "dead shard's items must fail with a typed transport error, got {err:?}"
            );
            failed += 1;
        } else {
            assert!(
                !item.is_err(),
                "{k} is on a healthy shard but failed: {item:?}"
            );
            committed += 1;
        }
    }
    assert!(
        failed > 0,
        "no key landed on the dead shard — widen the key range"
    );
    assert!(committed > 0, "no key landed on a healthy shard");

    // Healthy shards saw exactly one request + one reply for their
    // sub-batch: the failed shard's retries never re-sent their items.
    for (s, before) in healthy_before {
        let after = shards.proxies[s]
            .stats()
            .frames_forwarded
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            after - before,
            2,
            "healthy shard {s} saw re-sent traffic during the dead shard's retries"
        );
    }

    // The healthy shards' commits are durable and visible.
    let audit = shards.audit_router(Subject::operator("audit")).await;
    let (objects, _) = audit.list(store.clone()).await.unwrap();
    assert_eq!(
        objects.len(),
        committed,
        "healthy commits must all be visible"
    );

    shards.shutdown().await;
}

/// Pin the router's topology contract: the shard map is **fixed at
/// construction**. A `rebalanced()` successor map bumps its version but
/// does not (and must not) bleed into a live router — re-routing without
/// migrating resident data would silently misroute every moved key. The
/// only way topology changes reach traffic is constructing a new router,
/// where a map/client count mismatch is a *typed* error (`try_new`),
/// never a misroute. (Live rebalance-with-migration is future work —
/// DESIGN.md §9.)
#[tokio::test]
async fn rebalanced_map_needs_a_new_router_and_mismatch_is_typed() {
    let (_objects, _logs, router) = ShardRouter::in_process(SHARDS, Subject::integrator("pin"));

    // A rebalance produces a *successor* map...
    let grown = router
        .map()
        .rebalanced((0..SHARDS + 1).map(|i| format!("shard-{i}")).collect());
    assert_eq!(grown.version(), router.map().version() + 1);
    assert_eq!(grown.shard_count(), SHARDS + 1);
    // ...but the live router keeps routing by its construction-time map:
    // same version, same owners, for every key.
    assert_eq!(router.map().version(), 1);
    assert_eq!(router.shard_count(), SHARDS);
    for i in 0..200u64 {
        let owner = router.shard_of_key(&StoreId::new("pin/state"), &key(i));
        assert!(
            owner < SHARDS,
            "owner index escaped the constructed topology"
        );
    }

    // Wiring the successor map to the *old* client set is refused with a
    // typed error — the failure a control plane can catch and handle.
    let (_o2, _l2, donor) = ShardRouter::in_process(SHARDS, Subject::integrator("pin"));
    let clients: Vec<Arc<dyn ExchangeApi>> = (0..SHARDS)
        .map(|_| {
            let (_, _, lb) = knactor::net::loopback::in_process(Subject::integrator("pin"));
            Arc::new(lb) as Arc<dyn ExchangeApi>
        })
        .collect();
    let _ = donor;
    let err = match ShardRouter::try_new(grown, clients) {
        Ok(_) => panic!("count mismatch must not construct a router"),
        Err(e) => e,
    };
    assert!(
        matches!(err, Error::Internal(_)),
        "count mismatch must be a typed error, got {err:?}"
    );
}
