//! The **Cast** integrator: executes data exchange graphs over Object
//! stores (§3.2).
//!
//! Cast watches the stores of every alias the DXG reads, and on each
//! state change runs one *activation*:
//!
//! 1. **bind** — resolve each alias to a concrete object. `Correlated`
//!    bindings use the triggering object's key (the retail app correlates
//!    checkout order, payment, and shipment by order key); `Fixed`
//!    bindings name a singleton (the smart-home stores).
//! 2. **read** — fetch every bound object (missing targets start empty).
//! 3. **evaluate** — run the plan's steps in dependency order; each step
//!    consolidates all assignments to one target into a single patch
//!    (§3.3 consolidation). Assignments whose inputs are not available
//!    yet (evaluation errors or `null` results) are skipped — they will
//!    fire on a later activation once the state they need appears.
//! 4. **write** — patch each target object. The store suppresses no-op
//!    patches, so activations triggered by Cast's own writes converge
//!    instead of looping.
//!
//! In [`CastMode::Pushdown`] the evaluate+write phases run *inside* the
//! exchange as a registered UDF — one round trip per activation instead
//! of one per read plus one per write.
//!
//! A running Cast is driven through its [`CastController`]:
//! [`CastController::reconfigure`] swaps the entire DXG at run time —
//! no knactor is touched, rebuilt, or redeployed.

use crate::metrics::{global, inc_activation, observe_stage};
use crate::telemetry::TraceCollector;
use knactor_dxg::{Dxg, Plan};
use knactor_expr::{Env, FnRegistry};
use knactor_net::ExchangeApi;
use knactor_store::{EventKind, PutItem, StoredObject, UdfBinding, WatchEvent};
use knactor_types::{Error, ObjectKey, Result, Revision, StoreId, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;

/// How an alias resolves to an object key at activation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyBinding {
    /// Always this key (singleton stores, e.g. `lamp/config:cfg`).
    Fixed(ObjectKey),
    /// The key of the object that triggered the activation.
    Correlated,
}

/// Binds a DXG alias to a store (and key policy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastBinding {
    pub store: StoreId,
    pub key: KeyBinding,
}

impl CastBinding {
    pub fn correlated(store: impl Into<StoreId>) -> CastBinding {
        CastBinding {
            store: store.into(),
            key: KeyBinding::Correlated,
        }
    }

    pub fn fixed(store: impl Into<StoreId>, key: impl Into<ObjectKey>) -> CastBinding {
        CastBinding {
            store: store.into(),
            key: KeyBinding::Fixed(key.into()),
        }
    }
}

/// Client-side evaluation vs store-side pushdown (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CastMode {
    Direct,
    Pushdown { udf_name: String },
}

/// Full configuration of a Cast instance. Swappable at run time.
#[derive(Debug, Clone)]
pub struct CastConfig {
    pub name: String,
    pub dxg: Dxg,
    pub bindings: BTreeMap<String, CastBinding>,
    pub mode: CastMode,
    /// Event-coalescing threshold: how many already-queued watch events
    /// one loop turn may fold together, deduplicated by trigger key, one
    /// activation per distinct key. `0`/`1` disable coalescing. Safe by
    /// the same argument as the drain barrier: an activation reads
    /// *current* state and no-op patches are suppressed, so folding
    /// duplicate keys batches events without ever skipping one. The
    /// cost model suggests a value from the observed event rate.
    pub coalesce: usize,
}

impl CastConfig {
    /// Validate: plan builds, every alias is bound.
    pub(crate) fn validate(&self) -> Result<Plan> {
        let plan = Plan::build(&self.dxg)?;
        for alias in self.dxg.inputs.keys() {
            if !self.bindings.contains_key(alias) {
                return Err(Error::Dxg(format!(
                    "cast {}: alias '{alias}' has no binding",
                    self.name
                )));
            }
        }
        Ok(plan)
    }
}

/// The Cast integrator factory.
pub struct Cast {
    api: Arc<dyn ExchangeApi>,
    fns: FnRegistry,
    traces: TraceCollector,
}

enum Command {
    Reconfigure(CastConfig, oneshot::Sender<Result<()>>),
    Drain(oneshot::Sender<()>),
    Shutdown(oneshot::Sender<()>),
}

/// Handle to a running Cast task.
pub struct CastController {
    cmd_tx: mpsc::UnboundedSender<Command>,
    task: JoinHandle<()>,
    activations: Arc<AtomicU64>,
}

impl CastController {
    /// Swap in a new configuration (new DXG, bindings, or mode). Returns
    /// once the new configuration is live. This is the run-time
    /// reconfiguration of §3.3: tasks T1–T3 of Table 1 are exactly one
    /// such call.
    pub async fn reconfigure(&self, config: CastConfig) -> Result<()> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx
            .send(Command::Reconfigure(config, tx))
            .map_err(|_| Error::ShuttingDown)?;
        rx.await.map_err(|_| Error::ShuttingDown)?
    }

    /// Process every event already delivered by the watches, then return.
    /// A barrier, not a stop: the integrator keeps running afterwards.
    /// `Composer::apply` drains an edge before stopping it so queued
    /// activations are not lost in the swap.
    pub async fn drain(&self) -> Result<()> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx
            .send(Command::Drain(tx))
            .map_err(|_| Error::ShuttingDown)?;
        rx.await.map_err(|_| Error::ShuttingDown)
    }

    /// Stop the integrator and wait for it to finish.
    pub async fn shutdown(self) {
        let (tx, rx) = oneshot::channel();
        if self.cmd_tx.send(Command::Shutdown(tx)).is_ok() {
            let _ = rx.await;
        }
        let _ = self.task.await;
    }

    /// Whether the run loop is still alive and accepting commands.
    pub fn is_running(&self) -> bool {
        !self.task.is_finished() && !self.cmd_tx.is_closed()
    }

    /// Number of activations processed (diagnostics, test sync).
    pub fn activations(&self) -> u64 {
        self.activations.load(Ordering::Relaxed)
    }
}

impl Cast {
    pub fn new(api: Arc<dyn ExchangeApi>) -> Cast {
        Cast {
            api,
            fns: FnRegistry::standard(),
            traces: TraceCollector::new(),
        }
    }

    pub fn with_functions(mut self, fns: FnRegistry) -> Cast {
        self.fns = fns;
        self
    }

    pub fn with_traces(mut self, traces: TraceCollector) -> Cast {
        self.traces = traces;
        self
    }

    pub fn traces(&self) -> &TraceCollector {
        &self.traces
    }

    /// Run one activation manually (tests, benchmarks, CLI `cast run`).
    pub async fn activate_once(&self, config: &CastConfig, trigger_key: &ObjectKey) -> Result<()> {
        let plan = config.validate()?;
        if let CastMode::Pushdown { udf_name } = &config.mode {
            self.register_pushdown(config, &plan, udf_name).await?;
        }
        activation(
            &self.api,
            &self.fns,
            &self.traces,
            config,
            &plan,
            trigger_key,
        )
        .await
    }

    async fn register_pushdown(
        &self,
        config: &CastConfig,
        plan: &Plan,
        udf_name: &str,
    ) -> Result<()> {
        self.api
            .register_udf(
                udf_name.to_string(),
                Plan::udf_inputs(&config.dxg),
                plan.to_udf_assignments(&config.dxg),
            )
            .await
    }

    /// Spawn the integrator: validate, (for pushdown) register the UDF,
    /// start watching every source store, and return the controller.
    pub async fn spawn(self, config: CastConfig) -> Result<CastController> {
        let plan = config.validate()?;
        if let CastMode::Pushdown { udf_name } = &config.mode {
            self.register_pushdown(&config, &plan, udf_name).await?;
        }
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        let activations = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&activations);
        let task = tokio::spawn(run_loop(
            self.api,
            self.fns,
            self.traces,
            config,
            plan,
            cmd_rx,
            counter,
        ));
        Ok(CastController {
            cmd_tx,
            task,
            activations,
        })
    }
}

/// Aliases whose stores must be watched: every alias the DXG reads from
/// or writes to (writes re-trigger forward propagation of dependents).
fn watch_aliases(dxg: &Dxg) -> Vec<String> {
    let mut aliases = dxg.source_aliases();
    for alias in dxg.target_aliases() {
        if !aliases.contains(&alias) {
            aliases.push(alias);
        }
    }
    aliases
}

async fn start_watches(
    api: &Arc<dyn ExchangeApi>,
    config: &CastConfig,
    merged_tx: &mpsc::UnboundedSender<(String, WatchEvent)>,
) -> Result<Vec<JoinHandle<()>>> {
    let mut tasks = Vec::new();
    for alias in watch_aliases(&config.dxg) {
        let binding = config
            .bindings
            .get(&alias)
            .expect("validated: every alias bound");
        let mut rx = match api.watch(binding.store.clone(), Revision::ZERO).await {
            Ok(rx) => rx,
            // The store's bounded watch history no longer reaches back to
            // ZERO (long-lived or recovered store). Bootstrap from a full
            // listing instead: synthesize one Updated event per live
            // object — activations are idempotent (no-op patches are
            // suppressed), so re-seeing current state is safe — then
            // watch from the listing's revision, which is gapless.
            Err(Error::WatchTooOld { .. }) => {
                let (objects, revision) = api.list(binding.store.clone()).await?;
                for obj in objects {
                    let event = WatchEvent {
                        revision: obj.revision,
                        kind: EventKind::Updated,
                        key: obj.key.clone(),
                        value: Arc::clone(&obj.value),
                    };
                    let _ = merged_tx.send((alias.clone(), event));
                }
                api.watch(binding.store.clone(), revision).await?
            }
            Err(e) => return Err(e),
        };
        let tx = merged_tx.clone();
        let alias_name = alias.clone();
        tasks.push(tokio::spawn(async move {
            while let Some(event) = rx.recv().await {
                if tx.send((alias_name.clone(), event)).is_err() {
                    break;
                }
            }
        }));
    }
    Ok(tasks)
}

async fn run_loop(
    api: Arc<dyn ExchangeApi>,
    fns: FnRegistry,
    traces: TraceCollector,
    mut config: CastConfig,
    mut plan: Plan,
    mut cmd_rx: mpsc::UnboundedReceiver<Command>,
    activations: Arc<AtomicU64>,
) {
    'outer: loop {
        let (merged_tx, mut merged_rx) = mpsc::unbounded_channel();
        let watch_tasks = match start_watches(&api, &config, &merged_tx).await {
            Ok(t) => t,
            Err(_) => {
                // Source store unavailable or watch denied (possibly a
                // *temporary* condition, e.g. a time-window policy):
                // retry with backoff, still answering commands.
                tokio::select! {
                    cmd = cmd_rx.recv() => {
                        match cmd {
                            Some(Command::Reconfigure(new_config, ack)) => {
                                match apply_reconfigure(&api, new_config).await {
                                    Ok((c, p)) => {
                                        config = c;
                                        plan = p;
                                        let _ = ack.send(Ok(()));
                                    }
                                    Err(e) => {
                                        let _ = ack.send(Err(e));
                                    }
                                }
                            }
                            // No watches running → nothing queued.
                            Some(Command::Drain(ack)) => { let _ = ack.send(()); }
                            Some(Command::Shutdown(ack)) => {
                                let _ = ack.send(());
                                return;
                            }
                            None => return,
                        }
                    }
                    _ = tokio::time::sleep(std::time::Duration::from_millis(200)) => {}
                }
                continue 'outer;
            }
        };

        loop {
            tokio::select! {
                cmd = cmd_rx.recv() => {
                    match cmd {
                        Some(Command::Reconfigure(new_config, ack)) => {
                            match apply_reconfigure(&api, new_config).await {
                                Ok((c, p)) => {
                                    config = c;
                                    plan = p;
                                    let _ = ack.send(Ok(()));
                                    for t in &watch_tasks { t.abort(); }
                                    continue 'outer;
                                }
                                Err(e) => {
                                    // Keep running the old config.
                                    let _ = ack.send(Err(e));
                                }
                            }
                        }
                        Some(Command::Drain(ack)) => {
                            // Barrier: run every activation the watches
                            // have already queued before acking.
                            while let Ok((_, event)) = merged_rx.try_recv() {
                                if event.kind == EventKind::Deleted {
                                    continue;
                                }
                                let _ = activation(
                                    &api, &fns, &traces, &config, &plan, &event.key,
                                )
                                .await;
                                activations.fetch_add(1, Ordering::Relaxed);
                                inc_activation(&format!("cast:{}", config.name));
                            }
                            let _ = ack.send(());
                        }
                        Some(Command::Shutdown(ack)) => {
                            for t in &watch_tasks { t.abort(); }
                            let _ = ack.send(());
                            return;
                        }
                        None => {
                            for t in &watch_tasks { t.abort(); }
                            return;
                        }
                    }
                }
                event = merged_rx.recv() => {
                    let Some((_, event)) = event else {
                        for t in &watch_tasks { t.abort(); }
                        return;
                    };
                    if event.kind == EventKind::Deleted {
                        continue;
                    }
                    // Coalesce: fold up to `coalesce` queued events into
                    // this turn, one activation per distinct trigger key
                    // (batching events, never skipping them — each
                    // activation reads current state).
                    let mut keys = vec![event.key.clone()];
                    if config.coalesce > 1 {
                        let mut seen: std::collections::BTreeSet<ObjectKey> =
                            keys.iter().cloned().collect();
                        let mut examined = 1usize;
                        while examined < config.coalesce {
                            let Ok((_, e)) = merged_rx.try_recv() else { break };
                            examined += 1;
                            if e.kind != EventKind::Deleted && seen.insert(e.key.clone()) {
                                keys.push(e.key);
                            }
                        }
                        if examined > keys.len() {
                            global()
                                .counter(
                                    "knactor_cast_coalesced_events_total",
                                    &[("integrator", &format!("cast:{}", config.name))],
                                )
                                .add((examined - keys.len()) as u64);
                        }
                    }
                    for key in keys {
                        // Activation failures are logged as traces, never
                        // fatal: the next event retries naturally.
                        let _ = activation(&api, &fns, &traces, &config, &plan, &key).await;
                        activations.fetch_add(1, Ordering::Relaxed);
                        inc_activation(&format!("cast:{}", config.name));
                    }
                }
            }
        }
    }
}

async fn apply_reconfigure(
    api: &Arc<dyn ExchangeApi>,
    config: CastConfig,
) -> Result<(CastConfig, Plan)> {
    let plan = config.validate()?;
    if let CastMode::Pushdown { udf_name } = &config.mode {
        api.register_udf(
            udf_name.to_string(),
            Plan::udf_inputs(&config.dxg),
            plan.to_udf_assignments(&config.dxg),
        )
        .await?;
    }
    Ok((config, plan))
}

fn resolve_key(binding: &CastBinding, trigger: &ObjectKey) -> ObjectKey {
    match &binding.key {
        KeyBinding::Fixed(k) => k.clone(),
        KeyBinding::Correlated => trigger.clone(),
    }
}

/// One activation: bind → read → evaluate → write.
///
/// Reads of all input aliases run concurrently (each `get` pays the
/// engine's read delay, so N inputs cost one delay instead of N), and
/// writes produced by the step loop are coalesced into one patch per
/// target alias, flushed — again concurrently — after every step has
/// evaluated. Steps still observe earlier steps' writes through the
/// local env mirror, so coalescing does not change the dataflow.
async fn activation(
    api: &Arc<dyn ExchangeApi>,
    fns: &FnRegistry,
    traces: &TraceCollector,
    config: &CastConfig,
    plan: &Plan,
    trigger_key: &ObjectKey,
) -> Result<()> {
    let trace_id = trigger_key.to_string();
    let component = format!("cast:{}", config.name);

    if let CastMode::Pushdown { udf_name } = &config.mode {
        let start = Instant::now();
        let bindings: Vec<UdfBinding> = config
            .bindings
            .iter()
            .map(|(alias, b)| UdfBinding {
                alias: alias.clone(),
                store: b.store.clone(),
                key: resolve_key(b, trigger_key),
            })
            .collect();
        let result = api.execute_udf(udf_name.clone(), bindings).await;
        let elapsed = start.elapsed();
        traces.record(&trace_id, &component, "pushdown-execute", elapsed);
        observe_stage(&component, "pushdown-execute", elapsed);
        return result.map(|_| ());
    }

    // Read phase: fetch every input alias concurrently.
    let start = Instant::now();
    let mut env = Env::new();
    if config.bindings.len() == 1 {
        // No parallelism to win — skip the task machinery.
        let (alias, binding) = config.bindings.iter().next().expect("len checked");
        let key = resolve_key(binding, trigger_key);
        env.bind(
            alias.clone(),
            fetched_value(api.get(binding.store.clone(), key).await)?,
        );
    } else {
        let fetches: Vec<_> = config
            .bindings
            .iter()
            .map(|(alias, binding)| {
                let api = Arc::clone(api);
                let alias = alias.clone();
                let store = binding.store.clone();
                let key = resolve_key(binding, trigger_key);
                tokio::spawn(async move { (alias, api.get(store, key).await) })
            })
            .collect();
        for fetch in fetches {
            let (alias, result) = fetch
                .await
                .map_err(|e| Error::Internal(format!("cast fetch task: {e}")))?;
            env.bind(alias, fetched_value(result)?);
        }
    }
    let elapsed = start.elapsed();
    traces.record(&trace_id, &component, "read-sources", elapsed);
    observe_stage(&component, "read-sources", elapsed);

    // Evaluate step by step (steps are dependency-ordered, so later steps
    // must observe earlier steps' writes via the local env), coalescing
    // all patches for one target alias into a single write.
    let mut pending: BTreeMap<String, Value> = BTreeMap::new();
    for step in &plan.steps {
        let start = Instant::now();
        let mut patch = Value::Object(serde_json::Map::new());
        let mut wrote = false;
        for &idx in &step.assignments {
            let a = &config.dxg.assignments[idx];
            match knactor_expr::eval(&a.expr, &env, fns) {
                // `null` means "input not present yet" — skip and let a
                // later activation fill it (see module docs).
                Ok(Value::Null) => {}
                Ok(v) => {
                    knactor_types::value::set_path(&mut patch, &a.target_path(), v)?;
                    wrote = true;
                }
                Err(_) => {
                    // Unready inputs (e.g. member access on a scalar that
                    // is still null upstream): skip, retry on next event.
                }
            }
        }
        let elapsed = start.elapsed();
        traces.record(&trace_id, &component, "evaluate", elapsed);
        observe_stage(&component, "evaluate", elapsed);
        if !wrote {
            continue;
        }
        // Mirror the write into the local env so later steps see it.
        if let Some(slot) = env.get(&step.target_alias).cloned().as_mut() {
            knactor_types::value::merge(slot, &patch);
            env.bind(step.target_alias.clone(), slot.clone());
        }
        match pending.entry(step.target_alias.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(patch);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                knactor_types::value::merge(e.get_mut(), &patch);
            }
        }
    }

    // Write phase: the coalesced per-target patches go out as **one
    // batched wire op per target store** (`batch_put`) — N targets in a
    // store cost one round trip and one WAL group fsync, not N of each.
    // Distinct stores still flush concurrently.
    if pending.is_empty() {
        return Ok(());
    }
    let mut per_store: BTreeMap<StoreId, Vec<(String, PutItem)>> = BTreeMap::new();
    for (alias, patch) in pending {
        let binding = &config.bindings[&alias];
        let item = PutItem {
            key: resolve_key(binding, trigger_key),
            value: patch,
            upsert: true,
        };
        per_store
            .entry(binding.store.clone())
            .or_default()
            .push((alias, item));
    }
    let flush_group = |store: StoreId, group: Vec<(String, PutItem)>| {
        let api = Arc::clone(api);
        async move {
            let (aliases, items): (Vec<String>, Vec<PutItem>) = group.into_iter().unzip();
            let start = Instant::now();
            let result = api.batch_put(store, items).await;
            (aliases, start.elapsed(), result)
        }
    };
    let mut flushed = Vec::new();
    if per_store.len() == 1 {
        // No cross-store parallelism to win — skip the task machinery.
        let (store, group) = per_store.into_iter().next().expect("len checked");
        flushed.push(flush_group(store, group).await);
    } else {
        let tasks: Vec<_> = per_store
            .into_iter()
            .map(|(store, group)| tokio::spawn(flush_group(store, group)))
            .collect();
        for task in tasks {
            flushed.push(
                task.await
                    .map_err(|e| Error::Internal(format!("cast flush task: {e}")))?,
            );
        }
    }
    for (aliases, elapsed, result) in flushed {
        let items = result?;
        for (alias, item) in aliases.into_iter().zip(items) {
            item.into_revision()?;
            let stage = format!("write:{alias}");
            traces.record(&trace_id, &component, &stage, elapsed);
            observe_stage(&component, &stage, elapsed);
        }
    }
    Ok(())
}

/// Unwrap a fetched input: absent objects start the alias as an empty
/// object (the write phase upserts them).
fn fetched_value(result: Result<StoredObject>) -> Result<Arc<Value>> {
    match result {
        Ok(obj) => Ok(obj.value),
        Err(Error::NotFound(_)) => Ok(Arc::new(Value::Object(serde_json::Map::new()))),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_dxg::spec::FIG6_RETAIL_DXG;
    use knactor_net::loopback::in_process;
    use knactor_net::proto::ProfileSpec;
    use knactor_rbac::Subject;
    use serde_json::json;
    use std::time::Duration;

    async fn retail_setup() -> (Arc<dyn ExchangeApi>, CastConfig) {
        let (_, _, client) = in_process(Subject::integrator("cast"));
        let api: Arc<dyn ExchangeApi> = Arc::new(client);
        for s in ["checkout/state", "shipping/state", "payment/state"] {
            api.create_store(StoreId::new(s), ProfileSpec::Instant)
                .await
                .unwrap();
        }
        let mut bindings = BTreeMap::new();
        bindings.insert("C".to_string(), CastBinding::correlated("checkout/state"));
        bindings.insert("S".to_string(), CastBinding::correlated("shipping/state"));
        bindings.insert("P".to_string(), CastBinding::correlated("payment/state"));
        let config = CastConfig {
            name: "retail".to_string(),
            dxg: Dxg::parse(FIG6_RETAIL_DXG).unwrap(),
            bindings,
            mode: CastMode::Direct,
            coalesce: 1,
        };
        (api, config)
    }

    fn order() -> Value {
        json!({
            "order": {
                "items": [{"name": "mug", "qty": 2}, {"name": "pen", "qty": 1}],
                "address": "Soda Hall",
                "cost": 1200.0,
                "totalCost": 1212.5,
                "currency": "USD"
            }
        })
    }

    #[tokio::test]
    async fn activate_once_propagates_order_to_shipping_and_payment() {
        let (api, config) = retail_setup().await;
        api.create(
            StoreId::new("checkout/state"),
            ObjectKey::new("order-1"),
            order(),
        )
        .await
        .unwrap();
        let cast = Cast::new(Arc::clone(&api));
        cast.activate_once(&config, &ObjectKey::new("order-1"))
            .await
            .unwrap();

        let s = api
            .get(StoreId::new("shipping/state"), ObjectKey::new("order-1"))
            .await
            .unwrap();
        assert_eq!(s.value["addr"], json!("Soda Hall"));
        assert_eq!(s.value["items"], json!(["mug", "pen"]));
        assert_eq!(s.value["method"], json!("air"), "cost 1200 > 1000 → air");

        let p = api
            .get(StoreId::new("payment/state"), ObjectKey::new("order-1"))
            .await
            .unwrap();
        assert_eq!(p.value["amount"], json!(1212.5));
        assert_eq!(p.value["currency"], json!("USD"));
    }

    #[tokio::test]
    async fn null_inputs_are_skipped_until_ready() {
        let (api, config) = retail_setup().await;
        api.create(StoreId::new("checkout/state"), ObjectKey::new("o"), order())
            .await
            .unwrap();
        let cast = Cast::new(Arc::clone(&api));
        cast.activate_once(&config, &ObjectKey::new("o"))
            .await
            .unwrap();

        // S.id / S.quote / P.id are unset → trackingID, paymentID,
        // shippingCost must NOT be written (not even as null).
        let c = api
            .get(StoreId::new("checkout/state"), ObjectKey::new("o"))
            .await
            .unwrap();
        assert!(c.value["order"].get("trackingID").is_none());
        assert!(c.value["order"].get("paymentID").is_none());

        // Shipping's reconciler posts id + quote; Payment posts id.
        api.patch(
            StoreId::new("shipping/state"),
            ObjectKey::new("o"),
            json!({"id": "ship-7", "quote": {"price": 12.5, "currency": "USD"}}),
            false,
        )
        .await
        .unwrap();
        api.patch(
            StoreId::new("payment/state"),
            ObjectKey::new("o"),
            json!({"id": "pay-3"}),
            false,
        )
        .await
        .unwrap();

        cast.activate_once(&config, &ObjectKey::new("o"))
            .await
            .unwrap();
        let c = api
            .get(StoreId::new("checkout/state"), ObjectKey::new("o"))
            .await
            .unwrap();
        assert_eq!(c.value["order"]["trackingID"], json!("ship-7"));
        assert_eq!(c.value["order"]["paymentID"], json!("pay-3"));
        assert_eq!(c.value["order"]["shippingCost"], json!(12.5));
    }

    #[tokio::test]
    async fn spawned_cast_reacts_to_events_and_converges() {
        let (api, config) = retail_setup().await;
        let cast = Cast::new(Arc::clone(&api));
        let controller = cast.spawn(config).await.unwrap();

        api.create(
            StoreId::new("checkout/state"),
            ObjectKey::new("order-9"),
            order(),
        )
        .await
        .unwrap();

        // Wait until the shipment materializes.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(s) = api
                .get(StoreId::new("shipping/state"), ObjectKey::new("order-9"))
                .await
            {
                if s.value["method"] == json!("air") {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "cast did not propagate in time");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }

        // Convergence: activations settle (no infinite echo loop).
        let mut last = controller.activations();
        let mut stable = 0;
        for _ in 0..100 {
            tokio::time::sleep(Duration::from_millis(10)).await;
            let now = controller.activations();
            if now == last {
                stable += 1;
                if stable >= 10 {
                    break;
                }
            } else {
                stable = 0;
                last = now;
            }
        }
        assert!(
            stable >= 10,
            "cast keeps re-activating: {last} and counting"
        );
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn pushdown_mode_produces_same_result() {
        let (api, mut config) = retail_setup().await;
        config.mode = CastMode::Pushdown {
            udf_name: "retail-dxg".to_string(),
        };
        api.create(
            StoreId::new("checkout/state"),
            ObjectKey::new("o2"),
            order(),
        )
        .await
        .unwrap();
        let cast = Cast::new(Arc::clone(&api));
        cast.activate_once(&config, &ObjectKey::new("o2"))
            .await
            .unwrap();
        let s = api
            .get(StoreId::new("shipping/state"), ObjectKey::new("o2"))
            .await
            .unwrap();
        assert_eq!(s.value["method"], json!("air"));
        assert_eq!(s.value["addr"], json!("Soda Hall"));
    }

    #[tokio::test]
    async fn reconfigure_swaps_policy_at_runtime() {
        let (api, config) = retail_setup().await;
        let cast = Cast::new(Arc::clone(&api));
        let controller = cast.spawn(config.clone()).await.unwrap();

        // T2 of Table 1: change the shipment-method threshold from 1000
        // to 2000 — one integrator reconfiguration, no service changes.
        let new_spec = FIG6_RETAIL_DXG.replace("C.order.cost > 1000", "C.order.cost > 2000");
        let new_config = CastConfig {
            dxg: Dxg::parse(&new_spec).unwrap(),
            ..config.clone()
        };
        controller.reconfigure(new_config).await.unwrap();

        api.create(
            StoreId::new("checkout/state"),
            ObjectKey::new("order-x"),
            order(),
        )
        .await
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(s) = api
                .get(StoreId::new("shipping/state"), ObjectKey::new("order-x"))
                .await
            {
                if s.value.get("method").map(|m| !m.is_null()).unwrap_or(false) {
                    // Cost 1200 is now below the 2000 threshold → ground.
                    assert_eq!(s.value["method"], json!("ground"));
                    break;
                }
            }
            assert!(Instant::now() < deadline, "no shipment after reconfigure");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn reconfigure_rejects_invalid_spec_and_keeps_running() {
        let (api, config) = retail_setup().await;
        let cast = Cast::new(Arc::clone(&api));
        let controller = cast.spawn(config.clone()).await.unwrap();

        // A cyclic DXG is rejected…
        let bad = Dxg::parse(
            "Input:\n  C: g/v/s/c\n  S: g/v/s/s\nDXG:\n  C:\n    x: S.y\n  S:\n    y: C.x\n",
        )
        .unwrap();
        let mut bad_config = config.clone();
        bad_config.dxg = bad;
        assert!(controller.reconfigure(bad_config).await.is_err());

        // …and the old config still works.
        api.create(
            StoreId::new("checkout/state"),
            ObjectKey::new("order-z"),
            order(),
        )
        .await
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if api
                .get(StoreId::new("shipping/state"), ObjectKey::new("order-z"))
                .await
                .is_ok()
            {
                break;
            }
            assert!(Instant::now() < deadline);
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        controller.shutdown().await;
    }

    #[tokio::test]
    async fn unbound_alias_rejected_at_spawn() {
        let (api, mut config) = retail_setup().await;
        config.bindings.remove("P");
        let cast = Cast::new(api);
        assert!(matches!(cast.spawn(config).await, Err(Error::Dxg(_))));
    }
}
