//! Property tests for the Log exchange and its dataflow operators.

use knactor_logstore::{AggFn, LogStore, Query};
use proptest::prelude::*;
use serde_json::{json, Value};

fn record() -> impl Strategy<Value = Value> {
    (any::<i32>(), any::<bool>(), "[a-c]{1}")
        .prop_map(|(n, b, room)| json!({"n": n, "flag": b, "room": room}))
}

proptest! {
    /// Sequence numbers are dense and strictly increasing from 1, and
    /// read_from(k) returns exactly the records after k.
    #[test]
    fn seq_numbers_dense(records in proptest::collection::vec(record(), 0..50), cut in 0u64..60) {
        let log = LogStore::new("p/l");
        for r in &records {
            log.append(r.clone());
        }
        let all = log.read_all();
        prop_assert_eq!(all.len(), records.len());
        for (i, r) in all.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.fields, &records[i]);
        }
        let suffix = log.read_from(cut);
        let expected: Vec<_> = all.iter().filter(|r| r.seq > cut).collect();
        prop_assert_eq!(suffix.len(), expected.len());
    }

    /// Filter keeps exactly the truthy subset, preserving order.
    #[test]
    fn filter_is_a_subsequence(records in proptest::collection::vec(record(), 0..40)) {
        let q = Query::new().filter("this.flag").unwrap();
        let out = q.run(records.iter().cloned()).unwrap();
        let expected: Vec<&Value> = records.iter().filter(|r| r["flag"] == json!(true)).collect();
        prop_assert_eq!(out.len(), expected.len());
        for (got, want) in out.iter().zip(expected) {
            prop_assert_eq!(got, want);
        }
    }

    /// Filtering twice with the same predicate is idempotent.
    #[test]
    fn filter_idempotent(records in proptest::collection::vec(record(), 0..40)) {
        let q = Query::new().filter("this.n > 0").unwrap();
        let once = q.run(records.iter().cloned()).unwrap();
        let twice = q.run(once.iter().cloned()).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// Rename preserves record count and moves exactly one key.
    #[test]
    fn rename_preserves_shape(records in proptest::collection::vec(record(), 0..40)) {
        let q = Query::new().rename("flag", "motion");
        let out = q.run(records.iter().cloned()).unwrap();
        prop_assert_eq!(out.len(), records.len());
        for (got, orig) in out.iter().zip(&records) {
            prop_assert!(got.get("flag").is_none());
            prop_assert_eq!(got.get("motion"), orig.get("flag"));
            prop_assert_eq!(got.get("n"), orig.get("n"));
        }
    }

    /// Sort yields a permutation ordered by the key (nulls first).
    #[test]
    fn sort_is_ordered_permutation(records in proptest::collection::vec(record(), 0..40)) {
        let q = Query::new().sort("n", false).unwrap();
        let out = q.run(records.iter().cloned()).unwrap();
        prop_assert_eq!(out.len(), records.len());
        for w in out.windows(2) {
            let a = w[0]["n"].as_i64().unwrap();
            let b = w[1]["n"].as_i64().unwrap();
            prop_assert!(a <= b);
        }
        // Permutation: same multiset of n values.
        let mut before: Vec<i64> = records.iter().map(|r| r["n"].as_i64().unwrap()).collect();
        let mut after: Vec<i64> = out.iter().map(|r| r["n"].as_i64().unwrap()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    /// Grouped counts sum to the record count.
    #[test]
    fn grouped_count_partitions(records in proptest::collection::vec(record(), 0..40)) {
        let q = Query::new().aggregate(Some("room"), AggFn::Count, None, "c").unwrap();
        let out = q.run(records.iter().cloned()).unwrap();
        let total: u64 = out.iter().map(|r| r["c"].as_u64().unwrap()).sum();
        prop_assert_eq!(total as usize, records.len());
        // At most 3 rooms exist in the generator.
        prop_assert!(out.len() <= 3);
    }

    /// Sum aggregate equals the reference fold.
    #[test]
    fn sum_matches_reference(records in proptest::collection::vec(record(), 0..40)) {
        let q = Query::new().aggregate(None, AggFn::Sum, Some("n"), "total").unwrap();
        let out = q.run(records.iter().cloned()).unwrap();
        let expected: f64 = records.iter().map(|r| r["n"].as_i64().unwrap() as f64).sum();
        let got = out[0]["total"].as_f64().unwrap();
        prop_assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    /// Limit truncates to exactly min(n, len).
    #[test]
    fn limit_truncates(records in proptest::collection::vec(record(), 0..40), n in 0usize..50) {
        let q = Query::new().limit(n);
        let out = q.run(records.iter().cloned()).unwrap();
        prop_assert_eq!(out.len(), records.len().min(n));
    }

    /// Retention never loses the most recent record and keeps seq order.
    #[test]
    fn retention_keeps_recent(extra in 1usize..3000) {
        let log = LogStore::new("p/r");
        log.set_retention(Some(1024));
        for i in 0..extra {
            log.append(json!({"i": i}));
        }
        let all = log.read_all();
        prop_assert!(!all.is_empty());
        prop_assert_eq!(all.last().unwrap().seq, extra as u64);
        for w in all.windows(2) {
            prop_assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }
}
