//! Regenerates **Table 1**: composition cost, API-centric vs Knactor.
//!
//! ```text
//! cargo run -p knactor-bench --bin table1
//! ```
//!
//! Counts real files and SLOC from the task manifests in
//! `knactor_apps::table1` (see that module for the counting rules) and
//! prints the paper-style table plus the per-task artifact lists.

use knactor_apps::table1::{manifests, measure};

fn main() {
    println!("Table 1: comparison of composition cost (API-centric vs Knactor)\n");
    println!("Operations: c = code change, f = config change, b = rebuild, d = redeploy\n");

    let mut rows = Vec::new();
    for task in manifests() {
        let api = measure(&task.api).expect("measure API artifacts");
        let kn = measure(&task.kn).expect("measure KN artifacts");
        rows.push(vec![
            task.id.to_string(),
            api.ops_string(),
            kn.ops_string(),
            api.files.to_string(),
            kn.files.to_string(),
            api.sloc.to_string(),
            kn.sloc.to_string(),
        ]);
    }
    println!(
        "{}",
        knactor_bench::render_table(
            &[
                "Task",
                "API ops",
                "KN ops",
                "API files",
                "KN files",
                "API SLOC",
                "KN SLOC"
            ],
            &rows,
        )
    );

    println!("Paper's measurements for the same tasks (their codebase):");
    println!("  T1: API c/f/b/d, 8 files, 109 SLOC   vs  KN f, 1 file, 7 SLOC");
    println!("  T2: API c/f/b/d, 2 files,  14 SLOC   vs  KN f, 1 file, 1 SLOC");
    println!("  T3: API c/f/b/d, 4 files,  93 SLOC   vs  KN f, 1 file, 7 SLOC");
    println!();

    for task in manifests() {
        println!("{} — {}", task.id, task.description);
        println!("  API-centric artifacts:");
        for a in &task.api {
            let sloc = knactor_apps::table1::count_sloc(a).unwrap_or(0);
            let scope = a
                .marker
                .map(|m| format!(" [region {m}]"))
                .unwrap_or_default();
            println!("    {:>4} SLOC  {}{}", sloc, a.path, scope);
        }
        println!("  Knactor artifacts:");
        for a in &task.kn {
            let sloc = knactor_apps::table1::count_sloc(a).unwrap_or(0);
            let scope = a
                .marker
                .map(|m| format!(" [region {m}]"))
                .unwrap_or_default();
            println!("    {:>4} SLOC  {}{}", sloc, a.path, scope);
        }
        println!();
    }
}
