//! Evaluator for DXG expressions.
//!
//! Evaluation is pure: the environment is read-only, builtins are
//! side-effect-free, and the same `(expr, env)` pair always produces the
//! same value. Semantics follow Python where the paper's spec syntax does:
//!
//! * `and` / `or` short-circuit and yield the deciding operand
//! * truthiness: `null`/`false`/`0`/`""`/`[]`/`{}` are falsy
//! * all arithmetic is over f64 (JSON numbers); `+` also concatenates
//!   strings and arrays
//! * comparisons work on numbers and on strings (lexicographic)
//! * member access on `null` or a missing field yields `null` rather than
//!   an error — integrators routinely evaluate against states whose
//!   `external` fields are not filled yet, and "not there yet" must be
//!   representable. Indexing out of bounds is also `null`. Calling an
//!   unknown *function*, by contrast, is an error: that is a spec bug.

use crate::ast::{BinOp, Expr, UnOp};
use crate::builtins::FnRegistry;
use knactor_types::{Error, Result};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The evaluation environment: bindings from root identifiers (service
/// aliases, `this`, comprehension variables) to state values.
///
/// Values are held as `Arc<Value>` so binding a freshly fetched object
/// (already shared with its store) and cloning an environment are
/// refcount bumps, not deep copies.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: BTreeMap<String, Arc<Value>>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    /// Bind a root identifier to a value (overwrites). Accepts owned
    /// values and shared `Arc<Value>` handles alike.
    pub fn bind(&mut self, name: impl Into<String>, value: impl Into<Arc<Value>>) -> &mut Self {
        self.bindings.insert(name.into(), value.into());
        self
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name).map(|v| &**v)
    }

    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.bindings.keys()
    }
}

/// Evaluate an expression against an environment and function registry.
pub fn eval(expr: &Expr, env: &Env, fns: &FnRegistry) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Ident(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Expr(format!("unbound identifier '{name}'"))),
        Expr::Member(base, field) => {
            let b = eval(base, env, fns)?;
            Ok(match &b {
                Value::Object(map) => map.get(field).cloned().unwrap_or(Value::Null),
                Value::Null => Value::Null,
                other => {
                    return Err(Error::Expr(format!(
                        "cannot access field '{field}' on {}",
                        knactor_types::value::type_name(other)
                    )))
                }
            })
        }
        Expr::Index(base, idx) => {
            let b = eval(base, env, fns)?;
            let i = eval(idx, env, fns)?;
            match (&b, &i) {
                (Value::Array(items), Value::Number(n)) => {
                    let raw = n.as_f64().unwrap_or(f64::NAN);
                    if raw.fract() != 0.0 || raw < 0.0 {
                        return Err(Error::Expr(format!("bad array index {raw}")));
                    }
                    Ok(items.get(raw as usize).cloned().unwrap_or(Value::Null))
                }
                (Value::Object(map), Value::String(key)) => {
                    Ok(map.get(key).cloned().unwrap_or(Value::Null))
                }
                (Value::Null, _) => Ok(Value::Null),
                (b, i) => Err(Error::Expr(format!(
                    "cannot index {} with {}",
                    knactor_types::value::type_name(b),
                    knactor_types::value::type_name(i)
                ))),
            }
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env, fns)?);
            }
            fns.call(name, &vals)
        }
        Expr::Unary(UnOp::Neg, inner) => {
            let v = eval(inner, env, fns)?;
            let n = as_number(&v, "unary '-'")?;
            Ok(num(-n))
        }
        Expr::Unary(UnOp::Not, inner) => {
            let v = eval(inner, env, fns)?;
            Ok(Value::Bool(!truthy(&v)))
        }
        Expr::Binary(BinOp::And, l, r) => {
            let lv = eval(l, env, fns)?;
            if !truthy(&lv) {
                Ok(lv)
            } else {
                eval(r, env, fns)
            }
        }
        Expr::Binary(BinOp::Or, l, r) => {
            let lv = eval(l, env, fns)?;
            if truthy(&lv) {
                Ok(lv)
            } else {
                eval(r, env, fns)
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = eval(l, env, fns)?;
            let rv = eval(r, env, fns)?;
            binary(*op, &lv, &rv)
        }
        Expr::If {
            then,
            cond,
            otherwise,
        } => {
            let c = eval(cond, env, fns)?;
            if truthy(&c) {
                eval(then, env, fns)
            } else {
                eval(otherwise, env, fns)
            }
        }
        Expr::Comprehension {
            body,
            var,
            source,
            filter,
        } => {
            let src = eval(source, env, fns)?;
            let items: Vec<Value> = match src {
                Value::Array(items) => items,
                // Iterating an object yields its values, which makes
                // `[item.name for item in C.order.items]` work whether
                // `items` is a list or a keyed map (the retail app's cart
                // uses a map keyed by product id).
                Value::Object(map) => map.into_iter().map(|(_, v)| v).collect(),
                Value::Null => Vec::new(),
                other => {
                    return Err(Error::Expr(format!(
                        "cannot iterate {}",
                        knactor_types::value::type_name(&other)
                    )))
                }
            };
            let mut out = Vec::new();
            let mut inner_env = env.clone();
            for item in items {
                inner_env.bind(var.clone(), item);
                if let Some(f) = filter {
                    let keep = eval(f, &inner_env, fns)?;
                    if !truthy(&keep) {
                        continue;
                    }
                }
                out.push(eval(body, &inner_env, fns)?);
            }
            Ok(Value::Array(out))
        }
        Expr::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for e in items {
                out.push(eval(e, env, fns)?);
            }
            Ok(Value::Array(out))
        }
    }
}

/// Python-style truthiness.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Number(n) => n.as_f64().map(|f| f != 0.0).unwrap_or(false),
        Value::String(s) => !s.is_empty(),
        Value::Array(a) => !a.is_empty(),
        Value::Object(o) => !o.is_empty(),
    }
}

/// Numeric-aware equality: `1 == 1.0`, everything else structural.
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x
            .as_f64()
            .zip(y.as_f64())
            .map(|(x, y)| x == y)
            .unwrap_or(false),
        (Value::Array(xs), Value::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| values_equal(x, y))
        }
        (Value::Object(xm), Value::Object(ym)) => {
            xm.len() == ym.len()
                && xm
                    .iter()
                    .all(|(k, v)| ym.get(k).map(|w| values_equal(v, w)).unwrap_or(false))
        }
        _ => a == b,
    }
}

fn binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinOp::Add => match (l, r) {
            (Value::String(a), Value::String(b)) => Ok(Value::String(format!("{a}{b}"))),
            (Value::Array(a), Value::Array(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Value::Array(out))
            }
            _ => {
                let (a, b) = (as_number(l, "'+'")?, as_number(r, "'+'")?);
                Ok(num(a + b))
            }
        },
        BinOp::Sub => Ok(num(as_number(l, "'-'")? - as_number(r, "'-'")?)),
        BinOp::Mul => Ok(num(as_number(l, "'*'")? * as_number(r, "'*'")?)),
        BinOp::Div => {
            let d = as_number(r, "'/'")?;
            if d == 0.0 {
                return Err(Error::Expr("division by zero".to_string()));
            }
            Ok(num(as_number(l, "'/'")? / d))
        }
        BinOp::Mod => {
            let d = as_number(r, "'%'")?;
            if d == 0.0 {
                return Err(Error::Expr("modulo by zero".to_string()));
            }
            Ok(num(as_number(l, "'%'")?.rem_euclid(d)))
        }
        BinOp::Eq => Ok(Value::Bool(values_equal(l, r))),
        BinOp::Ne => Ok(Value::Bool(!values_equal(l, r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare(l, r)?;
            let b = match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops handled in eval"),
    }
}

fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Number(a), Value::Number(b)) => {
            let (a, b) = (
                a.as_f64().unwrap_or(f64::NAN),
                b.as_f64().unwrap_or(f64::NAN),
            );
            a.partial_cmp(&b)
                .ok_or_else(|| Error::Expr("cannot compare NaN".to_string()))
        }
        (Value::String(a), Value::String(b)) => Ok(a.cmp(b)),
        (a, b) => Err(Error::Expr(format!(
            "cannot order {} and {}",
            knactor_types::value::type_name(a),
            knactor_types::value::type_name(b)
        ))),
    }
}

pub(crate) fn as_number(v: &Value, ctx: &str) -> Result<f64> {
    match v {
        Value::Number(n) => n
            .as_f64()
            .ok_or_else(|| Error::Expr(format!("non-finite number in {ctx}"))),
        other => Err(Error::Expr(format!(
            "{ctx} expects a number, got {}",
            knactor_types::value::type_name(other)
        ))),
    }
}

pub(crate) fn num(f: f64) -> Value {
    serde_json::Number::from_f64(f)
        .map(Value::Number)
        .unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_expr, FnRegistry};
    use serde_json::json;

    fn run(src: &str, env: &Env) -> Value {
        let fns = FnRegistry::standard();
        eval(&parse_expr(src).unwrap(), env, &fns).unwrap()
    }

    fn run_err(src: &str, env: &Env) -> Error {
        let fns = FnRegistry::standard();
        eval(&parse_expr(src).unwrap(), env, &fns).unwrap_err()
    }

    fn retail_env() -> Env {
        let mut env = Env::new();
        env.bind(
            "C",
            json!({"order": {
                "items": [{"name": "mug", "qty": 2}, {"name": "pen", "qty": 0}],
                "address": "Soda Hall",
                "cost": 1200.0,
                "totalCost": 1212.5,
                "currency": "USD"
            }}),
        );
        env.bind(
            "S",
            json!({"quote": {"price": 12.5, "currency": "USD"}, "id": "ship-7"}),
        );
        env.bind("P", json!({"id": "pay-3"}));
        env.bind("this", json!({"currency": "USD"}));
        env
    }

    #[test]
    fn fig6_shipping_policy() {
        let env = retail_env();
        assert_eq!(
            run(r#""air" if C.order.cost > 1000 else "ground""#, &env),
            json!("air")
        );
        let mut cheap = retail_env();
        cheap.bind("C", json!({"order": {"cost": 30}}));
        assert_eq!(
            run(r#""air" if C.order.cost > 1000 else "ground""#, &cheap),
            json!("ground")
        );
    }

    #[test]
    fn fig6_items_comprehension() {
        let env = retail_env();
        assert_eq!(
            run("[item.name for item in C.order.items]", &env),
            json!(["mug", "pen"])
        );
        assert_eq!(
            run(
                "[item.name for item in C.order.items if item.qty > 0]",
                &env
            ),
            json!(["mug"])
        );
    }

    #[test]
    fn fig6_currency_convert() {
        let env = retail_env();
        assert_eq!(
            run(
                "currency_convert(S.quote.price, S.quote.currency, this.currency)",
                &env
            ),
            json!(12.5)
        );
    }

    #[test]
    fn missing_field_is_null_not_error() {
        let env = retail_env();
        assert_eq!(run("C.order.nonexistent", &env), json!(null));
        assert_eq!(run("C.order.nonexistent.deeper", &env), json!(null));
        assert_eq!(run("C.order.items[99]", &env), json!(null));
    }

    #[test]
    fn member_on_scalar_is_error() {
        let env = retail_env();
        let e = run_err("C.order.cost.units", &env);
        assert!(matches!(e, Error::Expr(_)));
    }

    #[test]
    fn unbound_identifier_is_error() {
        let env = Env::new();
        assert!(matches!(run_err("missing", &env), Error::Expr(_)));
    }

    #[test]
    fn arithmetic_and_precedence() {
        let env = Env::new();
        assert_eq!(run("2 + 3 * 4", &env), json!(14.0));
        assert_eq!(run("10 / 4", &env), json!(2.5));
        assert_eq!(run("7 % 3", &env), json!(1.0));
        assert_eq!(run("-7 % 3", &env), json!(2.0)); // Euclidean, like Python.
    }

    #[test]
    fn division_by_zero_is_error() {
        let env = Env::new();
        assert!(matches!(run_err("1 / 0", &env), Error::Expr(_)));
        assert!(matches!(run_err("1 % 0", &env), Error::Expr(_)));
    }

    #[test]
    fn string_and_array_concat() {
        let env = Env::new();
        assert_eq!(run(r#""a" + "b""#, &env), json!("ab"));
        assert_eq!(run("[1] + [2, 3]", &env), json!([1.0, 2.0, 3.0]));
    }

    #[test]
    fn short_circuit_returns_operand() {
        let mut env = Env::new();
        env.bind("x", json!(null));
        env.bind("y", json!("fallback"));
        assert_eq!(run("x or y", &env), json!("fallback"));
        assert_eq!(run("y or x", &env), json!("fallback"));
        assert_eq!(run("x and y", &env), json!(null));
        // The right side is never evaluated (would error on unbound).
        assert_eq!(run("x and zzz_unbound", &env), json!(null));
        assert_eq!(run("y or zzz_unbound", &env), json!("fallback"));
    }

    #[test]
    fn truthiness_table() {
        assert!(!truthy(&json!(null)));
        assert!(!truthy(&json!(false)));
        assert!(!truthy(&json!(0)));
        assert!(!truthy(&json!("")));
        assert!(!truthy(&json!([])));
        assert!(!truthy(&json!({})));
        assert!(truthy(&json!(1)));
        assert!(truthy(&json!("x")));
        assert!(truthy(&json!([0])));
    }

    #[test]
    fn equality_is_numeric_aware() {
        let env = Env::new();
        assert_eq!(run("1 == 1.0", &env), json!(true));
        assert_eq!(run(r#"1 == "1""#, &env), json!(false));
        assert_eq!(run("[1, 2] == [1, 2]", &env), json!(true));
        assert_eq!(run("null == null", &env), json!(true));
    }

    #[test]
    fn string_comparison_lexicographic() {
        let env = Env::new();
        assert_eq!(run(r#""air" < "ground""#, &env), json!(true));
        assert!(matches!(run_err(r#"1 < "x""#, &env), Error::Expr(_)));
    }

    #[test]
    fn object_iteration_yields_values() {
        let mut env = Env::new();
        env.bind(
            "cart",
            json!({"items": {"sku1": {"qty": 1}, "sku2": {"qty": 3}}}),
        );
        // Values come straight from the state, so they keep integer form.
        assert_eq!(run("[i.qty for i in cart.items]", &env), json!([1, 3]));
    }

    #[test]
    fn iterating_null_yields_empty() {
        let mut env = Env::new();
        env.bind("x", json!({"xs": null}));
        assert_eq!(run("[i for i in x.xs]", &env), json!([]));
    }

    #[test]
    fn index_object_by_string() {
        let mut env = Env::new();
        env.bind("m", json!({"a": 1}));
        assert_eq!(run(r#"m["a"]"#, &env), json!(1));
        assert_eq!(run(r#"m["zz"]"#, &env), json!(null));
    }

    #[test]
    fn comprehension_shadows_outer_binding() {
        let mut env = Env::new();
        env.bind("i", json!("outer"));
        env.bind("xs", json!([1, 2]));
        assert_eq!(run("[i * 2 for i in xs]", &env), json!([2.0, 4.0]));
        // Outer binding visible again outside.
        assert_eq!(run("i", &env), json!("outer"));
    }
}
