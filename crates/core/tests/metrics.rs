//! Unit + property tests for `core::metrics` (the registry re-exported
//! from `knactor-types`): concurrency linearity, histogram bucket
//! properties, snapshot consistency under writes, and the Prometheus
//! exposition format.

use knactor_core::metrics::{MetricsRegistry, BUCKET_BOUNDS_NS};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// splitmix64 — the same generator style the proto/WAL property tests
/// use; deterministic, seedable, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[test]
fn concurrent_increments_are_linear() {
    // 16 threads × 10_000 increments each: nothing lost, nothing
    // double-counted. Exercises both the shared-handle path and the
    // register-or-get lookup path under contention.
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 10_000;
    let reg = Arc::new(MetricsRegistry::new());
    let shared = reg.counter("linearity_total", &[("mode", "shared")]);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    if i % 2 == 0 {
                        shared.inc();
                    } else {
                        // Re-look the series up by name each time.
                        reg.counter("linearity_total", &[("mode", "shared")]).inc();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(shared.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_observes_conserve_count() {
    const THREADS: usize = 16;
    const PER_THREAD: usize = 5_000;
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let mut rng = Rng(0xC0FFEE ^ t as u64);
                let h = reg.histogram("conserve_seconds", &[]);
                for _ in 0..PER_THREAD {
                    h.observe_ns(rng.below(100_000_000_000));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    let h = &snap.histograms[0];
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(h.count, total);
    assert_eq!(h.buckets.iter().sum::<u64>(), total, "count conservation");
}

#[test]
fn histogram_bucket_properties_hold_for_random_observations() {
    // Property sweep over random observation sets: monotone CDF, count
    // conservation, quantiles monotone in q and clamped to [min, max].
    let mut rng = Rng(0xDEAD_BEEF);
    for case in 0..50u64 {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("prop_seconds", &[]);
        let n = 1 + rng.below(500);
        let mut min_seen = u64::MAX;
        let mut max_seen = 0u64;
        for _ in 0..n {
            // Skewed across the full bucket range including overflow.
            let ns = match rng.below(4) {
                0 => rng.below(1_000_000),                       // sub-ms
                1 => rng.below(1_000_000_000),                   // sub-second
                2 => rng.below(60_000_000_000),                  // within bounds
                _ => 60_000_000_000 + rng.below(10_000_000_000), // overflow
            };
            min_seen = min_seen.min(ns);
            max_seen = max_seen.max(ns);
            h.observe_ns(ns);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.count, n, "case {case}");
        assert_eq!(hs.min_ns, min_seen, "case {case}");
        assert_eq!(hs.max_ns, max_seen, "case {case}");
        assert_eq!(hs.buckets.len(), BUCKET_BOUNDS_NS.len() + 1);
        assert_eq!(
            hs.buckets.iter().sum::<u64>(),
            n,
            "case {case}: conservation"
        );

        // Monotone CDF by construction (cumulative sums of non-negative
        // buckets); assert the rendered cumulative counts agree.
        let mut cumulative = 0u64;
        for &b in &hs.buckets {
            cumulative += b;
        }
        assert_eq!(cumulative, n);

        // Quantiles: monotone in q, inside [min, max].
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut prev = f64::MIN;
        for q in qs {
            let v = hs.quantile(q).expect("non-empty");
            assert!(
                v >= prev - 1e-12,
                "case {case}: quantile({q}) = {v} < previous {prev}"
            );
            assert!(v >= hs.min_seconds().unwrap() - 1e-12, "case {case}");
            assert!(v <= hs.max_seconds().unwrap() + 1e-12, "case {case}");
            prev = v;
        }
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let reg = MetricsRegistry::new();
    let _ = reg.histogram("empty_seconds", &[]);
    let snap = reg.snapshot();
    let hs = &snap.histograms[0];
    assert_eq!(hs.count, 0);
    assert!(hs.p50().is_none());
    assert!(hs.max_seconds().is_none());
    assert!(hs.mean_seconds().is_none());
}

#[test]
fn snapshot_is_consistent_under_writes() {
    // Writers hammer a counter and a histogram while a reader snapshots:
    // every snapshot must be internally coherent (bucket sum >= count
    // read-before-buckets never loses observations; counter values are
    // monotone across successive snapshots).
    let reg = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut rng = Rng(t);
                let c = reg.counter("busy_total", &[]);
                let h = reg.histogram("busy_seconds", &[]);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    c.inc();
                    h.observe_ns(rng.below(10_000_000));
                }
            })
        })
        .collect();

    let mut last_counter = 0u64;
    let mut last_hist_count = 0u64;
    for _ in 0..200 {
        let snap = reg.snapshot();
        if let Some(c) = snap.counters.iter().find(|c| c.name == "busy_total") {
            assert!(c.value >= last_counter, "counter went backwards");
            last_counter = c.value;
        }
        if let Some(h) = snap.histograms.iter().find(|h| h.name == "busy_seconds") {
            assert!(h.count >= last_hist_count, "histogram count went backwards");
            assert!(
                h.buckets.iter().sum::<u64>() >= h.count,
                "bucket sum {} < count {} — snapshot lost observations",
                h.buckets.iter().sum::<u64>(),
                h.count
            );
            last_hist_count = h.count;
        }
        thread::sleep(Duration::from_micros(50));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

#[test]
fn prometheus_exposition_golden() {
    let reg = MetricsRegistry::new();
    reg.counter(
        "knactor_store_ops_total",
        &[("store", "a/state"), ("op", "get")],
    )
    .add(7);
    reg.counter(
        "knactor_store_ops_total",
        &[("op", "create"), ("store", "a/state")],
    )
    .add(2);
    reg.gauge("knactor_store_outbox_lag", &[("store", "a/state")])
        .set(3);
    let h = reg.histogram("knactor_store_commit_seconds", &[("store", "a/state")]);
    h.observe(Duration::from_micros(2)); // second bucket (le=2.5µs)
    h.observe(Duration::from_millis(2)); // le=2.5ms bucket
    let text = reg.snapshot().to_prometheus();

    // Label keys sorted (op before store), series sorted within family,
    // one TYPE line per family.
    assert_eq!(
        text.matches("# TYPE knactor_store_ops_total counter")
            .count(),
        1
    );
    assert!(text.contains("knactor_store_ops_total{op=\"create\",store=\"a/state\"} 2\n"));
    assert!(text.contains("knactor_store_ops_total{op=\"get\",store=\"a/state\"} 7\n"));
    assert!(text.contains("# TYPE knactor_store_outbox_lag gauge\n"));
    assert!(text.contains("knactor_store_outbox_lag{store=\"a/state\"} 3\n"));
    assert!(text.contains("# TYPE knactor_store_commit_seconds histogram\n"));
    // Cumulative buckets (`le` renders after the series labels): the 2µs
    // observation is inside le=2.5µs (0.0000025); both observations are
    // inside le=0.0025.
    assert!(text
        .contains("knactor_store_commit_seconds_bucket{store=\"a/state\",le=\"0.0000025\"} 1\n"));
    assert!(
        text.contains("knactor_store_commit_seconds_bucket{store=\"a/state\",le=\"0.0025\"} 2\n")
    );
    assert!(text.contains("knactor_store_commit_seconds_bucket{store=\"a/state\",le=\"+Inf\"} 2\n"));
    assert!(text.contains("knactor_store_commit_seconds_count{store=\"a/state\"} 2\n"));

    // Exposition escaping.
    let reg2 = MetricsRegistry::new();
    reg2.counter("esc_total", &[("v", "a\\b\"c\nd")]).inc();
    let text2 = reg2.snapshot().to_prometheus();
    assert!(text2.contains("esc_total{v=\"a\\\\b\\\"c\\nd\"} 1\n"));
}

#[test]
fn snapshot_roundtrips_through_serde() {
    let reg = MetricsRegistry::new();
    reg.counter("roundtrip_total", &[("k", "v")]).add(42);
    reg.histogram("roundtrip_seconds", &[])
        .observe(Duration::from_millis(5));
    let snap = reg.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: knactor_core::metrics::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);
}
