//! Columnar encoding for sealed segments.
//!
//! A sealed segment never changes, so we can afford a one-time re-encode
//! into per-field columns. Telemetry is repetitive — a handful of device
//! ids, rooms and event kinds repeated across thousands of records — so
//! each column dictionary-encodes its distinct values and run-length
//! encodes the code stream. High-cardinality columns (free-text, floats
//! that never repeat) fall back to a plain value vector so pathological
//! data never blows up the dictionary.
//!
//! Encoding is exact: `encode` → [`ColumnarSegment::materialize_all`]
//! round-trips every record bit-for-bit (including the int-vs-float
//! distinction — dictionary identity is the value's canonical JSON text,
//! under which `1` and `1.0` stay distinct).

use knactor_types::Value;
use std::collections::BTreeMap;

/// Code meaning "this record does not have the field at all" (distinct
/// from the field being present with value `null`).
const ABSENT: u32 = u32::MAX;

/// Above this many rows, a column whose distinct-value count exceeds
/// half the rows is stored plain: the dictionary would cost more than it
/// saves.
const DICT_MIN_ROWS: usize = 8;

/// One field's values across every record of a segment.
#[derive(Debug, Clone)]
pub enum Column {
    /// Distinct values plus a run-length-encoded code stream.
    /// `runs` is a sequence of `(code, count)`; `code == ABSENT` marks
    /// records without the field.
    Dict {
        values: Vec<Value>,
        runs: Vec<(u32, u32)>,
    },
    /// One slot per record; `None` marks records without the field.
    Plain(Vec<Option<Value>>),
}

impl Column {
    /// Number of records covered by the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Dict { runs, .. } => runs.iter().map(|&(_, n)| n as usize).sum(),
            Column::Plain(slots) => slots.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate retained heap bytes (shared estimator with the row
    /// form, so compression ratios compare like with like).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::Dict { values, runs } => {
                values.iter().map(approx_value_bytes).sum::<usize>() + runs.len() * 8
            }
            Column::Plain(slots) => slots
                .iter()
                .map(|s| s.as_ref().map(approx_value_bytes).unwrap_or(1))
                .sum(),
        }
    }

    /// Visit each run as `(row_count, field_value)`; `None` = absent.
    /// Plain columns visit one "run" per record.
    pub fn for_each_run(&self, mut f: impl FnMut(usize, Option<&Value>)) {
        match self {
            Column::Dict { values, runs } => {
                for &(code, n) in runs {
                    let v = if code == ABSENT {
                        None
                    } else {
                        Some(&values[code as usize])
                    };
                    f(n as usize, v);
                }
            }
            Column::Plain(slots) => {
                for s in slots {
                    f(1, s.as_ref());
                }
            }
        }
    }

    /// Expand to one dictionary code per record. Plain columns get a
    /// synthetic identity coding (`row index` as code, `ABSENT` for
    /// missing) so callers can treat both layouts uniformly.
    pub fn codes(&self) -> Vec<u32> {
        match self {
            Column::Dict { runs, .. } => {
                let mut out = Vec::with_capacity(self.len());
                for &(code, n) in runs {
                    out.extend(std::iter::repeat_n(code, n as usize));
                }
                out
            }
            Column::Plain(slots) => slots
                .iter()
                .enumerate()
                .map(|(i, s)| if s.is_some() { i as u32 } else { ABSENT })
                .collect(),
        }
    }

    /// The value for a dictionary code produced by [`Column::codes`].
    pub fn code_value(&self, code: u32) -> Option<&Value> {
        if code == ABSENT {
            return None;
        }
        match self {
            Column::Dict { values, .. } => values.get(code as usize),
            Column::Plain(slots) => slots.get(code as usize).and_then(|s| s.as_ref()),
        }
    }

    /// Distinct codes that actually occur (excluding `ABSENT`), for
    /// evaluate-once-per-distinct-value predicate paths.
    pub fn distinct_codes(&self) -> Vec<u32> {
        match self {
            Column::Dict { runs, .. } => {
                let mut seen: Vec<u32> = runs
                    .iter()
                    .map(|&(c, _)| c)
                    .filter(|&c| c != ABSENT)
                    .collect();
                seen.sort_unstable();
                seen.dedup();
                seen
            }
            Column::Plain(slots) => (0..slots.len() as u32)
                .filter(|&i| slots[i as usize].is_some())
                .collect(),
        }
    }

    /// Whether any record lacks the field.
    pub fn has_absent(&self) -> bool {
        match self {
            Column::Dict { runs, .. } => runs.iter().any(|&(c, _)| c == ABSENT),
            Column::Plain(slots) => slots.iter().any(|s| s.is_none()),
        }
    }
}

/// A fully column-oriented segment: every record re-expressed as one
/// entry per field column. Field names are stored once.
#[derive(Debug, Clone)]
pub struct ColumnarSegment {
    len: usize,
    /// Sorted by field name (records are `BTreeMap`-backed objects, so
    /// materialization re-sorts for free on insert).
    fields: Vec<(String, Column)>,
}

impl ColumnarSegment {
    /// Re-encode row payloads into columns. Returns `None` if any payload
    /// is not a JSON object — the store wraps non-objects on append, so
    /// this only trips on legacy data, which then simply stays row-form.
    pub fn encode(rows: &[Value]) -> Option<ColumnarSegment> {
        let mut field_names: Vec<&str> = Vec::new();
        for r in rows {
            let obj = r.as_object()?;
            for k in obj.keys() {
                field_names.push(k.as_str());
            }
        }
        field_names.sort_unstable();
        field_names.dedup();

        let mut fields = Vec::with_capacity(field_names.len());
        for name in field_names {
            fields.push((name.to_string(), encode_column(rows, name)));
        }
        Some(ColumnarSegment {
            len: rows.len(),
            fields,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn approx_bytes(&self) -> usize {
        self.fields
            .iter()
            .map(|(name, col)| name.len() + col.approx_bytes())
            .sum()
    }

    pub fn column(&self, field: &str) -> Option<&Column> {
        self.fields
            .iter()
            .find(|(name, _)| name == field)
            .map(|(_, col)| col)
    }

    /// Rebuild every record payload, in order.
    pub fn materialize_all(&self) -> Vec<Value> {
        let mut out: Vec<serde_json::Map> = (0..self.len).map(|_| serde_json::Map::new()).collect();
        for (name, col) in &self.fields {
            let mut row = 0usize;
            col.for_each_run(|n, v| {
                if let Some(v) = v {
                    for slot in &mut out[row..row + n] {
                        slot.insert(name.clone(), v.clone());
                    }
                }
                row += n;
            });
        }
        out.into_iter().map(Value::Object).collect()
    }

    /// Rebuild only the records at `indices` (must be sorted ascending),
    /// in that order. Runs are walked once per column with a two-pointer
    /// sweep, so cost is `O(runs + |indices|)` per column.
    pub fn materialize_selected(&self, indices: &[u32]) -> Vec<Value> {
        let mut out: Vec<serde_json::Map> =
            (0..indices.len()).map(|_| serde_json::Map::new()).collect();
        for (name, col) in &self.fields {
            let mut row = 0usize; // first row of current run
            let mut sel = 0usize; // next index position to fill
            col.for_each_run(|n, v| {
                if let Some(v) = v {
                    while sel < indices.len() && (indices[sel] as usize) < row + n {
                        out[sel].insert(name.clone(), v.clone());
                        sel += 1;
                    }
                } else {
                    while sel < indices.len() && (indices[sel] as usize) < row + n {
                        sel += 1;
                    }
                }
                row += n;
            });
        }
        out.into_iter().map(Value::Object).collect()
    }
}

fn encode_column(rows: &[Value], field: &str) -> Column {
    // Dictionary keyed on canonical JSON text: exact identity, so `1`
    // and `1.0` (distinct `Number` representations) never merge.
    let mut dict: BTreeMap<String, u32> = BTreeMap::new();
    let mut values: Vec<Value> = Vec::new();
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for r in rows {
        let slot = r.as_object().and_then(|o| o.get(field));
        let code = match slot {
            None => ABSENT,
            Some(v) => {
                let key = v.to_string();
                *dict.entry(key).or_insert_with(|| {
                    values.push(v.clone());
                    (values.len() - 1) as u32
                })
            }
        };
        match runs.last_mut() {
            Some((c, n)) if *c == code => *n += 1,
            _ => runs.push((code, 1)),
        }
    }
    if rows.len() > DICT_MIN_ROWS && values.len() > rows.len() / 2 {
        // High cardinality: the dictionary costs more than it saves.
        return Column::Plain(
            rows.iter()
                .map(|r| r.as_object().and_then(|o| o.get(field)).cloned())
                .collect(),
        );
    }
    Column::Dict { values, runs }
}

/// Approximate heap footprint of a value, shared by row and columnar
/// accounting so the `knactor_log_retained_bytes` gauge and compression
/// ratios are comparable across layouts.
pub fn approx_value_bytes(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Number(_) => 8,
        Value::String(s) => 16 + s.len(),
        Value::Array(items) => 16 + items.iter().map(approx_value_bytes).sum::<usize>(),
        Value::Object(map) => {
            16 + map
                .iter()
                .map(|(k, v)| 16 + k.len() + approx_value_bytes(v))
                .sum::<usize>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn round_trips_heterogeneous_rows() {
        let rows = vec![
            json!({"a": 1, "b": "x"}),
            json!({"a": 1, "c": null}),
            json!({"b": "x", "n": 1.0}),
            json!({"n": 1}),
        ];
        let seg = ColumnarSegment::encode(&rows).unwrap();
        assert_eq!(seg.materialize_all(), rows);
        // int and float with equal magnitude stay distinct values.
        let n = seg.column("n").unwrap();
        assert_eq!(n.distinct_codes().len(), 2);
    }

    #[test]
    fn rle_collapses_repetition() {
        let rows: Vec<Value> = (0..100).map(|_| json!({"kind": "energy"})).collect();
        let seg = ColumnarSegment::encode(&rows).unwrap();
        match seg.column("kind").unwrap() {
            Column::Dict { values, runs } => {
                assert_eq!(values.len(), 1);
                assert_eq!(runs, &vec![(0, 100)]);
            }
            other => panic!("expected dict column, got {other:?}"),
        }
        assert!(seg.approx_bytes() * 4 < rows.iter().map(approx_value_bytes).sum::<usize>());
    }

    #[test]
    fn high_cardinality_falls_back_to_plain() {
        let rows: Vec<Value> = (0..100).map(|i| json!({"id": format!("u{i}")})).collect();
        let seg = ColumnarSegment::encode(&rows).unwrap();
        assert!(matches!(seg.column("id").unwrap(), Column::Plain(_)));
        assert_eq!(seg.materialize_all(), rows);
    }

    #[test]
    fn materialize_selected_matches_full() {
        let rows: Vec<Value> = (0..50)
            .map(|i| json!({"i": i, "k": if i % 3 == 0 { "a" } else { "b" }}))
            .collect();
        let seg = ColumnarSegment::encode(&rows).unwrap();
        let idx: Vec<u32> = vec![0, 3, 7, 20, 49];
        let picked = seg.materialize_selected(&idx);
        let all = seg.materialize_all();
        for (got, &i) in picked.iter().zip(&idx) {
            assert_eq!(got, &all[i as usize]);
        }
    }

    #[test]
    fn non_object_rows_refuse_encoding() {
        assert!(ColumnarSegment::encode(&[json!(3)]).is_none());
    }

    #[test]
    fn absent_vs_null_distinct() {
        let rows = vec![json!({"a": null}), json!({})];
        let seg = ColumnarSegment::encode(&rows).unwrap();
        assert_eq!(seg.materialize_all(), rows);
        assert!(seg.column("a").unwrap().has_absent());
    }
}
