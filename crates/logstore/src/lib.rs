//! # knactor-logstore
//!
//! The **Log data exchange**: keeps state as structured and
//! semi-structured records in append-only logs and exposes data ingestion
//! and analytics APIs (§3.2). The paper's prototype used the Zed lake;
//! this crate is a from-scratch substitute that preserves the behaviours
//! composition relies on:
//!
//! * **append-only ingestion** with per-store monotone sequence numbers
//!   and segment rotation ([`store::LogStore`])
//! * **schema-on-read**: records are heterogeneous JSON objects; queries
//!   cope with missing fields by treating them as `null`
//! * **analytics / dataflow operators** ([`query`]): `filter`, `rename`,
//!   `project`, `derive`, `sort`, `aggregate`, `limit` — the operator
//!   vocabulary the Sync integrator composes (e.g. renaming the Motion
//!   knactor's `triggered` field to `motion` before loading it into the
//!   House store, Fig. 4)
//! * **tailing**: live subscription from any sequence number, so Sync can
//!   run continuously rather than re-scanning
//!
//! Expressions inside operators are `knactor-expr` expressions with the
//! record bound as `this`, keeping one expression language across both
//! exchanges.

pub mod columnar;
pub mod compact;
pub mod continuous;
mod exec;
pub mod query;
pub mod segment;
pub mod store;

pub use compact::CompactionPolicy;
pub use continuous::{ClosedWindow, WindowSpec, WindowState};
pub use query::{AggFn, Op, Query};
pub use store::{LogConfig, LogExchange, LogRecord, LogStore, TailEvent, TailRx};
