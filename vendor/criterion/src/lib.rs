//! Offline stand-in for `criterion`: measures real wall-clock time per
//! iteration (calibrated batches, median-of-samples) and prints one line
//! per benchmark. No statistical analysis, plots, or baselines.
#![allow(clippy::all)]

use std::future::Future;
use std::time::{Duration, Instant};

pub use tokio::runtime::Runtime;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            label: name.to_string(),
            sample_size: 20,
        };
        f(&mut b);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, name),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    pub fn finish(self) {}
}

/// Per-sample iteration count targeting ~5ms of work, bounded so slow
/// benchmarks (fsync, network round-trips) still finish promptly.
fn calibrate(once: Duration) -> u64 {
    if once.is_zero() {
        return 1000;
    }
    let target = Duration::from_millis(5);
    ((target.as_nanos() / once.as_nanos().max(1)) as u64).clamp(1, 10_000)
}

fn report(label: &str, mut per_iter: Vec<Duration>) {
    per_iter.sort();
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let median = per_iter[per_iter.len() / 2];
    println!("{label:<44} time: [{min:>12.3?} {median:>12.3?} {max:>12.3?}]");
}

pub struct Bencher {
    label: String,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t0 = Instant::now();
        black_box(routine());
        let iters = calibrate(t0.elapsed());
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t0.elapsed() / iters as u32);
        }
        report(&self.label, samples);
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let iters = calibrate(t0.elapsed());
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                total += t0.elapsed();
            }
            samples.push(total / iters as u32);
        }
        report(&self.label, samples);
    }

    /// The routine receives an iteration count and returns the measured
    /// duration for exactly that many iterations (multi-threaded
    /// benchmarks time their own parallel section).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let once = routine(1);
        let iters = calibrate(once);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let total = routine(iters);
            samples.push(total / iters as u32);
        }
        report(&self.label, samples);
    }

    pub fn to_async<'b>(&'b mut self, runtime: &'b Runtime) -> AsyncBencher<'b> {
        AsyncBencher {
            bencher: self,
            runtime,
        }
    }
}

pub struct AsyncBencher<'b> {
    bencher: &'b mut Bencher,
    runtime: &'b Runtime,
}

impl AsyncBencher<'_> {
    pub fn iter<O, F: Future<Output = O>>(&mut self, mut routine: impl FnMut() -> F) {
        let sample_size = self.bencher.sample_size;
        let label = self.bencher.label.clone();
        self.runtime.block_on(async move {
            let t0 = Instant::now();
            black_box(routine().await);
            let iters = calibrate(t0.elapsed());
            let mut samples = Vec::with_capacity(sample_size);
            for _ in 0..sample_size {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine().await);
                }
                samples.push(t0.elapsed() / iters as u32);
            }
            report(&label, samples);
        });
    }

    /// The routine receives an iteration count and returns the measured
    /// duration for exactly that many iterations.
    pub fn iter_custom<F: Future<Output = Duration>>(&mut self, mut routine: impl FnMut(u64) -> F) {
        let sample_size = self.bencher.sample_size;
        let label = self.bencher.label.clone();
        self.runtime.block_on(async move {
            let once = routine(1).await;
            let iters = calibrate(once);
            let mut samples = Vec::with_capacity(sample_size);
            for _ in 0..sample_size {
                let total = routine(iters).await;
                samples.push(total / iters as u32);
            }
            report(&label, samples);
        });
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
