//! Live-reconfiguration micro-bench: how fast is a 1-edge change on a
//! 16-edge composition, and does the swap lose or duplicate records?
//!
//! ```text
//! cargo run -p knactor-bench --bin reconfig --release          # full
//! cargo run -p knactor-bench --bin reconfig --release -- quick # CI variant
//! ```
//!
//! Emits `BENCH_reconfig.json` in the working directory:
//!
//! * **apply latency** — first apply (16 cast edges + 1 sync spawn),
//!   a 1-edge expression change (reconfigure-in-place), and a no-op
//!   re-apply (all edges classified untouched).
//! * **swap loss** — a producer streams records through the sync edge
//!   while the hot cast edge is flipped back and forth; appended vs
//!   delivered vs duplicated counts the records harmed by the swaps
//!   (the composer's contract: zero).
//!
//! Also emits `target/metrics.prom`: the run's full metrics-registry
//! snapshot in Prometheus text format (store ops, activation-stage
//! histograms, composer apply timings) — the scrape CI uploads as an
//! artifact.

use knactor_core::{CastBinding, CastMode, Composer, Composition, SyncConfig, SyncDest, SyncMode};
use knactor_net::proto::{OpSpec, ProfileSpec, QuerySpec};
use knactor_net::ExchangeApi;
use knactor_rbac::Subject;
use knactor_types::StoreId;
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const EDGES: usize = 16;

/// A star DXG: one source alias `A`, `n` target edges each copying one
/// field. The last target carries `hot_expr` so two specs differ in
/// exactly that edge.
fn star_dxg(n: usize, hot_expr: &str) -> String {
    let mut s = String::from("Input:\n  A: Bench/v1/A/a\n");
    for i in 1..=n {
        s.push_str(&format!("  T{i:02}: Bench/v1/T{i:02}/t{i:02}\n"));
    }
    s.push_str("DXG:\n");
    for i in 1..n {
        s.push_str(&format!("  T{i:02}:\n    copied: A.tag\n"));
    }
    s.push_str(&format!("  T{n:02}:\n    copied: {hot_expr}\n"));
    s
}

fn bindings(n: usize) -> BTreeMap<String, CastBinding> {
    let mut b = BTreeMap::new();
    b.insert("A".to_string(), CastBinding::correlated("a/state"));
    for i in 1..=n {
        b.insert(
            format!("T{i:02}"),
            CastBinding::correlated(format!("t{i:02}/state").as_str()),
        );
    }
    b
}

fn composition(hot_expr: &str) -> Composition {
    Composition::new()
        .with_cast(
            knactor_dxg::Dxg::parse(&star_dxg(EDGES, hot_expr)).expect("bench dxg"),
            bindings(EDGES),
            CastMode::Direct,
        )
        .with_sync(SyncConfig {
            name: "relay".to_string(),
            source: StoreId::new("ev/log"),
            dest: SyncDest::Log(StoreId::new("out/log")),
            query: QuerySpec {
                ops: vec![OpSpec::Rename {
                    from: "n".into(),
                    to: "m".into(),
                }],
            },
            mode: SyncMode::Stream,
            max_batch: 1,
        })
}

fn micros(samples: &mut [u64]) -> (u64, u64, u64) {
    samples.sort_unstable();
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    let median = samples[samples.len() / 2];
    let max = *samples.last().unwrap();
    (mean, median, max)
}

async fn run(iterations: usize, stream_records: usize) -> serde_json::Value {
    let (_object, _log, client) =
        knactor_net::loopback::in_process(Subject::operator("reconfig-bench"));
    let api: Arc<dyn ExchangeApi> = Arc::new(client);
    api.create_store("a/state".into(), ProfileSpec::Instant)
        .await
        .unwrap();
    for i in 1..=EDGES {
        api.create_store(
            format!("t{i:02}/state").as_str().into(),
            ProfileSpec::Instant,
        )
        .await
        .unwrap();
    }
    for l in ["ev/log", "out/log"] {
        api.log_create_store(l.into()).await.unwrap();
    }

    let composer = Composer::new("bench", Arc::clone(&api));

    // First apply: every edge spawns.
    let start = Instant::now();
    let report = composer.apply(composition("A.tag")).await.unwrap();
    let first_apply_us = start.elapsed().as_micros() as u64;
    assert_eq!(report.spawned.len(), EDGES + 1);

    // 1-edge change, alternating the hot edge's expression. Warm up,
    // then measure; every apply must reconfigure exactly one edge.
    let exprs = ["upper(A.tag)", "A.tag"];
    for i in 0..3 {
        composer.apply(composition(exprs[i % 2])).await.unwrap();
    }
    let mut change_us: Vec<u64> = Vec::with_capacity(iterations);
    for i in 0..iterations {
        // Warmup left the hot edge on exprs[0]; start from the other.
        let next = composition(exprs[(i + 1) % 2]);
        let start = Instant::now();
        let report = composer.apply(next).await.unwrap();
        change_us.push(start.elapsed().as_micros() as u64);
        assert_eq!(report.reconfigured.len(), 1, "{report:?}");
        assert_eq!(report.restarts(), 0, "{report:?}");
    }
    let (change_mean, change_median, change_max) = micros(&mut change_us);

    // Cross-check ad-hoc timers against the metrics registry: every
    // apply above also landed in knactor_composer_apply_seconds.
    let snapshot = knactor_core::metrics::global().snapshot();
    let apply_hist = snapshot
        .histograms
        .iter()
        .find(|h| {
            h.name == "knactor_composer_apply_seconds"
                && h.labels
                    .iter()
                    .any(|(k, v)| k == "composer" && v == "bench")
        })
        .expect("composer apply histogram registered");
    assert!(
        apply_hist.count as usize >= iterations,
        "registry saw {} applies, bench ran {}",
        apply_hist.count,
        iterations
    );

    // No-op re-apply: everything classified untouched.
    let mut noop_us: Vec<u64> = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let same = composition(exprs[iterations % 2]);
        let start = Instant::now();
        let report = composer.apply(same).await.unwrap();
        noop_us.push(start.elapsed().as_micros() as u64);
        assert_eq!(
            report.untouched.len(),
            EDGES + 1,
            "iteration {i}: {report:?}"
        );
    }
    let (noop_mean, noop_median, noop_max) = micros(&mut noop_us);

    // Swap-loss: stream records through the sync while flipping the hot
    // cast edge. The sync edge is untouched by every apply, so its tail
    // position must carry across and no record may be lost or replayed.
    let producer_api = Arc::clone(&api);
    let producer = tokio::spawn(async move {
        for i in 0..stream_records {
            producer_api
                .log_append("ev/log".into(), json!({"n": i}))
                .await
                .unwrap();
            if i % 16 == 0 {
                tokio::time::sleep(Duration::from_micros(200)).await;
            }
        }
    });
    let mut applies_during_stream = 0usize;
    while !producer.is_finished() {
        composer
            .apply(composition(exprs[applies_during_stream % 2]))
            .await
            .unwrap();
        applies_during_stream += 1;
    }
    producer.await.unwrap();
    composer.drain_all().await.unwrap();
    let out = api.log_read("out/log".into(), 0).await.unwrap();
    let mut seen = std::collections::BTreeSet::new();
    let mut duplicated = 0usize;
    for record in &out {
        if !seen.insert(record.fields["m"].as_u64().unwrap()) {
            duplicated += 1;
        }
    }
    let lost = stream_records - seen.len();

    composer.shutdown_all().await;

    // Registry-derived quantiles for the same operation the ad-hoc
    // timers measured, so later PRs can regress against stable names.
    let final_snapshot = knactor_core::metrics::global().snapshot();
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/metrics.prom", final_snapshot.to_prometheus())
        .expect("write target/metrics.prom");
    eprintln!("wrote target/metrics.prom");
    let apply_hist = final_snapshot
        .histograms
        .iter()
        .find(|h| h.name == "knactor_composer_apply_seconds")
        .expect("apply histogram");
    let registry_apply = json!({
        "count": apply_hist.count,
        "p50_us": apply_hist.p50().map(|s| s * 1e6),
        "p95_us": apply_hist.p95().map(|s| s * 1e6),
        "p99_us": apply_hist.p99().map(|s| s * 1e6),
        "max_us": apply_hist.max_seconds().map(|s| s * 1e6),
    });

    json!({
        "description": "Composer live-reconfiguration bench (cargo run -p knactor-bench --bin reconfig --release). A 17-edge composition (16 cast edges in a star DXG + 1 sync relay); the 1-edge change flips the hot edge's expression, which the composer reconfigures in place while every other edge keeps running. Latencies in microseconds. Swap-loss streams records through the sync relay during repeated applies and counts records lost or duplicated across the swaps (contract: zero).",
        "edges": EDGES + 1,
        "iterations": iterations,
        "apply_latency_us": {
            "first_apply_all_edges_spawn": first_apply_us,
            "one_edge_change": {"mean": change_mean, "median": change_median, "max": change_max},
            "noop_reapply": {"mean": noop_mean, "median": noop_median, "max": noop_max},
        },
        "swap_loss": {
            "records_appended": stream_records,
            "records_delivered": out.len(),
            "lost": lost,
            "duplicated": duplicated,
            "applies_during_stream": applies_during_stream,
        },
        "registry_apply_seconds": registry_apply,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let (iterations, stream_records) = if quick { (20, 500) } else { (200, 5000) };

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(run(iterations, stream_records));

    let pretty = serde_json::to_string(&result).unwrap();
    println!("{pretty}");
    std::fs::write("BENCH_reconfig.json", format!("{pretty}\n"))
        .expect("write BENCH_reconfig.json");
    eprintln!("wrote BENCH_reconfig.json");

    let loss = &result["swap_loss"];
    assert_eq!(loss["lost"], json!(0), "records lost during swaps");
    assert_eq!(
        loss["duplicated"],
        json!(0),
        "records duplicated during swaps"
    );
}
