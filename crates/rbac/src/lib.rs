//! # knactor-rbac
//!
//! State access control for Knactor data exchanges (§3.3 of the paper).
//!
//! Two layers:
//!
//! 1. **Role-based access control** in the Kubernetes style: subjects
//!    (reconcilers, integrators, operators) are bound to roles; roles
//!    grant verbs (`get`, `list`, `watch`, `create`, `update`, `delete`,
//!    `execute`) on stores. Access is **deny-by-default**: a knactor's
//!    store is reachable only by its own reconciler and by integrators
//!    that were explicitly granted access.
//! 2. **Field-level rules**: a grant may be scoped to field paths, and
//!    may carve out denied sub-paths. Field rules can only *narrow* a
//!    resource-level grant, never widen it — the paper's example of
//!    "granting access to certain state objects/fields but not others".
//!
//! Rules may carry **conditions** evaluated against an [`AccessContext`]
//! supplied by the caller (never a wall clock read inside the library —
//! evaluation stays pure and testable). The smart-home app uses a
//! [`Condition::OutsideMinutes`] window to keep the House integrator away
//! from the Lamp during user-defined sleep hours.

pub mod policy;

pub use policy::{
    AccessContext, AccessController, Condition, Decision, FieldRule, Role, RoleBinding, Rule,
    Subject, SubjectKind, Verb,
};

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_types::{FieldPath, StoreId};

    fn ctx() -> AccessContext {
        AccessContext::default()
    }

    #[test]
    fn deny_by_default() {
        let ac = AccessController::enforcing();
        let sub = Subject::integrator("cast");
        let dec = ac.check(&sub, Verb::Get, &StoreId::new("checkout/state"), &ctx());
        assert!(!dec.allowed());
    }

    #[test]
    fn owner_full_access_via_role() {
        let mut ac = AccessController::new();
        ac.add_role(Role::full_access("checkout-owner", "checkout/state"));
        ac.bind(RoleBinding::new(
            Subject::reconciler("checkout"),
            "checkout-owner",
        ));
        let sub = Subject::reconciler("checkout");
        for verb in [
            Verb::Get,
            Verb::List,
            Verb::Watch,
            Verb::Create,
            Verb::Update,
            Verb::Delete,
        ] {
            assert!(
                ac.check(&sub, verb, &StoreId::new("checkout/state"), &ctx())
                    .allowed(),
                "{verb:?}"
            );
        }
        // But not on some other store.
        assert!(!ac
            .check(&sub, Verb::Get, &StoreId::new("shipping/state"), &ctx())
            .allowed());
    }

    #[test]
    fn field_scoping_narrows() {
        let mut ac = AccessController::new();
        let role = Role::new("cast-reader").rule(
            Rule::on("checkout/state")
                .verbs([Verb::Get, Verb::Watch])
                .fields(FieldRule::allow_paths(["order"]).deny_paths(["order.paymentID"])),
        );
        ac.add_role(role);
        ac.bind(RoleBinding::new(Subject::integrator("cast"), "cast-reader"));
        let sub = Subject::integrator("cast");
        let store = StoreId::new("checkout/state");
        let allowed = |p: &str| {
            ac.check_field(
                &sub,
                Verb::Get,
                &store,
                &FieldPath::parse(p).unwrap(),
                &ctx(),
            )
            .allowed()
        };
        // Reading the whole of `order` would reveal the denied
        // `order.paymentID`, so the ancestor is denied too.
        assert!(!allowed("order"));
        assert!(allowed("order.totalCost"));
        assert!(!allowed("order.paymentID"));
        assert!(!allowed("somethingElse"));
        // Field rules never widen: update was not granted at all.
        assert!(!ac
            .check_field(
                &sub,
                Verb::Update,
                &store,
                &FieldPath::parse("order").unwrap(),
                &ctx()
            )
            .allowed());
    }
}
