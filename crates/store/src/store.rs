//! The synchronous, versioned object-store core.
//!
//! Everything observable about a store is ordered by its single revision
//! counter: each committed mutation bumps the revision by exactly one,
//! appends one event to the watch history, and (for durable engines)
//! appends one WAL record. Watchers resume from any revision still in the
//! history window and receive every later event exactly once, in order.
//!
//! # Concurrency
//!
//! The object map is hash-partitioned across [`SHARD_COUNT`] `RwLock`
//! shards, so concurrent readers never contend with each other and
//! writers to different shards only meet at the short commit section.
//! A write takes, in order:
//!
//! 1. its key's **shard** write lock (existence/OCC/schema checks, then
//!    the map mutation),
//! 2. the **commit** lock (revision allocation, WAL append, history), and
//! 3. the **fanout** lock just long enough to enqueue the event.
//!
//! Subscriber sends happen *outside* all three locks: committed events
//! land in an outbox and a single drainer (elected by CAS) delivers them
//! in revision order. Object values are `Arc<Value>` throughout, so
//! reads, history retention, and fan-out are refcount bumps, never deep
//! copies of the JSON tree.

use crate::batch::{BatchOp, ItemResult};
use crate::event::{EventKind, WatchEvent};
use crate::object::{RetentionPolicy, StoredObject};
use crate::profile::EngineProfile;
use crate::repl::{ReplState, REPL_ACK_TIMEOUT};
use crate::wal::Wal;
use knactor_types::metrics::{self, Counter, Gauge, Histogram};
use knactor_types::{value, Error, ObjectKey, Result, Revision, Schema, StoreId, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::sync::mpsc;

/// Number of hash-partitioned object shards. A power of two so the shard
/// index is a mask; sized for "more shards than cores that plausibly
/// write at once" without bloating empty stores.
const SHARD_COUNT: usize = 16;

/// Bounded internal retries for [`ObjectStore::patch`]'s read-merge-CAS
/// loop under write contention.
const PATCH_RETRIES: usize = 8;

type Shard = RwLock<BTreeMap<ObjectKey, StoredObject>>;

/// When a mutation's caller learns about durability.
///
/// `Acked` is the single-op contract: the call returns only after a WAL
/// group fsync covers the commit. `Staged` is the batch building block:
/// the commit is staged (and visible) but the ack is deferred until the
/// batch-wide [`Wal::durable_barrier`], so N items share one fsync.
/// `Replicated(n)` extends `Acked`: after the local fsync the ack is
/// further held until `n` followers have durably staged the commit's
/// revision (see [`crate::repl::ReplState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Durability {
    Acked,
    Staged,
    Replicated(usize),
}

/// A staged-but-unacknowledged WAL write: wait on it before acking.
type PendingDurability = Option<(Arc<Wal>, u64)>;

/// A single data store: versioned objects + watch machinery.
///
/// The core is synchronous and engine-agnostic; durability comes from an
/// optional [`Wal`], and latency/delivery behaviour is layered on by
/// [`crate::handle::StoreHandle`] according to the [`EngineProfile`].
pub struct ObjectStore {
    id: StoreId,
    profile: EngineProfile,
    schema: Mutex<Option<Schema>>,
    policy: Mutex<RetentionPolicy>,
    /// Revision of the last committed mutation. Written only inside the
    /// commit section; reads are lock-free.
    revision: AtomicU64,
    shards: Vec<Shard>,
    commit: Mutex<CommitState>,
    fanout: Mutex<Fanout>,
    /// Set while one thread is draining the fan-out outbox.
    draining: AtomicBool,
    /// Leader-side replication ack table, attached by the node runtime
    /// when the store participates in a replica set.
    repl: Mutex<Option<Arc<ReplState>>>,
    metrics: StoreMetrics,
}

/// Pre-registered handles into the global metrics registry, one set per
/// store (labelled `store=<id>`). Registered once at open so the hot
/// paths only touch atomics.
struct StoreMetrics {
    op_create: Arc<Counter>,
    op_get: Arc<Counter>,
    op_list: Arc<Counter>,
    op_update: Arc<Counter>,
    op_patch: Arc<Counter>,
    op_delete: Arc<Counter>,
    commit_seconds: Arc<Histogram>,
    /// Live subscriber count, as observed at each fan-out delivery.
    fanout_depth: Arc<Gauge>,
    /// Committed-but-undelivered events still queued in the outbox.
    outbox_lag: Arc<Gauge>,
    /// Subscribers cut loose for exceeding their per-subscriber lag cap.
    watch_cutoffs: Arc<Counter>,
}

impl StoreMetrics {
    fn for_store(id: &StoreId) -> StoreMetrics {
        let reg = metrics::global();
        let store = id.to_string();
        let op = |name: &str| {
            reg.counter(
                "knactor_store_ops_total",
                &[("store", &store), ("op", name)],
            )
        };
        StoreMetrics {
            op_create: op("create"),
            op_get: op("get"),
            op_list: op("list"),
            op_update: op("update"),
            op_patch: op("patch"),
            op_delete: op("delete"),
            commit_seconds: reg.histogram("knactor_store_commit_seconds", &[("store", &store)]),
            fanout_depth: reg.gauge("knactor_store_fanout_depth", &[("store", &store)]),
            outbox_lag: reg.gauge("knactor_store_outbox_lag", &[("store", &store)]),
            watch_cutoffs: reg.counter("knactor_store_watch_cutoffs_total", &[("store", &store)]),
        }
    }
}

/// Serialization point for commits: WAL + bounded watch history.
struct CommitState {
    history: VecDeque<WatchEvent>,
    history_cap: usize,
    wal: Option<Arc<Wal>>,
}

/// Committed-but-undelivered events plus the live subscriber set.
struct Fanout {
    outbox: VecDeque<WatchEvent>,
    subscribers: Vec<Subscriber>,
}

#[derive(Clone)]
struct Subscriber {
    tx: mpsc::UnboundedSender<WatchEvent>,
    /// Store revision when the watch registered. Events at or before this
    /// were already replayed from history, so the drainer skips them even
    /// if they are still sitting in the outbox.
    joined_at: Revision,
    /// Lag accounting shared with the subscriber's [`StoreWatch`].
    gate: Arc<SubGate>,
}

/// Sentinel for "this subscriber has not been cut".
const NOT_CUT: u64 = u64::MAX;

/// Per-subscriber backpressure state, shared between the drainer (which
/// counts deliveries) and the consuming [`StoreWatch`] (which counts
/// reads). The channel itself stays unbounded so the drainer never
/// blocks; the gate is what bounds it.
struct SubGate {
    /// Events queued in the subscriber's channel, not yet consumed.
    pending: AtomicI64,
    /// First revision *not* delivered when the drainer cut this
    /// subscriber for exceeding its lag cap; [`NOT_CUT`] while healthy.
    cut_at: AtomicU64,
}

impl SubGate {
    fn new() -> Arc<SubGate> {
        Arc::new(SubGate {
            pending: AtomicI64::new(0),
            cut_at: AtomicU64::new(NOT_CUT),
        })
    }

    fn is_cut(&self) -> bool {
        self.cut_at.load(Ordering::Acquire) != NOT_CUT
    }
}

/// A live watch subscription: an in-order event stream plus the lag
/// bookkeeping that lets the store cut this subscriber loose — instead
/// of queueing without bound — if it stops reading.
///
/// When the stream ends (`recv` returns `None`), check
/// [`StoreWatch::lag_resume_from`]: `Some(rev)` means the store cut the
/// subscription for lagging and a gapless resume is
/// `watch_from(rev)` (falling back to list+rewatch on
/// [`Error::WatchTooOld`]); `None` means an ordinary close.
pub struct StoreWatch {
    rx: mpsc::UnboundedReceiver<WatchEvent>,
    gate: Arc<SubGate>,
}

impl StoreWatch {
    /// Receive the next event, or `None` once the subscription ended.
    pub async fn recv(&mut self) -> Option<WatchEvent> {
        let event = self.rx.recv().await;
        if event.is_some() {
            self.gate.pending.fetch_sub(1, Ordering::Relaxed);
        }
        event
    }

    pub fn try_recv(&mut self) -> Result<WatchEvent, mpsc::error::TryRecvError> {
        let event = self.rx.try_recv();
        if event.is_ok() {
            self.gate.pending.fetch_sub(1, Ordering::Relaxed);
        }
        event
    }

    /// `Some(resume_from)` once the store has cut this subscriber for
    /// exceeding its lag cap. Events already queued are still readable;
    /// after draining them, `watch_from(resume_from)` continues without
    /// gaps (the first missed revision is `resume_from + 1`).
    pub fn lag_resume_from(&self) -> Option<Revision> {
        let cut = self.gate.cut_at.load(Ordering::Acquire);
        (cut != NOT_CUT).then(|| Revision(cut.saturating_sub(1)))
    }

    /// Events delivered but not yet read (diagnostics).
    pub fn pending(&self) -> usize {
        self.gate.pending.load(Ordering::Relaxed).max(0) as usize
    }

    /// A cheap, cloneable handle onto this subscription's lag state,
    /// usable independently of the consuming stream.
    pub fn probe(&self) -> LagProbe {
        LagProbe {
            gate: Arc::clone(&self.gate),
        }
    }
}

/// See [`StoreWatch::probe`].
#[derive(Clone)]
pub struct LagProbe {
    gate: Arc<SubGate>,
}

impl LagProbe {
    /// `Some(resume_from)` once the subscriber was cut for lagging.
    pub fn resume_from(&self) -> Option<Revision> {
        let cut = self.gate.cut_at.load(Ordering::Acquire);
        (cut != NOT_CUT).then(|| Revision(cut.saturating_sub(1)))
    }
}

impl std::fmt::Debug for StoreWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreWatch")
            .field("pending", &self.pending())
            .field("cut", &self.gate.is_cut())
            .finish()
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("id", &self.id)
            .field("engine", &self.profile.name)
            .field("revision", &self.revision.load(Ordering::Acquire))
            .field("objects", &self.len())
            .finish()
    }
}

impl ObjectStore {
    /// Create a store with the given engine profile. Durable profiles
    /// replay their WAL, restoring all previously committed state.
    pub fn open(id: StoreId, profile: EngineProfile) -> Result<ObjectStore> {
        let mut shards: Vec<Shard> = (0..SHARD_COUNT)
            .map(|_| RwLock::new(BTreeMap::new()))
            .collect();
        let mut revision = Revision::ZERO;
        let mut wal = None;
        if let Some(path) = &profile.wal_path {
            // Recovery first: truncate any torn tail (crash mid-append)
            // and verify revision continuity, then rebuild shard state
            // from the surviving prefix. A torn final record is lost —
            // it was never acknowledged — but every acked commit is here.
            let (recovered_wal, events) = Wal::open_recovering(path, profile.fsync)?;
            let mut objects = BTreeMap::new();
            for event in events {
                apply_event(&mut objects, &event);
                revision = event.revision;
            }
            for (key, obj) in objects {
                shards[shard_of(&key)].get_mut().insert(key, obj);
            }
            wal = Some(Arc::new(recovered_wal));
        }
        let store_metrics = StoreMetrics::for_store(&id);
        Ok(ObjectStore {
            id,
            revision: AtomicU64::new(revision.0),
            shards,
            commit: Mutex::new(CommitState {
                history: VecDeque::new(),
                history_cap: profile.history_cap,
                wal,
            }),
            fanout: Mutex::new(Fanout {
                outbox: VecDeque::new(),
                subscribers: Vec::new(),
            }),
            draining: AtomicBool::new(false),
            repl: Mutex::new(None),
            schema: Mutex::new(None),
            policy: Mutex::new(RetentionPolicy::Forever),
            metrics: store_metrics,
            profile,
        })
    }

    /// In-memory store with the `instant` profile (tests, examples).
    pub fn in_memory(id: impl Into<StoreId>) -> ObjectStore {
        ObjectStore::open(id.into(), EngineProfile::instant()).expect("in-memory open cannot fail")
    }

    pub fn id(&self) -> &StoreId {
        &self.id
    }

    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Attach the leader-side replication ack table. Subsequent acked
    /// writes additionally wait for the profile's `repl_acks` quorum
    /// (when the attached state is leading).
    pub fn attach_repl(&self, state: Arc<ReplState>) {
        *self.repl.lock() = Some(state);
    }

    pub fn repl(&self) -> Option<Arc<ReplState>> {
        self.repl.lock().clone()
    }

    /// Single-op durability mode: plain `Acked`, or `Replicated(n)` when
    /// the profile demands a replication quorum.
    fn ack_mode(&self) -> Durability {
        match self.profile.repl_acks {
            0 => Durability::Acked,
            n => Durability::Replicated(n),
        }
    }

    /// Attach a schema; subsequent writes are validated against it.
    pub fn set_schema(&self, schema: Schema) {
        *self.schema.lock() = Some(schema);
    }

    pub fn schema(&self) -> Option<Schema> {
        self.schema.lock().clone()
    }

    pub fn set_retention(&self, policy: RetentionPolicy) {
        *self.policy.lock() = policy;
    }

    pub fn retention(&self) -> RetentionPolicy {
        *self.policy.lock()
    }

    /// Current store revision (revision of the last committed mutation).
    pub fn revision(&self) -> Revision {
        Revision(self.revision.load(Ordering::Acquire))
    }

    /// Arm a WAL crash point for deterministic crash testing: the
    /// `after`-th commit from now dies at `point` and every later commit
    /// fails too (the "process" is dead until the store is reopened from
    /// its WAL). Returns `false` for purely in-memory profiles, which
    /// have no WAL to crash.
    pub fn arm_crash(&self, point: crate::wal::CrashPoint, after: u64) -> bool {
        match &self.commit.lock().wal {
            Some(wal) => {
                wal.arm_crash(point, after);
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &ObjectKey) -> &Shard {
        &self.shards[shard_of(key)]
    }

    /// Create a new object. Fails with `AlreadyExists` if the key is taken.
    pub fn create(&self, key: ObjectKey, value: impl Into<Arc<Value>>) -> Result<Revision> {
        self.create_impl(self.ack_mode(), key, value.into())
    }

    fn create_impl(&self, mode: Durability, key: ObjectKey, value: Arc<Value>) -> Result<Revision> {
        self.metrics.op_create.inc();
        if let Some(schema) = &*self.schema.lock() {
            schema.validate(&value)?;
        }
        let rev;
        let pending;
        {
            let mut shard = self.shard(&key).write();
            if shard.contains_key(&key) {
                return Err(Error::AlreadyExists(key.to_string()));
            }
            (rev, pending) = self.commit_locked(EventKind::Created, &key, &value)?;
            shard.insert(key.clone(), StoredObject::new(key, value, rev));
        }
        self.finish_commit(mode, rev, pending)?;
        Ok(rev)
    }

    /// Read an object (shared value handle and metadata).
    pub fn get(&self, key: &ObjectKey) -> Result<StoredObject> {
        self.metrics.op_get.inc();
        self.shard(key)
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| Error::NotFound(key.to_string()))
    }

    /// List all objects, in key order, plus the revision the listing is
    /// consistent at (use it to start a gapless watch).
    ///
    /// Holds every shard's read lock at once: writers keep their shard
    /// write-locked through the commit section, so no half-committed
    /// state (or its revision bump) can be observed.
    pub fn list(&self) -> (Vec<StoredObject>, Revision) {
        self.metrics.op_list.inc();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let rev = self.revision();
        let mut objects: Vec<StoredObject> =
            guards.iter().flat_map(|g| g.values().cloned()).collect();
        objects.sort_by(|a, b| a.key.cmp(&b.key));
        (objects, rev)
    }

    /// Replace an object's value. `expected` enables optimistic
    /// concurrency: the write commits only if the object's revision still
    /// matches.
    pub fn update(
        &self,
        key: &ObjectKey,
        new_value: impl Into<Arc<Value>>,
        expected: Option<Revision>,
    ) -> Result<Revision> {
        self.update_impl(self.ack_mode(), key, new_value.into(), expected)
    }

    fn update_impl(
        &self,
        mode: Durability,
        key: &ObjectKey,
        new_value: Arc<Value>,
        expected: Option<Revision>,
    ) -> Result<Revision> {
        self.metrics.op_update.inc();
        let schema = self.schema.lock().clone();
        let rev;
        let pending;
        {
            let mut shard = self.shard(key).write();
            let obj = shard
                .get(key)
                .ok_or_else(|| Error::NotFound(key.to_string()))?;
            if let Some(expected) = expected {
                if obj.revision != expected {
                    return Err(Error::Conflict {
                        expected: expected.0,
                        actual: obj.revision.0,
                    });
                }
            }
            if let Some(schema) = &schema {
                schema.validate_update(&obj.value, &new_value)?;
            }
            (rev, pending) = self.commit_locked(EventKind::Updated, key, &new_value)?;
            let obj = shard.get_mut(key).expect("checked above");
            obj.value = new_value;
            obj.revision = rev;
            // A new value invalidates prior consumption.
            for done in obj.consumers.values_mut() {
                *done = false;
            }
        }
        self.finish_commit(mode, rev, pending)?;
        Ok(rev)
    }

    /// Deep-merge `patch` into the current value (creating the object when
    /// `upsert` is set and the key is absent).
    ///
    /// A patch that leaves the value unchanged does **not** commit: no
    /// revision bump, no watch event. This no-op suppression is what lets
    /// integrators converge — a Cast activation that recomputes the same
    /// derived state produces no new events to re-trigger on.
    ///
    /// The read-merge-write runs as an internal OCC loop: a concurrent
    /// writer racing between the read and the conditional write surfaces
    /// as `Conflict`, and the merge is retried against fresh state a
    /// bounded number of times before the conflict propagates.
    pub fn patch(&self, key: &ObjectKey, patch: &Value, upsert: bool) -> Result<Revision> {
        self.patch_impl(self.ack_mode(), key, patch, upsert)
    }

    fn patch_impl(
        &self,
        mode: Durability,
        key: &ObjectKey,
        patch: &Value,
        upsert: bool,
    ) -> Result<Revision> {
        self.metrics.op_patch.inc();
        let mut last = None;
        for _ in 0..PATCH_RETRIES {
            let current = self
                .shard(key)
                .read()
                .get(key)
                .map(|o| (o.value.clone(), o.revision));
            let attempt = match current {
                Some((base, rev)) => {
                    let mut merged = (*base).clone();
                    value::merge(&mut merged, patch);
                    if merged == *base {
                        return Ok(rev);
                    }
                    self.update_impl(mode, key, merged.into(), Some(rev))
                }
                None if upsert => self.create_impl(mode, key.clone(), patch.clone().into()),
                None => return Err(Error::NotFound(key.to_string())),
            };
            match attempt {
                // Lost a race (concurrent update, or concurrent create for
                // the upsert path): merge again against the fresh value.
                Err(e @ (Error::Conflict { .. } | Error::AlreadyExists(_))) => last = Some(e),
                done => return done,
            }
        }
        Err(last.expect("loop ran"))
    }

    /// Delete an object.
    pub fn delete(&self, key: &ObjectKey) -> Result<Revision> {
        self.delete_impl(self.ack_mode(), key)
    }

    fn delete_impl(&self, mode: Durability, key: &ObjectKey) -> Result<Revision> {
        self.metrics.op_delete.inc();
        let rev;
        let pending;
        {
            let mut shard = self.shard(key).write();
            let value = shard
                .get(key)
                .map(|o| o.value.clone())
                .ok_or_else(|| Error::NotFound(key.to_string()))?;
            (rev, pending) = self.commit_locked(EventKind::Deleted, key, &value)?;
            shard.remove(key);
        }
        self.finish_commit(mode, rev, pending)?;
        Ok(rev)
    }

    /// Apply a batch of independent mutations with per-item outcomes.
    ///
    /// Items run in order; logical failures (`conflict`, `not_found`, a
    /// schema violation) become [`ItemResult::Error`] entries without
    /// touching their neighbours. Durability is batch-wide: every item is
    /// *staged* as it commits, and a single [`Wal::durable_barrier`] (one
    /// group fsync) covers the whole batch before the call returns — N
    /// records, one fsync. A durability failure fails the entire call,
    /// because none of the staged items can honestly be acknowledged.
    pub fn apply_batch(&self, ops: Vec<BatchOp>) -> Result<Vec<ItemResult>> {
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            let attempt = match op {
                BatchOp::Create { key, value } => {
                    self.create_impl(Durability::Staged, key, value.into())
                }
                BatchOp::Update {
                    key,
                    value,
                    expected,
                } => self.update_impl(Durability::Staged, &key, value.into(), expected),
                BatchOp::Patch { key, patch, upsert } => {
                    self.patch_impl(Durability::Staged, &key, &patch, upsert)
                }
                BatchOp::Delete { key } => self.delete_impl(Durability::Staged, &key),
            };
            match attempt {
                Ok(revision) => results.push(ItemResult::Revision { revision }),
                // A dead WAL (injected crash, I/O failure) is batch-fatal:
                // staged items can no longer be fsynced, so nothing here
                // can be acked item-by-item.
                Err(e @ Error::Internal(_)) => return Err(e),
                Err(e) => results.push(ItemResult::from_error(&e)),
            }
        }
        self.drain_fanout();
        if let Some(wal) = self.commit.lock().wal.clone() {
            wal.durable_barrier()?;
        }
        // Batch-wide replication quorum: one wait at the batch's last
        // committed revision covers every item (acks are cumulative),
        // mirroring the one-fsync-per-batch durability barrier. Skipped
        // when nothing committed, and a no-op on passive (follower)
        // stores — which is what lets the replication apply path itself
        // run through here without waiting on its own quorum.
        if self.profile.repl_acks > 0 {
            if let Some(repl) = self.repl() {
                let last = results
                    .iter()
                    .filter_map(|r| match r {
                        ItemResult::Revision { revision } => Some(revision.0),
                        _ => None,
                    })
                    .max();
                if let Some(rev) = last {
                    repl.wait_quorum(Revision(rev), self.profile.repl_acks, REPL_ACK_TIMEOUT)?;
                }
            }
        }
        Ok(results)
    }

    /// Commit one mutation for `key`: allocate the next revision, append
    /// to the WAL (the durability point — a WAL failure aborts the commit
    /// before anything became visible), record watch history, and enqueue
    /// the event for fan-out.
    ///
    /// The caller holds the key's shard write lock, which is what makes
    /// "validate, commit, mutate" atomic against readers and other
    /// writers of the same key.
    /// The WAL write here is a *stage*, not a full `append`: the fsync
    /// wait happens in [`ObjectStore::finish_commit`], after the shard
    /// lock is released, so concurrent committers (any shard) and batch
    /// items share group fsyncs instead of serializing them under the
    /// commit mutex. A stage failure still aborts before anything became
    /// visible; the returned [`PendingDurability`] ticket is what turns
    /// visibility into an acknowledgement.
    fn commit_locked(
        &self,
        kind: EventKind,
        key: &ObjectKey,
        value: &Arc<Value>,
    ) -> Result<(Revision, PendingDurability)> {
        let commit_start = Instant::now();
        let mut commit = self.commit.lock();
        let rev = Revision(self.revision.load(Ordering::Relaxed) + 1);
        let event = WatchEvent {
            revision: rev,
            kind,
            key: key.clone(),
            value: Arc::clone(value),
        };
        let pending = match &commit.wal {
            Some(wal) => Some((Arc::clone(wal), wal.stage(&event)?)),
            None => None,
        };
        self.revision.store(rev.0, Ordering::Release);
        commit.history.push_back(event.clone());
        while commit.history.len() > commit.history_cap {
            commit.history.pop_front();
        }
        {
            let mut fanout = self.fanout.lock();
            fanout.outbox.push_back(event);
            self.metrics.outbox_lag.set(fanout.outbox.len() as i64);
        }
        self.metrics.commit_seconds.observe(commit_start.elapsed());
        Ok((rev, pending))
    }

    /// Complete a commit after its shard lock is gone: deliver fan-out
    /// and, for `Acked` mode, block until the commit's WAL group fsync
    /// lands. `Staged` mode defers both to the batch caller.
    /// `Replicated(n)` additionally holds the ack until `n` followers
    /// have durably staged `rev` (quorum release).
    ///
    /// An fsync (or quorum) failure after the commit became visible means
    /// the record is applied-but-unacknowledged — exactly the contract a
    /// crash between write and ack already imposes on clients (OCC
    /// read-back disambiguation on retry).
    fn finish_commit(
        &self,
        mode: Durability,
        rev: Revision,
        pending: PendingDurability,
    ) -> Result<()> {
        if mode == Durability::Staged {
            return Ok(());
        }
        self.drain_fanout();
        if let Some((wal, ticket)) = pending {
            wal.wait_durable(ticket)?;
        }
        if let Durability::Replicated(n) = mode {
            if let Some(repl) = self.repl() {
                repl.wait_quorum(rev, n, REPL_ACK_TIMEOUT)?;
            }
        }
        Ok(())
    }

    /// Deliver queued events to subscribers, outside every store lock.
    ///
    /// A single drainer at a time (CAS-elected) keeps delivery in
    /// revision order; after standing down it re-checks the outbox so an
    /// event enqueued during the hand-off window is never stranded.
    fn drain_fanout(&self) {
        let lag_cap = self.profile.watch_lag_cap as i64;
        loop {
            if self
                .draining
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                // Another thread is draining; it will pick our event up.
                return;
            }
            loop {
                let (event, subscribers) = {
                    let mut fanout = self.fanout.lock();
                    // Drop closed and lag-cut subscribers eagerly: the cut
                    // mark was set on the shared gate below, so removing
                    // the fanout-side sender here is what ends the
                    // consumer's stream (after it drains what's queued).
                    fanout
                        .subscribers
                        .retain(|s| !s.tx.is_closed() && !s.gate.is_cut());
                    self.metrics
                        .fanout_depth
                        .set(fanout.subscribers.len() as i64);
                    match fanout.outbox.pop_front() {
                        Some(event) => {
                            self.metrics.outbox_lag.set(fanout.outbox.len() as i64);
                            (event, fanout.subscribers.clone())
                        }
                        None => break,
                    }
                };
                for sub in &subscribers {
                    // Events up to `joined_at` were replayed from history
                    // at registration time.
                    if event.revision <= sub.joined_at {
                        continue;
                    }
                    // Per-subscriber bounded lag: a subscriber that has
                    // stopped reading gets cut (typed resume point),
                    // never queued-to without bound — and never blocks
                    // this drainer or its healthy neighbours.
                    if sub.gate.pending.load(Ordering::Relaxed) >= lag_cap {
                        sub.gate.cut_at.store(event.revision.0, Ordering::Release);
                        self.metrics.watch_cutoffs.inc();
                        continue;
                    }
                    sub.gate.pending.fetch_add(1, Ordering::Relaxed);
                    let _ = sub.tx.send(event.clone());
                }
            }
            self.draining.store(false, Ordering::Release);
            if self.fanout.lock().outbox.is_empty() {
                return;
            }
            // A pusher enqueued after we emptied the outbox but lost the
            // CAS before we stood down — take another turn.
        }
    }

    /// Subscribe to committed events with revision **greater than**
    /// `from`. Events still in the history window are replayed first; the
    /// stream then continues live, in revision order, without gaps or
    /// duplicates.
    ///
    /// Fails with [`Error::WatchTooOld`] if `from` predates the bounded
    /// history window (the caller must [`ObjectStore::list`] and watch
    /// from the listing's revision).
    pub fn watch_from(&self, from: Revision) -> Result<StoreWatch> {
        // Commit lock freezes the revision and history; fanout lock makes
        // "replay + register" atomic against the drainer.
        let commit = self.commit.lock();
        let mut fanout = self.fanout.lock();
        let revision = self.revision();
        if let Some(oldest) = commit.history.front().map(|e| e.revision) {
            if from.next() < oldest {
                return Err(Error::WatchTooOld {
                    from: from.0,
                    oldest: oldest.0,
                });
            }
        } else if from < revision {
            return Err(Error::WatchTooOld {
                from: from.0,
                oldest: revision.0,
            });
        }
        let (tx, rx) = mpsc::unbounded_channel();
        let gate = SubGate::new();
        for event in commit.history.iter().filter(|e| e.revision > from) {
            // Replayed events count toward the lag cap too: the gate
            // bounds the whole unread backlog, not just live deliveries.
            gate.pending.fetch_add(1, Ordering::Relaxed);
            // Receiver can't be dropped yet; ignore errors defensively.
            let _ = tx.send(event.clone());
        }
        fanout.subscribers.push(Subscriber {
            tx,
            joined_at: revision,
            gate: Arc::clone(&gate),
        });
        Ok(StoreWatch { rx, gate })
    }

    /// Convenience: watch everything from the beginning of history.
    pub fn watch(&self) -> Result<StoreWatch> {
        self.watch_from(Revision::ZERO)
    }

    /// Register `consumer` as interested in `key` (state retention).
    pub fn register_consumer(&self, key: &ObjectKey, consumer: &str) -> Result<()> {
        let mut shard = self.shard(key).write();
        let obj = shard
            .get_mut(key)
            .ok_or_else(|| Error::NotFound(key.to_string()))?;
        obj.consumers.entry(consumer.to_string()).or_insert(false);
        Ok(())
    }

    /// Mark `consumer`'s processing of the current value complete, then
    /// run retention. Returns the keys garbage-collected (if any).
    pub fn mark_processed(&self, key: &ObjectKey, consumer: &str) -> Result<Vec<ObjectKey>> {
        {
            let mut shard = self.shard(key).write();
            let obj = shard
                .get_mut(key)
                .ok_or_else(|| Error::NotFound(key.to_string()))?;
            match obj.consumers.get_mut(consumer) {
                Some(done) => *done = true,
                None => {
                    return Err(Error::Internal(format!(
                        "consumer '{consumer}' not registered on {key}"
                    )))
                }
            }
        }
        self.gc()
    }

    /// Run the retention policy, deleting collectable objects. Emits
    /// normal `Deleted` events so watchers observe GC.
    pub fn gc(&self) -> Result<Vec<ObjectKey>> {
        let policy = *self.policy.lock();
        let victims: Vec<ObjectKey> = match policy {
            RetentionPolicy::Forever => Vec::new(),
            RetentionPolicy::RefCounted => self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .values()
                        .filter(|o| o.fully_consumed())
                        .map(|o| o.key.clone())
                        .collect::<Vec<_>>()
                })
                .collect(),
            RetentionPolicy::Archive { keep } => {
                let mut consumed: Vec<(Revision, ObjectKey)> = self
                    .shards
                    .iter()
                    .flat_map(|s| {
                        s.read()
                            .values()
                            .filter(|o| o.fully_consumed())
                            .map(|o| (o.created_revision, o.key.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                consumed.sort();
                let excess = consumed.len().saturating_sub(keep);
                consumed
                    .into_iter()
                    .take(excess)
                    .map(|(_, key)| key)
                    .collect()
            }
        };
        for key in &victims {
            self.delete(key)?;
        }
        Ok(victims)
    }

    /// Number of live watch subscribers (diagnostics).
    pub fn subscriber_count(&self) -> usize {
        let mut fanout = self.fanout.lock();
        fanout
            .subscribers
            .retain(|s| !s.tx.is_closed() && !s.gate.is_cut());
        fanout.subscribers.len()
    }
}

fn shard_of(key: &ObjectKey) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) & (SHARD_COUNT - 1)
}

/// Apply a WAL event to the object map during replay.
fn apply_event(objects: &mut BTreeMap<ObjectKey, StoredObject>, event: &WatchEvent) {
    match event.kind {
        EventKind::Created => {
            objects.insert(
                event.key.clone(),
                StoredObject::new(event.key.clone(), event.value.clone(), event.revision),
            );
        }
        EventKind::Updated => {
            if let Some(obj) = objects.get_mut(&event.key) {
                obj.value = event.value.clone();
                obj.revision = event.revision;
            } else {
                // An update without a create can only mean the history
                // window predates the WAL; treat as create.
                objects.insert(
                    event.key.clone(),
                    StoredObject::new(event.key.clone(), event.value.clone(), event.revision),
                );
            }
        }
        EventKind::Deleted => {
            objects.remove(&event.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knactor_types::schema::{FieldSpec, FieldType};
    use serde_json::json;

    fn store() -> ObjectStore {
        ObjectStore::in_memory("test/store")
    }

    fn k(s: &str) -> ObjectKey {
        ObjectKey::new(s)
    }

    #[test]
    fn create_get_roundtrip() {
        let s = store();
        let rev = s.create(k("a"), json!({"x": 1})).unwrap();
        assert_eq!(rev, Revision(1));
        let obj = s.get(&k("a")).unwrap();
        assert_eq!(obj.value, json!({"x": 1}));
        assert_eq!(obj.revision, Revision(1));
        assert_eq!(obj.created_revision, Revision(1));
    }

    #[test]
    fn create_duplicate_fails() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        assert!(matches!(
            s.create(k("a"), json!(2)),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn revisions_bump_by_one_per_mutation() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        s.create(k("b"), json!(2)).unwrap();
        s.update(&k("a"), json!(3), None).unwrap();
        s.delete(&k("b")).unwrap();
        assert_eq!(s.revision(), Revision(4));
    }

    #[test]
    fn optimistic_concurrency() {
        let s = store();
        let rev = s.create(k("a"), json!({"v": 0})).unwrap();
        let r2 = s.update(&k("a"), json!({"v": 1}), Some(rev)).unwrap();
        // Re-using the stale revision must conflict.
        let err = s.update(&k("a"), json!({"v": 2}), Some(rev)).unwrap_err();
        assert_eq!(
            err,
            Error::Conflict {
                expected: rev.0,
                actual: r2.0
            }
        );
        // Unconditional update still works.
        s.update(&k("a"), json!({"v": 3}), None).unwrap();
        assert_eq!(s.get(&k("a")).unwrap().value, json!({"v": 3}));
    }

    #[test]
    fn patch_merges_and_upserts() {
        let s = store();
        s.create(k("a"), json!({"x": {"y": 1}, "keep": true}))
            .unwrap();
        s.patch(&k("a"), &json!({"x": {"z": 2}}), false).unwrap();
        assert_eq!(
            s.get(&k("a")).unwrap().value,
            json!({"x": {"y": 1, "z": 2}, "keep": true})
        );
        assert!(matches!(
            s.patch(&k("nope"), &json!({}), false),
            Err(Error::NotFound(_))
        ));
        s.patch(&k("nope"), &json!({"fresh": 1}), true).unwrap();
        assert_eq!(s.get(&k("nope")).unwrap().value, json!({"fresh": 1}));
    }

    #[test]
    fn schema_enforced_on_write() {
        let s = store();
        s.set_schema(
            Schema::new("T/v1/S/K")
                .field(FieldSpec::new("name", FieldType::String).required())
                .field(FieldSpec::new("qty", FieldType::Number)),
        );
        assert!(s.create(k("bad"), json!({"qty": 2})).is_err());
        s.create(k("ok"), json!({"name": "mug", "qty": 2})).unwrap();
        assert!(s.update(&k("ok"), json!({"name": 5}), None).is_err());
    }

    #[test]
    fn list_returns_consistent_snapshot() {
        let s = store();
        s.create(k("b"), json!(2)).unwrap();
        s.create(k("a"), json!(1)).unwrap();
        let (objs, rev) = s.list();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].key, k("a"), "key order");
        assert_eq!(rev, Revision(2));
    }

    #[tokio::test]
    async fn watch_sees_all_events_in_order() {
        let s = store();
        let mut rx = s.watch().unwrap();
        s.create(k("a"), json!(1)).unwrap();
        s.update(&k("a"), json!(2), None).unwrap();
        s.delete(&k("a")).unwrap();
        let e1 = rx.recv().await.unwrap();
        let e2 = rx.recv().await.unwrap();
        let e3 = rx.recv().await.unwrap();
        assert_eq!(
            (e1.kind, e2.kind, e3.kind),
            (EventKind::Created, EventKind::Updated, EventKind::Deleted)
        );
        assert!(e1.revision < e2.revision && e2.revision < e3.revision);
    }

    #[tokio::test]
    async fn watch_from_replays_history() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        let mid = s.revision();
        s.create(k("b"), json!(2)).unwrap();
        let mut rx = s.watch_from(mid).unwrap();
        let e = rx.recv().await.unwrap();
        assert_eq!(e.key, k("b"));
        // Nothing else pending.
        s.create(k("c"), json!(3)).unwrap();
        let e = rx.recv().await.unwrap();
        assert_eq!(e.key, k("c"));
    }

    #[test]
    fn watch_too_old_fails() {
        let profile = EngineProfile {
            history_cap: 2,
            ..EngineProfile::instant()
        };
        let s = ObjectStore::open(StoreId::new("test/store"), profile).unwrap();
        for i in 0..5 {
            s.create(k(&format!("k{i}")), json!(i)).unwrap();
        }
        let err = s.watch_from(Revision(1)).unwrap_err();
        assert_eq!(err, Error::WatchTooOld { from: 1, oldest: 4 });
        assert!(s.watch_from(Revision(3)).is_ok());
        assert!(s.watch_from(s.revision()).is_ok());
    }

    #[test]
    fn refcount_retention_collects_consumed() {
        let s = store();
        s.set_retention(RetentionPolicy::RefCounted);
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "cast").unwrap();
        s.register_consumer(&k("a"), "reconciler").unwrap();
        assert!(s.mark_processed(&k("a"), "cast").unwrap().is_empty());
        let collected = s.mark_processed(&k("a"), "reconciler").unwrap();
        assert_eq!(collected, vec![k("a")]);
        assert!(s.get(&k("a")).is_err());
    }

    #[test]
    fn update_resets_consumption() {
        let s = store();
        s.set_retention(RetentionPolicy::RefCounted);
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "cast").unwrap();
        s.mark_processed(&k("a"), "cast").unwrap();
        // Object was collected; recreate and test the reset path.
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "x").unwrap();
        s.register_consumer(&k("a"), "y").unwrap();
        s.mark_processed(&k("a"), "x").unwrap();
        s.update(&k("a"), json!(2), None).unwrap();
        // x's mark was invalidated by the update.
        let collected = s.mark_processed(&k("a"), "y").unwrap();
        assert!(collected.is_empty());
        assert!(s.get(&k("a")).is_ok());
    }

    #[test]
    fn archive_retention_keeps_last_n() {
        let s = store();
        s.set_retention(RetentionPolicy::Archive { keep: 2 });
        for i in 0..4 {
            let key = k(&format!("o{i}"));
            s.create(key.clone(), json!(i)).unwrap();
            s.register_consumer(&key, "c").unwrap();
        }
        for i in 0..4 {
            s.mark_processed(&k(&format!("o{i}")), "c").unwrap();
        }
        // Two oldest consumed objects were collected.
        assert!(s.get(&k("o0")).is_err());
        assert!(s.get(&k("o1")).is_err());
        assert!(s.get(&k("o2")).is_ok());
        assert!(s.get(&k("o3")).is_ok());
    }

    #[test]
    fn forever_retention_never_collects() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        s.register_consumer(&k("a"), "c").unwrap();
        assert!(s.mark_processed(&k("a"), "c").unwrap().is_empty());
        assert!(s.get(&k("a")).is_ok());
    }

    #[test]
    fn unregistered_consumer_cannot_mark() {
        let s = store();
        s.create(k("a"), json!(1)).unwrap();
        assert!(s.mark_processed(&k("a"), "ghost").is_err());
    }

    #[test]
    fn batch_isolates_item_failures() {
        let s = store();
        s.create(k("dup"), json!(0)).unwrap();
        let results = s
            .apply_batch(vec![
                BatchOp::Create {
                    key: k("a"),
                    value: json!({"x": 1}),
                },
                BatchOp::Create {
                    key: k("dup"),
                    value: json!(1),
                },
                BatchOp::Update {
                    key: k("missing"),
                    value: json!(2),
                    expected: None,
                },
                BatchOp::Patch {
                    key: k("a"),
                    patch: json!({"y": 2}),
                    upsert: false,
                },
                BatchOp::Delete { key: k("a") },
            ])
            .unwrap();
        assert_eq!(results.len(), 5);
        assert!(!results[0].is_err());
        assert!(matches!(
            results[1].as_error(),
            Some(Error::AlreadyExists(_))
        ));
        assert!(matches!(results[2].as_error(), Some(Error::NotFound(_))));
        assert!(!results[3].is_err());
        assert!(!results[4].is_err());
        assert!(s.get(&k("a")).is_err(), "created then deleted in-batch");
        // Failed items committed nothing: 1 seed + 3 batch commits.
        assert_eq!(s.revision(), Revision(4));
    }

    #[tokio::test]
    async fn batch_events_reach_watchers_in_order() {
        let s = store();
        let mut rx = s.watch().unwrap();
        s.apply_batch(vec![
            BatchOp::Create {
                key: k("a"),
                value: json!(1),
            },
            BatchOp::Create {
                key: k("b"),
                value: json!(2),
            },
            BatchOp::Delete { key: k("a") },
        ])
        .unwrap();
        let revs: Vec<u64> = [
            rx.recv().await.unwrap(),
            rx.recv().await.unwrap(),
            rx.recv().await.unwrap(),
        ]
        .iter()
        .map(|e| e.revision.0)
        .collect();
        assert_eq!(revs, vec![1, 2, 3]);
    }

    #[test]
    fn durable_batch_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("knactor-batch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = EngineProfile::apiserver(&dir, "batch/store");
        {
            let s = ObjectStore::open(StoreId::new("batch/store"), profile.clone()).unwrap();
            let results = s
                .apply_batch(
                    (0..8)
                        .map(|i| BatchOp::Create {
                            key: k(&format!("k{i}")),
                            value: json!(i),
                        })
                        .collect(),
                )
                .unwrap();
            assert!(results.iter().all(|r| !r.is_err()));
        }
        let s = ObjectStore::open(StoreId::new("batch/store"), profile).unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.revision(), Revision(8));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_store_recovers_from_wal() {
        let dir = std::env::temp_dir().join(format!("knactor-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = EngineProfile::apiserver(&dir, "recover/store");
        {
            let s = ObjectStore::open(StoreId::new("recover/store"), profile.clone()).unwrap();
            s.create(k("a"), json!({"v": 1})).unwrap();
            s.create(k("b"), json!({"v": 2})).unwrap();
            s.update(&k("a"), json!({"v": 10}), None).unwrap();
            s.delete(&k("b")).unwrap();
        }
        let s = ObjectStore::open(StoreId::new("recover/store"), profile).unwrap();
        assert_eq!(s.revision(), Revision(4));
        assert_eq!(s.get(&k("a")).unwrap().value, json!({"v": 10}));
        assert!(s.get(&k("b")).is_err());
        // New writes continue the revision sequence.
        assert_eq!(s.create(k("c"), json!(1)).unwrap(), Revision(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[tokio::test]
    async fn dropped_subscriber_is_pruned() {
        let s = store();
        let rx = s.watch().unwrap();
        assert_eq!(s.subscriber_count(), 1);
        drop(rx);
        s.create(k("a"), json!(1)).unwrap();
        assert_eq!(s.subscriber_count(), 0);
    }

    /// A subscriber that registers while events for earlier revisions are
    /// still queued in the outbox must not see them twice: they were
    /// replayed from history at registration time.
    #[tokio::test]
    async fn late_subscriber_sees_no_duplicates() {
        let s = store();
        for i in 0..10 {
            s.create(k(&format!("k{i}")), json!(i)).unwrap();
        }
        let mut rx = s.watch_from(Revision(5)).unwrap();
        s.create(k("tail"), json!("t")).unwrap();
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(rx.recv().await.unwrap().revision.0);
        }
        assert_eq!(seen, vec![6, 7, 8, 9, 10, 11]);
    }

    /// A subscriber that stops reading is cut at its lag cap with a typed
    /// resume point — it never wedges the drainer, and a healthy
    /// subscriber alongside it receives every event.
    #[tokio::test]
    async fn slow_subscriber_is_cut_healthy_keeps_flowing() {
        let profile = EngineProfile {
            watch_lag_cap: 4,
            ..EngineProfile::instant()
        };
        let s = ObjectStore::open(StoreId::new("test/slow"), profile).unwrap();
        let mut slow = s.watch().unwrap();
        let mut healthy = s.watch().unwrap();
        for i in 0..20u64 {
            s.create(k(&format!("k{i}")), json!(i)).unwrap();
            // The healthy subscriber keeps up; the slow one never reads.
            let e = healthy.recv().await.unwrap();
            assert_eq!(e.revision, Revision(i + 1));
        }
        // The slow subscriber got exactly its lag cap, then the cut.
        let mut delivered = 0;
        while let Ok(e) = slow.try_recv() {
            delivered += 1;
            assert_eq!(e.revision, Revision(delivered));
        }
        assert_eq!(delivered, 4, "delivery stops at the lag cap");
        let resume = slow
            .lag_resume_from()
            .expect("cut must carry a resume point");
        assert_eq!(resume, Revision(4), "first missed revision is 5");
        assert!(slow.recv().await.is_none(), "cut stream ends");
        assert_eq!(
            s.subscriber_count(),
            1,
            "only the healthy subscriber remains"
        );
        // The typed resume point supports a gapless re-watch.
        let mut resumed = s.watch_from(resume).unwrap();
        for want in 5..=20u64 {
            assert_eq!(resumed.recv().await.unwrap().revision, Revision(want));
        }
    }

    /// The cut subscriber's gate must not leak into fresh subscriptions:
    /// after a cutoff, a new watch from the resume point behaves normally.
    #[tokio::test]
    async fn cutoff_does_not_stall_outbox_drain() {
        let profile = EngineProfile {
            watch_lag_cap: 2,
            ..EngineProfile::instant()
        };
        let s = ObjectStore::open(StoreId::new("test/cut"), profile).unwrap();
        let slow = s.watch().unwrap();
        for i in 0..10u64 {
            s.create(k(&format!("k{i}")), json!(i)).unwrap();
        }
        assert!(slow.lag_resume_from().is_some());
        // The outbox fully drained despite the cut subscriber: a new
        // write flows to a fresh subscriber immediately.
        let mut fresh = s.watch_from(s.revision()).unwrap();
        s.create(k("after"), json!("x")).unwrap();
        let e = fresh.recv().await.unwrap();
        assert_eq!(e.key, k("after"));
    }
}
