//! Async read/write traits, extension adapters, and an in-memory duplex
//! pipe. Extension methods return named future structs (not `async fn`)
//! so their `Send`-ness is visible to `spawn`.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

pub use std::io::{Error, ErrorKind, Result};

/// Destination buffer for `poll_read`: a borrowed slice plus a fill cursor.
pub struct ReadBuf<'a> {
    buf: &'a mut [u8],
    filled: usize,
}

impl<'a> ReadBuf<'a> {
    pub fn new(buf: &'a mut [u8]) -> ReadBuf<'a> {
        ReadBuf { buf, filled: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    pub fn filled(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.filled
    }

    pub fn unfilled_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.filled..]
    }

    pub fn advance(&mut self, n: usize) {
        assert!(
            self.filled + n <= self.buf.len(),
            "advance past end of ReadBuf"
        );
        self.filled += n;
    }

    pub fn put_slice(&mut self, data: &[u8]) {
        assert!(
            data.len() <= self.remaining(),
            "put_slice overflows ReadBuf"
        );
        self.buf[self.filled..self.filled + data.len()].copy_from_slice(data);
        self.filled += data.len();
    }
}

pub trait AsyncRead {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<Result<()>>;
}

pub trait AsyncWrite {
    fn poll_write(self: Pin<&mut Self>, cx: &mut Context<'_>, data: &[u8]) -> Poll<Result<usize>>;
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>>;
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>>;
}

impl<T: AsyncRead + Unpin + ?Sized> AsyncRead for &mut T {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWrite for &mut T {
    fn poll_write(self: Pin<&mut Self>, cx: &mut Context<'_>, data: &[u8]) -> Poll<Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write(cx, data)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_shutdown(cx)
    }
}

/// Future for `AsyncReadExt::read`.
pub struct Read<'a, R: ?Sized> {
    reader: &'a mut R,
    buf: &'a mut [u8],
}

impl<R: AsyncRead + Unpin + ?Sized> Future for Read<'_, R> {
    type Output = Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<usize>> {
        let me = self.get_mut();
        let mut rb = ReadBuf::new(me.buf);
        match Pin::new(&mut *me.reader).poll_read(cx, &mut rb) {
            Poll::Ready(Ok(())) => Poll::Ready(Ok(rb.filled().len())),
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future for `AsyncReadExt::read_buf`.
pub struct ReadBufFut<'a, R: ?Sized, B> {
    reader: &'a mut R,
    buf: &'a mut B,
}

impl<R: AsyncRead + Unpin + ?Sized, B: bytes::BufMut> Future for ReadBufFut<'_, R, B> {
    type Output = Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<usize>> {
        let me = self.get_mut();
        let mut chunk = [0u8; 8192];
        let want = chunk.len().min(me.buf.remaining_mut().max(1));
        let mut rb = ReadBuf::new(&mut chunk[..want]);
        match Pin::new(&mut *me.reader).poll_read(cx, &mut rb) {
            Poll::Ready(Ok(())) => {
                let filled = rb.filled();
                me.buf.put_slice(filled);
                Poll::Ready(Ok(filled.len()))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

pub trait AsyncReadExt: AsyncRead {
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> Read<'a, Self>
    where
        Self: Unpin,
    {
        Read { reader: self, buf }
    }

    fn read_buf<'a, B: bytes::BufMut>(&'a mut self, buf: &'a mut B) -> ReadBufFut<'a, Self, B>
    where
        Self: Unpin,
    {
        ReadBufFut { reader: self, buf }
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

/// Future for `AsyncWriteExt::write_all`.
pub struct WriteAll<'a, W: ?Sized> {
    writer: &'a mut W,
    buf: &'a [u8],
}

impl<W: AsyncWrite + Unpin + ?Sized> Future for WriteAll<'_, W> {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>> {
        let me = self.get_mut();
        while !me.buf.is_empty() {
            match Pin::new(&mut *me.writer).poll_write(cx, me.buf) {
                Poll::Ready(Ok(0)) => {
                    return Poll::Ready(Err(Error::new(
                        ErrorKind::WriteZero,
                        "failed to write whole buffer",
                    )))
                }
                Poll::Ready(Ok(n)) => me.buf = &me.buf[n..],
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(()))
    }
}

/// Future for `AsyncWriteExt::flush`.
pub struct Flush<'a, W: ?Sized> {
    writer: &'a mut W,
}

impl<W: AsyncWrite + Unpin + ?Sized> Future for Flush<'_, W> {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>> {
        let me = self.get_mut();
        Pin::new(&mut *me.writer).poll_flush(cx)
    }
}

/// Future for `AsyncWriteExt::shutdown`.
pub struct Shutdown<'a, W: ?Sized> {
    writer: &'a mut W,
}

impl<W: AsyncWrite + Unpin + ?Sized> Future for Shutdown<'_, W> {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<()>> {
        let me = self.get_mut();
        Pin::new(&mut *me.writer).poll_shutdown(cx)
    }
}

pub trait AsyncWriteExt: AsyncWrite {
    fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> WriteAll<'a, Self>
    where
        Self: Unpin,
    {
        WriteAll { writer: self, buf }
    }

    fn flush(&mut self) -> Flush<'_, Self>
    where
        Self: Unpin,
    {
        Flush { writer: self }
    }

    fn shutdown(&mut self) -> Shutdown<'_, Self>
    where
        Self: Unpin,
    {
        Shutdown { writer: self }
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

// ---------------------------------------------------------------------------
// In-memory duplex pipe
// ---------------------------------------------------------------------------

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

struct Pipe {
    buf: VecDeque<u8>,
    cap: usize,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
    writer_closed: bool,
    reader_closed: bool,
}

impl Pipe {
    fn new(cap: usize) -> Arc<Mutex<Pipe>> {
        Arc::new(Mutex::new(Pipe {
            buf: VecDeque::new(),
            cap,
            read_waker: None,
            write_waker: None,
            writer_closed: false,
            reader_closed: false,
        }))
    }

    fn poll_read(&mut self, cx: &mut Context<'_>, out: &mut ReadBuf<'_>) -> Poll<Result<()>> {
        if self.buf.is_empty() {
            if self.writer_closed {
                return Poll::Ready(Ok(())); // EOF
            }
            self.read_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let n = out.remaining().min(self.buf.len());
        for _ in 0..n {
            let b = self.buf.pop_front().unwrap();
            out.put_slice(&[b]);
        }
        if let Some(w) = self.write_waker.take() {
            w.wake();
        }
        Poll::Ready(Ok(()))
    }

    fn poll_write(&mut self, cx: &mut Context<'_>, data: &[u8]) -> Poll<Result<usize>> {
        if self.reader_closed {
            return Poll::Ready(Err(Error::new(ErrorKind::BrokenPipe, "reader dropped")));
        }
        let space = self.cap.saturating_sub(self.buf.len());
        if space == 0 {
            self.write_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let n = space.min(data.len());
        self.buf.extend(&data[..n]);
        if let Some(w) = self.read_waker.take() {
            w.wake();
        }
        Poll::Ready(Ok(n))
    }
}

/// One end of an in-memory, bounded, bidirectional byte pipe.
pub struct DuplexStream {
    read: Arc<Mutex<Pipe>>,
    write: Arc<Mutex<Pipe>>,
}

/// A pair of connected `DuplexStream`s, each side buffering up to
/// `max_buf_size` bytes per direction.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new(max_buf_size);
    let b_to_a = Pipe::new(max_buf_size);
    (
        DuplexStream {
            read: Arc::clone(&b_to_a),
            write: Arc::clone(&a_to_b),
        },
        DuplexStream {
            read: a_to_b,
            write: b_to_a,
        },
    )
}

impl AsyncRead for DuplexStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<Result<()>> {
        self.read.lock().unwrap().poll_read(cx, buf)
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(self: Pin<&mut Self>, cx: &mut Context<'_>, data: &[u8]) -> Poll<Result<usize>> {
        self.write.lock().unwrap().poll_write(cx, data)
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Result<()>> {
        let mut p = self.write.lock().unwrap();
        p.writer_closed = true;
        if let Some(w) = p.read_waker.take() {
            w.wake();
        }
        Poll::Ready(Ok(()))
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        let mut w = self.write.lock().unwrap();
        w.writer_closed = true;
        if let Some(waker) = w.read_waker.take() {
            waker.wake();
        }
        drop(w);
        let mut r = self.read.lock().unwrap();
        r.reader_closed = true;
        if let Some(waker) = r.write_waker.take() {
            waker.wake();
        }
    }
}
