//! Regenerates the §2 "composition logic is scattered" statistics.
//!
//! ```text
//! cargo run -p knactor-bench --bin scatter
//! ```

fn main() {
    let api = knactor_bench::scatter::api_centric().expect("scan API-centric sources");
    let kn = knactor_bench::scatter::knactor().expect("scan DXG specs");
    println!("Composition-logic scatter (this repository's apps)\n");
    print!("{}", knactor_bench::scatter::render(&api, &kn));
    println!();
    println!("Paper's counts for the apps it studied: 15 methods across 11");
    println!("services (web app), 36 across 14 services (social network).");
}
