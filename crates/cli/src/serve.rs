//! `knactorctl serve` — run exchange shard or replica nodes.
//!
//! ```text
//! knactorctl serve                     one node on 127.0.0.1:7070
//! knactorctl serve --shards 4          a 4-shard exchange on ports 7070..7073
//! knactorctl serve --shards 4 --port 9000
//! knactorctl serve --replicas 2        a leader + 2 followers on ports 7070..7072
//! ```
//!
//! Each node is a full [`ExchangeServer`] — its own object store, log
//! store, and WAL directory. In shard mode the printed topology JSON is
//! the versioned [`ShardMap`] paired with each node's address; hand it
//! to `ShardRouter::connect_tcp` (or `connect_resilient`) and every
//! `ExchangeApi` integration routes across the nodes unchanged. In
//! replica mode the first node leads, the rest follow and replicate
//! every `Replicated` store; hand the printed address list to
//! `ReplicaRouter::connect`.
//!
//! Nodes serve until the process is killed (Ctrl-C).

use knactor_logstore::LogExchange;
use knactor_net::server::ExchangeServer;
use knactor_net::{run_follower, ExchangeApi, FollowerConfig, LoopbackClient};
use knactor_rbac::Subject;
use knactor_store::{DataExchange, ShardMap};
use serde_json::json;
use std::process::ExitCode;
use std::sync::Arc;

pub fn run(shards: usize, port: u16) -> ExitCode {
    if shards == 0 {
        eprintln!("--shards must be at least 1");
        return ExitCode::FAILURE;
    }
    let rt = match tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
    {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("cannot start runtime: {e}");
            return ExitCode::FAILURE;
        }
    };
    rt.block_on(async move {
        let map = ShardMap::uniform(shards);
        let mut servers = Vec::with_capacity(shards);
        let mut nodes = Vec::with_capacity(shards);
        for (i, node) in map.nodes().iter().enumerate() {
            let bind = format!("127.0.0.1:{}", port + i as u16);
            let server = match ExchangeServer::bind(
                bind.as_str(),
                Arc::new(DataExchange::new()),
                Arc::new(LogExchange::new()),
            )
            .await
            {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot bind shard {node} on {bind}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.local_addr();
            eprintln!(
                "shard {node} serving on {addr} (WALs under {})",
                server.data_dir().display()
            );
            nodes.push(json!({"node": node, "addr": addr.to_string()}));
            servers.push(server);
        }
        // The client-side topology object: feed to ShardRouter.
        println!(
            "{}",
            json!({
                "version": map.version(),
                "vnodes": map.vnodes(),
                "nodes": nodes,
            })
        );
        eprintln!("{shards}-shard exchange up; Ctrl-C to stop");
        std::future::pending::<ExitCode>().await
    })
}

/// `knactorctl serve --replicas N`: a leader plus `followers` follower
/// nodes on consecutive ports. Followers replicate every `Replicated`
/// store from the leader and hold elections if it dies.
pub fn run_replicated(followers: usize, port: u16) -> ExitCode {
    let rt = match tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
    {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("cannot start runtime: {e}");
            return ExitCode::FAILURE;
        }
    };
    rt.block_on(async move {
        let total = followers + 1;
        let mut servers = Vec::with_capacity(total);
        for i in 0..total {
            let bind = format!("127.0.0.1:{}", port + i as u16);
            let server = match ExchangeServer::bind(
                bind.as_str(),
                Arc::new(DataExchange::new()),
                Arc::new(LogExchange::new()),
            )
            .await
            {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot bind replica node {i} on {bind}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if i > 0 {
                server.repl().set_follower();
            }
            servers.push(server);
        }
        let peers: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
        // Keep every follower driver alive for the life of the process.
        let mut drivers = Vec::with_capacity(followers);
        for (i, server) in servers.iter().enumerate() {
            let role = if i == 0 { "leader" } else { "follower" };
            eprintln!(
                "replica node-{i} ({role}) serving on {} (WALs under {})",
                peers[i],
                server.data_dir().display()
            );
            if i > 0 {
                let name = format!("node-{i}");
                let apply: Arc<dyn ExchangeApi> = Arc::new(
                    LoopbackClient::new(
                        Arc::clone(&server.object),
                        Arc::clone(&server.log),
                        Subject::integrator(&name),
                    )
                    .with_data_dir(server.data_dir()),
                );
                drivers.push(run_follower(
                    server,
                    apply,
                    FollowerConfig {
                        name,
                        node_index: i,
                        peers: peers.clone(),
                        initial_leader: 0,
                    },
                ));
            }
        }
        // The client bootstrap: feed to ReplicaRouter::connect.
        println!(
            "{}",
            json!({
                "leader": peers[0].to_string(),
                "nodes": peers.iter().map(|a| a.to_string()).collect::<Vec<_>>(),
            })
        );
        eprintln!("replica set up (1 leader + {followers} followers); Ctrl-C to stop");
        std::future::pending::<ExitCode>().await
    })
}
