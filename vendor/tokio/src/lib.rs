//! Offline stand-in for `tokio`, implementing the API subset this
//! workspace uses on top of plain OS threads.
//!
//! Execution model: `spawn` runs each task's future on a dedicated thread
//! with a park/unpark waker, and `block_on` drives a future on the calling
//! thread the same way. That trades thread cheapness for total simplicity —
//! no shared scheduler state, no work stealing — while keeping real
//! concurrency (tasks genuinely run in parallel), real time (a dedicated
//! timer thread with microsecond-level waits), and faithful cancellation
//! (`JoinHandle::abort` wakes the task thread, which drops the future).
#![allow(clippy::all)]

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};

#[doc(hidden)]
pub enum SelectOut<A, B> {
    First(A),
    Second(B),
}

/// Two-arm `select!`: polls the first arm, then the second, completing
/// with whichever future finishes first. Both futures are dropped before
/// the chosen arm's body runs, so the body can re-borrow what the futures
/// borrowed (and `break`/`continue`/`return` inside a body target the
/// caller's context, exactly like real `select!`).
#[macro_export]
macro_rules! select {
    // `biased;` is accepted and redundant: this implementation always
    // polls the first arm first.
    (biased; $($rest:tt)+) => {
        $crate::select! { $($rest)+ }
    };
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block) => {{
        let __out = {
            let mut __fut1 = ::std::pin::pin!($f1);
            let mut __fut2 = ::std::pin::pin!($f2);
            ::std::future::poll_fn(|__cx| {
                match ::std::future::Future::poll(__fut1.as_mut(), __cx) {
                    ::std::task::Poll::Ready(__v) => {
                        return ::std::task::Poll::Ready($crate::SelectOut::First(__v))
                    }
                    ::std::task::Poll::Pending => {}
                }
                match ::std::future::Future::poll(__fut2.as_mut(), __cx) {
                    ::std::task::Poll::Ready(__v) => {
                        return ::std::task::Poll::Ready($crate::SelectOut::Second(__v))
                    }
                    ::std::task::Poll::Pending => {}
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __out {
            $crate::SelectOut::First(__v) => {
                #[allow(irrefutable_let_patterns)]
                if let $p1 = __v {
                    $b1
                } else {
                    unreachable!("select! pattern must be irrefutable")
                }
            }
            $crate::SelectOut::Second(__v) => {
                #[allow(irrefutable_let_patterns)]
                if let $p2 = __v {
                    $b2
                } else {
                    unreachable!("select! pattern must be irrefutable")
                }
            }
        }
    }};
}
