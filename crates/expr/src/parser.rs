//! Recursive-descent / Pratt-style parser for DXG expressions.
//!
//! Precedence, loosest to tightest (Python-like):
//!
//! ```text
//! conditional   a if cond else b           (right associative)
//! or            a or b
//! and           a and b
//! not           not a
//! comparison    == != < <= > >=            (non-chaining)
//! additive      + -
//! multiplicative * / %
//! unary         -a
//! postfix       a.b   a[i]
//! primary       literal, ident, call, (expr), [list], [comprehension]
//! ```
//!
//! Comparisons deliberately do not chain (`a < b < c` is a parse error, not
//! Python's conjunction) — exchange specs should spell compound conditions
//! out with `and`.

use crate::ast::{BinOp, Expr, UnOp};
use crate::lexer::{lex, Token, TokenKind};
use knactor_types::{Error, Result};

/// Parse one expression; trailing tokens are an error.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src,
    };
    let e = p.conditional()?;
    if p.pos < p.tokens.len() {
        return Err(p.err_here("unexpected trailing tokens"));
    }
    Ok(e)
}

struct Parser<'s> {
    tokens: Vec<Token>,
    pos: usize,
    src: &'s str,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err_here(what))
        }
    }

    fn err_here(&self, msg: &str) -> Error {
        let at = self
            .tokens
            .get(self.pos)
            .map(|t| format!("offset {}", t.offset))
            .unwrap_or_else(|| "end of input".to_string());
        Error::Expr(format!("{msg} at {at} in '{}'", self.src))
    }

    /// conditional := or ('if' or 'else' conditional)?
    fn conditional(&mut self) -> Result<Expr> {
        let then = self.or_expr()?;
        if self.eat(&TokenKind::If) {
            let cond = self.or_expr()?;
            self.expect(TokenKind::Else, "expected 'else' in conditional expression")?;
            let otherwise = self.conditional()?;
            Ok(Expr::If {
                then: Box::new(then),
                cond: Box::new(cond),
                otherwise: Box::new(otherwise),
            })
        } else {
            Ok(then)
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat(&TokenKind::And) {
            let right = self.not_expr()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(TokenKind::EqEq) => Some(BinOp::Eq),
            Some(TokenKind::NotEq) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            // Reject chained comparisons explicitly for a clear message.
            if matches!(
                self.peek(),
                Some(
                    TokenKind::EqEq
                        | TokenKind::NotEq
                        | TokenKind::Lt
                        | TokenKind::Le
                        | TokenKind::Gt
                        | TokenKind::Ge
                )
            ) {
                return Err(self.err_here("chained comparisons are not supported; use 'and'"));
            }
            Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            Ok(Expr::Unary(UnOp::Neg, Box::new(inner)))
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                match self.bump() {
                    Some(TokenKind::Ident(name)) => {
                        e = Expr::Member(Box::new(e), name);
                    }
                    _ => return Err(self.err_here("expected field name after '.'")),
                }
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.conditional()?;
                self.expect(TokenKind::RBracket, "expected ']' after index")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(TokenKind::Number(n)) => Ok(Expr::Literal(
                serde_json::Number::from_f64(n)
                    .map(serde_json::Value::Number)
                    .unwrap_or(serde_json::Value::Null),
            )),
            Some(TokenKind::Str(s)) => Ok(Expr::Literal(serde_json::Value::String(s))),
            Some(TokenKind::True) => Ok(Expr::Literal(serde_json::Value::Bool(true))),
            Some(TokenKind::False) => Ok(Expr::Literal(serde_json::Value::Bool(false))),
            Some(TokenKind::Null) => Ok(Expr::Literal(serde_json::Value::Null)),
            Some(TokenKind::Ident(name)) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.conditional()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma, "expected ',' or ')' in call")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(TokenKind::LParen) => {
                let e = self.conditional()?;
                self.expect(TokenKind::RParen, "expected ')'")?;
                Ok(e)
            }
            Some(TokenKind::LBracket) => self.list_or_comprehension(),
            Some(other) => Err(Error::Expr(format!(
                "unexpected token {:?} in '{}'",
                other, self.src
            ))),
            None => Err(self.err_here("unexpected end of expression")),
        }
    }

    /// Called with the '[' consumed: either `[a, b, c]` or
    /// `[body for var in src (if filter)?]`.
    fn list_or_comprehension(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::RBracket) {
            return Ok(Expr::List(Vec::new()));
        }
        let first = self.conditional()?;
        if self.eat(&TokenKind::For) {
            let var = match self.bump() {
                Some(TokenKind::Ident(v)) => v,
                _ => return Err(self.err_here("expected variable name after 'for'")),
            };
            self.expect(TokenKind::In, "expected 'in' in comprehension")?;
            // As in Python, the iterable and the filter parse at `or`
            // level: a bare `if` after them belongs to the comprehension,
            // not to a conditional expression.
            let source = self.or_expr()?;
            let filter = if self.eat(&TokenKind::If) {
                Some(Box::new(self.or_expr()?))
            } else {
                None
            };
            self.expect(TokenKind::RBracket, "expected ']' to close comprehension")?;
            return Ok(Expr::Comprehension {
                body: Box::new(first),
                var,
                source: Box::new(source),
                filter,
            });
        }
        let mut items = vec![first];
        loop {
            if self.eat(&TokenKind::RBracket) {
                break;
            }
            self.expect(TokenKind::Comma, "expected ',' or ']' in list")?;
            // Allow a trailing comma before ']'.
            if self.eat(&TokenKind::RBracket) {
                break;
            }
            items.push(self.conditional()?);
        }
        Ok(Expr::List(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1.0 + (2.0 * 3.0))");
    }

    #[test]
    fn parens_override() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "((1.0 + 2.0) * 3.0)");
    }

    #[test]
    fn conditional_is_right_associative() {
        let e = parse_expr("1 if a else 2 if b else 3").unwrap();
        assert_eq!(e.to_string(), "(1.0 if a else (2.0 if b else 3.0))");
    }

    #[test]
    fn member_chain_and_index() {
        let e = parse_expr("C.order.items[0].name").unwrap();
        assert_eq!(e.to_string(), "C.order.items[0.0].name");
    }

    #[test]
    fn call_with_member_args() {
        let e =
            parse_expr("currency_convert(S.quote.price, S.quote.currency, this.currency)").unwrap();
        match &e {
            Expr::Call(name, args) => {
                assert_eq!(name, "currency_convert");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn comprehension_with_filter() {
        let e = parse_expr("[i.name for i in xs if i.qty > 0]").unwrap();
        match e {
            Expr::Comprehension {
                filter: Some(_),
                var,
                ..
            } => assert_eq!(var, "i"),
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_trailing_comma_lists() {
        assert_eq!(parse_expr("[]").unwrap(), Expr::List(vec![]));
        assert_eq!(
            parse_expr("[1, 2,]").unwrap(),
            Expr::List(vec![Expr::Literal(json!(1.0)), Expr::Literal(json!(2.0))])
        );
    }

    #[test]
    fn boolean_precedence() {
        let e = parse_expr("not a and b or c").unwrap();
        assert_eq!(e.to_string(), "(((not a) and b) or c)");
    }

    #[test]
    fn comparison_binds_tighter_than_and() {
        let e = parse_expr("a > 1 and b < 2").unwrap();
        assert_eq!(e.to_string(), "((a > 1.0) and (b < 2.0))");
    }

    #[test]
    fn chained_comparison_rejected() {
        assert!(parse_expr("a < b < c").is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_expr("a b").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("f(1,").is_err());
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn keywords_cannot_be_idents() {
        assert!(parse_expr("for").is_err());
        assert!(parse_expr("x.if").is_err());
    }

    #[test]
    fn negative_numbers_and_unary() {
        let e = parse_expr("-x + -2").unwrap();
        assert_eq!(e.to_string(), "((-x) + (-2.0))");
    }

    #[test]
    fn fig6_method_policy_parses() {
        let e = parse_expr(r#""air" if C.order.cost > 1000 else "ground""#).unwrap();
        match e {
            Expr::If { .. } => {}
            other => panic!("expected conditional, got {other:?}"),
        }
    }
}
