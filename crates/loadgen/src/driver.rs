//! The open-loop load driver.
//!
//! Closed-loop load generators (issue, await, issue) measure the
//! server's *convenient* latency: when the server slows down, the
//! generator slows down with it, and the tail disappears from the data
//! — the coordinated-omission trap. Real traffic does not wait. This
//! driver is **open loop**: operations are issued on a fixed schedule
//! derived from the target rate, regardless of whether earlier
//! operations have completed, and each operation's latency is measured
//! from its *scheduled* start — pacing delay included — to completion.
//! Past saturation the measured tail therefore grows without bound
//! unless the system sheds, which is exactly the behaviour the
//! backpressure suite pins down.
//!
//! Latencies land in the process-global metrics registry (histogram
//! `knactor_load_op_seconds`, labelled by app and config) so the report
//! layer reads p50/p95/p99 from the same registry operators scrape.

use crate::workload::{LoadOp, OpGen};
use knactor_net::{ExchangeApi, TcpClient};
use knactor_rbac::Subject;
use knactor_types::{metrics, Error, Revision};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sweep point: a target rate sustained for a duration, with a
/// population of churning watch subscribers riding along.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Label for metrics and the report (e.g. `"rate-2000"`).
    pub label: String,
    /// Target offered load, operations per second, open loop.
    pub rate: f64,
    /// How long to sustain the schedule.
    pub duration: Duration,
    /// Concurrent watch subscribers churning while load runs.
    pub watchers: usize,
    /// How long each subscriber stays connected before reconnecting.
    pub watcher_lifetime: Duration,
    /// Store the churning subscribers watch.
    pub watch_store: String,
    /// How long to wait for stragglers after the schedule ends.
    pub drain: Duration,
    /// Fixed pool of concurrent op executors — the load generator's
    /// analogue of a connection pool. Scheduled ops queue (unbounded)
    /// when all executors are busy, and because every op carries its
    /// *scheduled* start, that queueing delay lands in the measured
    /// latency rather than silently throttling the offered rate.
    pub concurrency: usize,
}

impl RunConfig {
    pub fn new(label: impl Into<String>, rate: f64, duration: Duration) -> RunConfig {
        RunConfig {
            label: label.into(),
            rate,
            duration,
            watchers: 0,
            watcher_lifetime: Duration::from_millis(250),
            watch_store: String::new(),
            drain: Duration::from_secs(5),
            concurrency: 64,
        }
    }

    pub fn with_watchers(mut self, watchers: usize, store: &str, lifetime: Duration) -> RunConfig {
        self.watchers = watchers;
        self.watch_store = store.to_string();
        self.watcher_lifetime = lifetime;
        self
    }
}

/// Shared per-run tallies.
#[derive(Default)]
struct Tallies {
    ok: AtomicU64,
    /// `NotFound` on a read: a miss, not a failure.
    miss: AtomicU64,
    /// Typed `Overloaded` shed by admission control.
    shed: AtomicU64,
    /// Everything else (transport, timeout, semantic).
    errors: AtomicU64,
    /// Scheduled but still queued in the generator when the drain window
    /// closed — offered-load deficit, not a server failure.
    unsent: AtomicU64,
    /// Events observed by the churning watch subscribers.
    watch_events: AtomicU64,
    /// Watch sessions the subscribers completed (connect → drop).
    watch_sessions: AtomicU64,
}

/// What one sweep point produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub label: String,
    pub target_rate: f64,
    pub issued: u64,
    pub ok: u64,
    pub miss: u64,
    pub shed: u64,
    pub errors: u64,
    /// Scheduled ops the generator never dispatched before the drain
    /// window closed: the visible deficit between offered and achievable
    /// load past deep saturation.
    pub unsent: u64,
    /// Dispatched operations that had not completed when the drain
    /// window closed — the wedge signal.
    pub abandoned: u64,
    /// Completed (ok + miss) operations per wall-clock second.
    pub achieved_rate: f64,
    pub elapsed: Duration,
    pub watch_events: u64,
    pub watch_sessions: u64,
}

impl RunOutcome {
    pub fn completed(&self) -> u64 {
        self.ok + self.miss
    }
}

/// Drive one sweep point against `api`, pacing ops open-loop.
///
/// `addr` is the server address the churning watch subscribers dial
/// (each subscriber session is its own connection, so a dropped
/// subscriber tears down its server-side subscription the way a real
/// departing client does).
pub async fn run(
    api: Arc<dyn ExchangeApi>,
    addr: SocketAddr,
    gen: &mut OpGen,
    cfg: &RunConfig,
) -> RunOutcome {
    assert!(cfg.rate > 0.0, "open-loop rate must be positive");
    let app = gen.spec().app.label();
    let hist = metrics::global().histogram(
        "knactor_load_op_seconds",
        &[("app", app), ("config", &cfg.label)],
    );
    let tallies = Arc::new(Tallies::default());

    // Watch churn runs beside the op schedule.
    let stop = Arc::new(AtomicBool::new(false));
    let mut watcher_tasks = Vec::new();
    for w in 0..cfg.watchers {
        watcher_tasks.push(tokio::spawn(churn_watcher(
            addr,
            cfg.watch_store.clone(),
            cfg.watcher_lifetime,
            Arc::clone(&stop),
            Arc::clone(&tallies),
            w,
        )));
    }

    // A fixed executor pool, fed round-robin over per-worker queues
    // (per-worker FIFO keeps each queue's scheduled starts monotonic).
    // Ops are *scheduled* open loop regardless of pool state; a busy
    // pool means ops wait in queue with their sched timestamp ticking.
    let workers = cfg.concurrency.max(1);
    let discard = Arc::new(AtomicBool::new(false));
    let mut op_txs = Vec::with_capacity(workers);
    let mut worker_tasks = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, mut rx) = tokio::sync::mpsc::unbounded_channel::<(LoadOp, Instant)>();
        let api = Arc::clone(&api);
        let hist = Arc::clone(&hist);
        let tallies = Arc::clone(&tallies);
        let discard = Arc::clone(&discard);
        op_txs.push(tx);
        worker_tasks.push(tokio::spawn(async move {
            while let Some((op, sched)) = rx.recv().await {
                if discard.load(Ordering::Relaxed) {
                    tallies.unsent.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                execute(api.as_ref(), op, sched, &hist, &tallies).await;
            }
        }));
    }

    // The schedule: op `i` is due at `start + i / rate`. Ticking at a
    // coarse granularity and issuing every op that has come due keeps
    // the pacer honest at rates far above the timer resolution.
    let start = Instant::now();
    let tick = Duration::from_secs_f64((1.0 / cfg.rate).max(0.001));
    let mut ticker = tokio::time::interval(tick);
    let mut issued: u64 = 0;
    loop {
        ticker.tick().await;
        let elapsed = start.elapsed();
        if elapsed >= cfg.duration {
            break;
        }
        let due = (cfg.rate * elapsed.as_secs_f64()) as u64;
        while issued < due {
            let sched = start + Duration::from_secs_f64(issued as f64 / cfg.rate);
            let op = gen.next_op();
            let _ = op_txs[(issued as usize) % workers].send((op, sched));
            issued += 1;
        }
    }

    // Close the queues and give stragglers the drain window. Past deep
    // saturation the generator's own queue holds more scheduled ops than
    // the drain can flush; once the window closes those are *unsent* —
    // offered-load deficit, reported but not a failure. Only an op that
    // was actually dispatched and still never completes counts as
    // abandoned: that is the wedge signal the suite asserts on.
    drop(op_txs);
    let drain_deadline = Instant::now() + cfg.drain;
    let mut straggling = Vec::new();
    for mut task in worker_tasks {
        let left = drain_deadline.saturating_duration_since(Instant::now());
        if tokio::time::timeout(left.max(Duration::from_millis(1)), &mut task)
            .await
            .is_err()
        {
            straggling.push(task);
        }
    }
    discard.store(true, Ordering::Relaxed);
    for task in straggling {
        let _ = tokio::time::timeout(Duration::from_secs(5), task).await;
    }
    let elapsed = start.elapsed();
    let accounted = tallies.ok.load(Ordering::Relaxed)
        + tallies.miss.load(Ordering::Relaxed)
        + tallies.shed.load(Ordering::Relaxed)
        + tallies.errors.load(Ordering::Relaxed)
        + tallies.unsent.load(Ordering::Relaxed);
    let abandoned = issued.saturating_sub(accounted);

    stop.store(true, Ordering::Relaxed);
    for task in watcher_tasks {
        let _ = tokio::time::timeout(Duration::from_secs(5), task).await;
    }

    let ok = tallies.ok.load(Ordering::Relaxed);
    let miss = tallies.miss.load(Ordering::Relaxed);
    RunOutcome {
        label: cfg.label.clone(),
        target_rate: cfg.rate,
        issued,
        ok,
        miss,
        shed: tallies.shed.load(Ordering::Relaxed),
        errors: tallies.errors.load(Ordering::Relaxed),
        unsent: tallies.unsent.load(Ordering::Relaxed),
        abandoned,
        achieved_rate: (ok + miss) as f64 / elapsed.as_secs_f64(),
        elapsed,
        watch_events: tallies.watch_events.load(Ordering::Relaxed),
        watch_sessions: tallies.watch_sessions.load(Ordering::Relaxed),
    }
}

/// Run one op, classify the outcome, and record open-loop latency
/// (successes and misses only — shed and failed ops answer fast and
/// would flatter the tail).
async fn execute(
    api: &dyn ExchangeApi,
    op: LoadOp,
    sched: Instant,
    hist: &metrics::Histogram,
    tallies: &Tallies,
) {
    let result = match op {
        LoadOp::Get { store, key } => api.get(store, key).await.map(|_| ()),
        LoadOp::Patch { store, key, value } => api.patch(store, key, value, true).await.map(|_| ()),
        LoadOp::BatchGet { store, keys } => api.batch_get(store, keys).await.map(|_| ()),
        LoadOp::Append { store, fields } => api.log_append(store, fields).await.map(|_| ()),
        LoadOp::AppendBatch { store, batch } => {
            api.log_append_batch(store, batch).await.map(|_| ())
        }
    };
    match result {
        Ok(()) => {
            hist.observe(sched.elapsed());
            tallies.ok.fetch_add(1, Ordering::Relaxed);
        }
        Err(Error::NotFound(_)) => {
            hist.observe(sched.elapsed());
            tallies.miss.fetch_add(1, Ordering::Relaxed);
        }
        Err(Error::Overloaded { .. }) => {
            tallies.shed.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            tallies.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One churning subscriber: connect, watch from the store's current
/// revision, consume events for a lifetime, drop the connection, and
/// start over — the arrive/depart pattern of a large subscriber
/// population compressed into one looping task.
async fn churn_watcher(
    addr: SocketAddr,
    store: String,
    lifetime: Duration,
    stop: Arc<AtomicBool>,
    tallies: Arc<Tallies>,
    index: usize,
) {
    let subject = Subject::operator(format!("load-watcher-{index}"));
    while !stop.load(Ordering::Relaxed) {
        let Ok(client) = TcpClient::connect(addr, subject.clone()).await else {
            tokio::time::sleep(Duration::from_millis(20)).await;
            continue;
        };
        // Watch from the listing revision: the documented way to start
        // a subscription "now" without replaying all history.
        let rev = match client.list(store.as_str().into()).await {
            Ok((_, rev)) => rev,
            Err(_) => Revision::ZERO,
        };
        let Ok(mut rx) = client.watch(store.as_str().into(), rev).await else {
            continue;
        };
        let session_end = Instant::now() + lifetime;
        loop {
            let left = session_end.saturating_duration_since(Instant::now());
            if left.is_zero() || stop.load(Ordering::Relaxed) {
                break;
            }
            match tokio::time::timeout(left, rx.recv()).await {
                Ok(Some(_)) => {
                    tallies.watch_events.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
        tallies.watch_sessions.fetch_add(1, Ordering::Relaxed);
        // Dropping `client` closes the connection; the server reaps the
        // subscription with it.
    }
}
