//! Offline stand-in for `tokio-macros`.
//!
//! Rewrites `async fn f() { body }` into a synchronous fn that drives the
//! body on the vendored runtime's `block_on`. Runtime-flavor arguments
//! (`flavor`, `worker_threads`, `start_paused`) are accepted and ignored —
//! the stand-in runtime always uses real time and real threads.
#![allow(clippy::all)]

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Append a token's text, keeping joint punctuation (`->`, `::`, `=>`)
/// glued together so the re-parsed output stays valid Rust.
fn push_tok(out: &mut String, tok: &TokenTree) {
    out.push_str(&tok.to_string());
    match tok {
        TokenTree::Punct(p) if p.spacing() == Spacing::Joint => {}
        _ => out.push(' '),
    }
}

#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

/// Split an `async fn` item into (attrs+vis prefix, signature between `fn`
/// and the body, body group), dropping the `async` keyword.
fn rewrite(item: TokenStream, is_test: bool) -> TokenStream {
    let toks: Vec<TokenTree> = item.into_iter().collect();

    let mut prefix = String::new();
    let mut sig = String::new();
    let mut body = None;
    let mut seen_fn = false;

    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        if !seen_fn {
            match tok {
                TokenTree::Ident(id) if id.to_string() == "async" => {}
                TokenTree::Ident(id) if id.to_string() == "fn" => {
                    seen_fn = true;
                    sig.push_str("fn ");
                }
                other => push_tok(&mut prefix, other),
            }
        } else if i == toks.len() - 1 {
            match tok {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    body = Some(g.stream().to_string());
                }
                other => panic!("expected fn body, got {other}"),
            }
        } else {
            push_tok(&mut sig, tok);
        }
        i += 1;
    }

    let body = body.expect("#[tokio::main]/#[tokio::test] requires a fn with a body");
    assert!(
        seen_fn,
        "#[tokio::main]/#[tokio::test] must be applied to an async fn"
    );

    let test_attr = if is_test {
        "#[::core::prelude::v1::test]\n"
    } else {
        ""
    };
    let out = format!(
        "{test_attr}{prefix}{sig}{{\n\
         ::tokio::runtime::block_on_free(async move {{ {body} }})\n\
         }}"
    );
    out.parse().expect("tokio-macros generated invalid Rust")
}
