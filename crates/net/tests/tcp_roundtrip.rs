//! Integration tests: full client ↔ server over real TCP sockets.

use knactor_net::proto::{OpSpec, ProfileSpec, QuerySpec};
use knactor_net::server::test_server;
use knactor_net::{ExchangeApi, TcpClient};
use knactor_rbac::{Role, RoleBinding, Subject};
use knactor_store::udf::UdfAssignment;
use knactor_store::{ItemResult, UdfBinding};
use knactor_types::schema::{FieldSpec, FieldType};
use knactor_types::{Error, ObjectKey, Revision, Schema, SchemaName, StoreId};
use serde_json::json;
use std::time::Duration;

#[path = "util/batch_workload.rs"]
mod batch_workload;
use batch_workload::batch_script;

async fn client_for(server: &knactor_net::ExchangeServer, subject: Subject) -> TcpClient {
    TcpClient::connect(server.local_addr(), subject)
        .await
        .unwrap()
}

#[tokio::test]
async fn crud_over_tcp() {
    let server = test_server(&["checkout/state"], &[]).await.unwrap();
    let client = client_for(&server, Subject::operator("test")).await;
    client.ping().await.unwrap();

    let store = StoreId::new("checkout/state");
    let rev = client
        .create(store.clone(), ObjectKey::new("o1"), json!({"cost": 30}))
        .await
        .unwrap();
    assert_eq!(rev, Revision(1));

    let obj = client
        .get(store.clone(), ObjectKey::new("o1"))
        .await
        .unwrap();
    assert_eq!(obj.value, json!({"cost": 30}));

    client
        .update(
            store.clone(),
            ObjectKey::new("o1"),
            json!({"cost": 40}),
            Some(rev),
        )
        .await
        .unwrap();
    // Stale OCC write must surface the typed Conflict error across the wire.
    let err = client
        .update(
            store.clone(),
            ObjectKey::new("o1"),
            json!({"cost": 50}),
            Some(rev),
        )
        .await
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Conflict {
            expected: 1,
            actual: 2
        }
    ));

    client
        .patch(
            store.clone(),
            ObjectKey::new("o1"),
            json!({"note": "hi"}),
            false,
        )
        .await
        .unwrap();
    let (objects, _) = client.list(store.clone()).await.unwrap();
    assert_eq!(objects.len(), 1);
    assert_eq!(objects[0].value, json!({"cost": 40, "note": "hi"}));

    client
        .delete(store.clone(), ObjectKey::new("o1"))
        .await
        .unwrap();
    assert!(matches!(
        client.get(store, ObjectKey::new("o1")).await,
        Err(Error::NotFound(_))
    ));
    server.shutdown().await;
}

#[tokio::test]
async fn watch_over_tcp_delivers_in_order() {
    let server = test_server(&["s/a"], &[]).await.unwrap();
    let client = client_for(&server, Subject::operator("w")).await;
    let store = StoreId::new("s/a");

    let mut rx = client.watch(store.clone(), Revision::ZERO).await.unwrap();
    for i in 0..10 {
        client
            .create(
                store.clone(),
                ObjectKey::new(format!("k{i}")),
                json!({"i": i}),
            )
            .await
            .unwrap();
    }
    for i in 0..10u64 {
        let e = tokio::time::timeout(Duration::from_secs(2), rx.recv())
            .await
            .expect("timed out")
            .expect("stream ended");
        assert_eq!(e.revision, Revision(i + 1));
    }
    server.shutdown().await;
}

#[tokio::test]
async fn watch_replays_history_from_revision() {
    let server = test_server(&["s/a"], &[]).await.unwrap();
    let client = client_for(&server, Subject::operator("w")).await;
    let store = StoreId::new("s/a");
    client
        .create(store.clone(), ObjectKey::new("a"), json!(1))
        .await
        .unwrap();
    let rev = client
        .create(store.clone(), ObjectKey::new("b"), json!(2))
        .await
        .unwrap();
    client
        .create(store.clone(), ObjectKey::new("c"), json!(3))
        .await
        .unwrap();

    let mut rx = client.watch(store.clone(), rev).await.unwrap();
    let e = rx.recv().await.unwrap();
    assert_eq!(e.key, ObjectKey::new("c"));
    server.shutdown().await;
}

#[tokio::test]
async fn schema_and_udf_over_tcp() {
    let server = test_server(&["checkout/state", "shipping/state"], &[])
        .await
        .unwrap();
    let client = client_for(&server, Subject::integrator("cast")).await;

    let schema = Schema::new("OnlineRetail/v1/Shipping/Shipment")
        .field(FieldSpec::new("addr", FieldType::String))
        .field(FieldSpec::new("items", FieldType::Array))
        .field(FieldSpec::new("method", FieldType::String));
    client.register_schema(schema.clone()).await.unwrap();
    let got = client
        .get_schema(SchemaName::new("OnlineRetail/v1/Shipping/Shipment"))
        .await
        .unwrap();
    assert_eq!(got, schema);

    client
        .create(
            StoreId::new("checkout/state"),
            ObjectKey::new("order-1"),
            json!({"order": {"address": "Soda", "cost": 99, "items": [{"name": "pen"}]}}),
        )
        .await
        .unwrap();
    client
        .register_udf(
            "ship".to_string(),
            vec!["C".to_string(), "S".to_string()],
            vec![
                UdfAssignment {
                    target_alias: "S".into(),
                    target_path: "addr".into(),
                    expr: "C.order.address".into(),
                },
                UdfAssignment {
                    target_alias: "S".into(),
                    target_path: "method".into(),
                    expr: r#""air" if C.order.cost > 1000 else "ground""#.into(),
                },
            ],
        )
        .await
        .unwrap();
    let revs = client
        .execute_udf(
            "ship".to_string(),
            vec![
                UdfBinding::new("C", "checkout/state", "order-1"),
                UdfBinding::new("S", "shipping/state", "ship-1"),
            ],
        )
        .await
        .unwrap();
    assert_eq!(revs.len(), 1);
    let shipped = client
        .get(StoreId::new("shipping/state"), ObjectKey::new("ship-1"))
        .await
        .unwrap();
    assert_eq!(shipped.value, json!({"addr": "Soda", "method": "ground"}));
    server.shutdown().await;
}

#[tokio::test]
async fn log_ops_over_tcp() {
    let server = test_server(&[], &["motion/telemetry"]).await.unwrap();
    let client = client_for(&server, Subject::reconciler("motion")).await;
    let store = StoreId::new("motion/telemetry");

    client
        .log_append(store.clone(), json!({"triggered": true}))
        .await
        .unwrap();
    let seq = client
        .log_append_batch(
            store.clone(),
            vec![json!({"triggered": false}), json!({"triggered": true})],
        )
        .await
        .unwrap();
    assert_eq!(seq, 3);

    let records = client.log_read(store.clone(), 1).await.unwrap();
    assert_eq!(records.len(), 2);

    let rows = client
        .log_query(
            store.clone(),
            QuerySpec {
                ops: vec![
                    OpSpec::Filter {
                        expr: "this.triggered == true".into(),
                    },
                    OpSpec::Rename {
                        from: "triggered".into(),
                        to: "motion".into(),
                    },
                ],
            },
        )
        .await
        .unwrap();
    assert_eq!(rows, vec![json!({"motion": true}), json!({"motion": true})]);

    // Tail: replay + live.
    let mut tail = client.log_tail(store.clone(), 2).await.unwrap();
    assert_eq!(tail.recv_record().await.unwrap().seq, 3);
    client
        .log_append(store.clone(), json!({"triggered": false}))
        .await
        .unwrap();
    assert_eq!(tail.recv_record().await.unwrap().seq, 4);
    server.shutdown().await;
}

#[tokio::test]
async fn rbac_enforced_over_tcp() {
    let server = test_server(&["lamp/config"], &[]).await.unwrap();
    server.object.configure_access(|ac| {
        ac.always_enforce = true;
        ac.add_role(Role::full_access("owner", "lamp/config"));
        ac.bind(RoleBinding::new(Subject::reconciler("lamp"), "owner"));
    });

    let owner = client_for(&server, Subject::reconciler("lamp")).await;
    owner
        .create(
            StoreId::new("lamp/config"),
            ObjectKey::new("cfg"),
            json!({"brightness": 3}),
        )
        .await
        .unwrap();

    let stranger = client_for(&server, Subject::integrator("stranger")).await;
    let err = stranger
        .get(StoreId::new("lamp/config"), ObjectKey::new("cfg"))
        .await
        .unwrap_err();
    assert!(matches!(err, Error::Forbidden(_)));
    server.shutdown().await;
}

#[tokio::test]
async fn remote_store_creation_with_profiles() {
    let server = knactor_net::ExchangeServer::bind_ephemeral().await.unwrap();
    let client = client_for(&server, Subject::operator("admin")).await;
    client
        .create_store(StoreId::new("a/instant"), ProfileSpec::Instant)
        .await
        .unwrap();
    client
        .create_store(StoreId::new("a/redis"), ProfileSpec::Redis)
        .await
        .unwrap();
    // Duplicate creation errors cross the wire.
    assert!(matches!(
        client
            .create_store(StoreId::new("a/redis"), ProfileSpec::Redis)
            .await,
        Err(Error::AlreadyExists(_))
    ));
    client
        .create(StoreId::new("a/redis"), ObjectKey::new("k"), json!(1))
        .await
        .unwrap();
    server.shutdown().await;
}

#[tokio::test]
async fn injected_latency_slows_requests() {
    let server = test_server(&["s/x"], &[]).await.unwrap();
    let fast = client_for(&server, Subject::operator("f")).await;
    let slow = TcpClient::connect(server.local_addr(), Subject::operator("s"))
        .await
        .unwrap()
        .with_latency(Duration::from_millis(20));

    let t0 = std::time::Instant::now();
    fast.ping().await.unwrap();
    let fast_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    slow.ping().await.unwrap();
    let slow_time = t0.elapsed();

    assert!(slow_time >= Duration::from_millis(20));
    assert!(slow_time > fast_time);
    server.shutdown().await;
}

#[tokio::test]
async fn concurrent_clients_pipeline() {
    let server = test_server(&["s/x"], &[]).await.unwrap();
    let client = std::sync::Arc::new(client_for(&server, Subject::operator("c")).await);
    let store = StoreId::new("s/x");
    let mut tasks = Vec::new();
    for i in 0..32 {
        let client = std::sync::Arc::clone(&client);
        let store = store.clone();
        tasks.push(tokio::spawn(async move {
            client
                .create(store, ObjectKey::new(format!("k{i}")), json!({"i": i}))
                .await
                .unwrap()
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let (objects, rev) = client.list(store).await.unwrap();
    assert_eq!(objects.len(), 32);
    assert_eq!(rev, Revision(32));
    server.shutdown().await;
}

/// Batched ops must behave identically on the in-process loopback and
/// over real TCP: same per-item revisions, same objects, same typed
/// errors in the same slots.
#[tokio::test]
async fn batch_ops_parity_loopback_vs_tcp() {
    let (_object, _log, loopback) = knactor_net::loopback::in_process(Subject::operator("parity"));
    let local = batch_script(&loopback).await;

    let server = knactor_net::ExchangeServer::bind_ephemeral().await.unwrap();
    let client = client_for(&server, Subject::operator("parity")).await;
    let remote = batch_script(&client).await;
    server.shutdown().await;

    assert_eq!(
        local, remote,
        "loopback and TCP must produce identical batch outcomes"
    );

    // Pin the semantics on one transport (the other is equal by the
    // assert above). Revisions advance only for committed items.
    let codes = |items: &[ItemResult]| -> Vec<String> {
        items
            .iter()
            .map(|i| match i {
                ItemResult::Revision { revision } => format!("rev:{revision}"),
                ItemResult::Object { object } => format!("obj:{}", object.key),
                ItemResult::Error { code, .. } => format!("err:{code}"),
            })
            .collect()
    };
    assert_eq!(
        codes(&local[0]),
        [
            "rev:1",
            "rev:2",
            "err:already_exists",
            "err:not_found",
            "err:conflict",
            "rev:3"
        ]
    );
    assert_eq!(codes(&local[1]), ["rev:4", "rev:5", "err:not_found"]);
    assert_eq!(codes(&local[2]), ["obj:a", "err:not_found", "obj:c"]);
    assert_eq!(codes(&local[3]), ["rev:6", "err:not_found"]);
    // The merge-patch really merged.
    let ItemResult::Object { object } = &local[2][0] else {
        panic!("expected object for a");
    };
    assert_eq!(*object.value, json!({"v": 1, "extra": true}));
}

/// Losing the connection mid-request must fail the pending caller with a
/// descriptive transport error — not strand it on a reply that can never
/// arrive, and not hand it an opaque channel-closed message.
#[tokio::test]
async fn connection_loss_fails_pending_requests_descriptively() {
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    tokio::spawn(async move {
        // Accept, never reply, hang up with the request outstanding.
        let (socket, _) = listener.accept().await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        drop(socket);
    });

    let client = TcpClient::connect(addr, Subject::operator("doomed"))
        .await
        .unwrap();
    let err = client.ping().await.unwrap_err();
    match err {
        Error::Transport(msg) => assert!(
            msg.contains("lost") && msg.contains("outstanding"),
            "transport error should describe the connection loss, got: {msg}"
        ),
        other => panic!("expected Error::Transport, got {other:?}"),
    }
    // The client is marked closed: later requests fail fast instead of
    // queueing onto a dead socket.
    assert!(matches!(client.ping().await, Err(Error::Transport(_))));
}

#[tokio::test]
async fn transact_over_tcp_is_atomic() {
    let server = test_server(&["a/state", "b/state"], &[]).await.unwrap();
    let client = client_for(&server, Subject::operator("tx")).await;
    let rev = client
        .create(
            StoreId::new("a/state"),
            ObjectKey::new("k"),
            json!({"v": 1}),
        )
        .await
        .unwrap();

    // Atomic success across two stores.
    let revs = client
        .transact(vec![
            knactor_store::TxOp {
                store: StoreId::new("a/state"),
                key: ObjectKey::new("k"),
                patch: json!({"v": 2}),
                upsert: false,
                expected: Some(rev),
            },
            knactor_store::TxOp {
                store: StoreId::new("b/state"),
                key: ObjectKey::new("mirror"),
                patch: json!({"of": "a/k"}),
                upsert: true,
                expected: None,
            },
        ])
        .await
        .unwrap();
    assert_eq!(revs.len(), 2);

    // Stale precondition aborts everything, typed error crosses the wire.
    let err = client
        .transact(vec![
            knactor_store::TxOp {
                store: StoreId::new("a/state"),
                key: ObjectKey::new("k"),
                patch: json!({"v": 99}),
                upsert: false,
                expected: Some(rev), // stale
            },
            knactor_store::TxOp {
                store: StoreId::new("b/state"),
                key: ObjectKey::new("mirror2"),
                patch: json!({}),
                upsert: true,
                expected: None,
            },
        ])
        .await
        .unwrap_err();
    assert!(matches!(err, Error::Conflict { .. }));
    assert!(matches!(
        client
            .get(StoreId::new("b/state"), ObjectKey::new("mirror2"))
            .await,
        Err(Error::NotFound(_))
    ));
    server.shutdown().await;
}
