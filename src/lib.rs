//! # Knactor
//!
//! A data-centric service composition framework — a from-scratch Rust
//! reproduction of *"Toward Data-Centric Service Composition"*
//! (HotNets '24).
//!
//! Microservices are modular; API-centric composition (RPC, Pub/Sub) is
//! not: it couples services at the code level, scatters composition logic
//! across every codebase, and hides cross-service data flows inside
//! pairwise calls. Knactor replaces API calls with **explicit data
//! exchanges**: every service (a *knactor*) externalizes its state to its
//! own data store on a data exchange, and separate **integrator** modules
//! compose services by processing and syncing state between stores —
//! declaratively, via data exchange graphs, reconfigurable at run time.
//!
//! ## Crate map
//!
//! | module | crate | what it is |
//! |--------|-------|------------|
//! | [`types`] | `knactor-types` | values, schemas, `+kr:` annotations, ids |
//! | [`yamlish`] | `knactor-yamlish` | the spec-file YAML subset |
//! | [`expr`] | `knactor-expr` | the DXG expression language |
//! | [`rbac`] | `knactor-rbac` | state access control |
//! | [`store`] | `knactor-store` | the Object data exchange |
//! | [`logstore`] | `knactor-logstore` | the Log data exchange |
//! | [`net`] | `knactor-net` | wire protocol, TCP + loopback transports |
//! | [`dxg`] | `knactor-dxg` | data exchange graphs + static analysis |
//! | [`core`] | `knactor-core` | knactors, reconcilers, runtime, Cast, Sync |
//! | [`rpc`] | `knactor-rpc` | the API-centric baseline (mini-RPC, Pub/Sub) |
//! | [`apps`] | `knactor-apps` | the retail + smart-home case studies |
//!
//! ## Quickstart
//!
//! ```
//! use knactor::prelude::*;
//! use serde_json::json;
//!
//! # #[tokio::main(flavor = "current_thread")]
//! # async fn main() -> knactor::types::Result<()> {
//! // An in-process data exchange and a client for it.
//! let (_object, _log, client) = knactor::net::loopback::in_process(
//!     Subject::integrator("quickstart"),
//! );
//! let api: std::sync::Arc<dyn ExchangeApi> = std::sync::Arc::new(client);
//!
//! // Two services externalize their state...
//! api.create_store("a/state".into(), ProfileSpec::Instant).await?;
//! api.create_store("b/state".into(), ProfileSpec::Instant).await?;
//! api.create("a/state".into(), "obj".into(), json!({"greeting": "hello"})).await?;
//!
//! // ...and an integrator composes them with a two-line DXG.
//! let dxg = Dxg::parse(
//!     "Input:\n  A: demo/v1/A/a\n  B: demo/v1/B/b\nDXG:\n  B:\n    shout: upper(A.greeting)\n",
//! )?;
//! let mut bindings = std::collections::BTreeMap::new();
//! bindings.insert("A".to_string(), CastBinding::correlated("a/state"));
//! bindings.insert("B".to_string(), CastBinding::correlated("b/state"));
//! let cast = Cast::new(std::sync::Arc::clone(&api));
//! let config = CastConfig { name: "demo".into(), dxg, bindings, mode: CastMode::Direct, coalesce: 1 };
//! cast.activate_once(&config, &"obj".into()).await?;
//!
//! let b = api.get("b/state".into(), "obj".into()).await?;
//! assert_eq!(b.value["shout"], json!("HELLO"));
//! # Ok(())
//! # }
//! ```

pub mod testkit;

pub use knactor_apps as apps;
pub use knactor_core as core;
pub use knactor_dxg as dxg;
pub use knactor_expr as expr;
pub use knactor_logstore as logstore;
pub use knactor_net as net;
pub use knactor_rbac as rbac;
pub use knactor_rpc as rpc;
pub use knactor_store as store;
pub use knactor_types as types;
pub use knactor_yamlish as yamlish;

/// The names most programs need.
pub mod prelude {
    pub use knactor_core::{
        ApplyReport, Cast, CastBinding, CastConfig, CastController, CastMode, Composer,
        Composition, Counters, FnReconciler, Health, Integrator, IntegratorConfig, IntegratorStats,
        Knactor, KnactorBuilder, Reconciler, ReconcilerCtx, Runtime, Sync, SyncConfig, SyncDest,
        SyncMode, TraceCollector,
    };
    pub use knactor_dxg::{Dxg, Plan};
    pub use knactor_expr::{Env, FnRegistry};
    pub use knactor_logstore::{AggFn, LogExchange, LogStore, Query};
    pub use knactor_net::proto::{OpSpec, ProfileSpec, QuerySpec};
    pub use knactor_net::{
        ExchangeApi, ExchangeServer, LoopbackClient, ReplicaRouter, ReplicatedExchange,
        ShardRouter, ShardedExchange, TcpClient,
    };
    pub use knactor_rbac::{
        AccessContext, AccessController, Condition, Role, RoleBinding, Rule, Subject, Verb,
    };
    pub use knactor_store::{
        BatchOp, DataExchange, EngineProfile, ItemResult, ObjectStore, PutItem, RetentionPolicy,
        ShardMap, StoreHandle,
    };
    pub use knactor_types::{
        Error, FieldPath, KnactorId, ObjectKey, Result, Revision, Schema, SchemaName, StoreId,
        Value,
    };
}
