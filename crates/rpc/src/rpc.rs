//! Miniature RPC framework (the gRPC stand-in).
//!
//! Wire format reuses `knactor-net`'s length-prefixed frames; each frame
//! carries one JSON message. Calls are synchronous request/response with
//! id correlation; a connection pipelines. Handlers run concurrently per
//! request (one task each), like a gRPC server's handler pool.

use knactor_net::frame::{FrameReader, FrameWriter};
use knactor_types::{Error, Result, Value};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, oneshot, watch};
use tokio::task::JoinHandle;

type BoxFuture<T> = Pin<Box<dyn Future<Output = T> + Send>>;

/// A registered method handler.
pub type Handler = Arc<dyn Fn(Value) -> BoxFuture<Result<Value>> + Send + Sync>;

#[derive(Debug, Serialize, Deserialize)]
struct RpcRequest {
    id: u64,
    method: String,
    payload: Value,
}

#[derive(Debug, Serialize, Deserialize)]
struct RpcReply {
    id: u64,
    #[serde(default)]
    result: Option<Value>,
    #[serde(default)]
    error: Option<(String, String)>,
}

/// A server hosting named methods (`"Shipping/ShipOrder"`).
pub struct RpcServer {
    methods: Arc<Mutex<HashMap<String, Handler>>>,
    local_addr: Option<std::net::SocketAddr>,
    shutdown_tx: Option<watch::Sender<bool>>,
    accept_task: Option<JoinHandle<()>>,
}

impl Default for RpcServer {
    fn default() -> Self {
        RpcServer::new()
    }
}

impl RpcServer {
    pub fn new() -> RpcServer {
        RpcServer {
            methods: Arc::new(Mutex::new(HashMap::new())),
            local_addr: None,
            shutdown_tx: None,
            accept_task: None,
        }
    }

    /// Register a method handler. `method` is `Service/Method`.
    pub fn register<F, Fut>(&self, method: impl Into<String>, f: F)
    where
        F: Fn(Value) -> Fut + Send + Sync + 'static,
        Fut: Future<Output = Result<Value>> + Send + 'static,
    {
        let handler: Handler = Arc::new(move |v| Box::pin(f(v)));
        self.methods.lock().insert(method.into(), handler);
    }

    pub fn method_names(&self) -> Vec<String> {
        self.methods.lock().keys().cloned().collect()
    }

    /// Bind and start serving. Use `127.0.0.1:0` for an ephemeral port.
    pub async fn bind(&mut self, addr: &str) -> Result<std::net::SocketAddr> {
        let listener = TcpListener::bind(addr).await?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::Transport(e.to_string()))?;
        let methods = Arc::clone(&self.methods);
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let task = tokio::spawn(accept_loop(listener, methods, shutdown_rx));
        self.local_addr = Some(local);
        self.shutdown_tx = Some(shutdown_tx);
        self.accept_task = Some(task);
        Ok(local)
    }

    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.local_addr
    }

    pub async fn shutdown(mut self) {
        if let Some(tx) = self.shutdown_tx.take() {
            let _ = tx.send(true);
        }
        if let Some(task) = self.accept_task.take() {
            let _ = task.await;
        }
    }
}

async fn accept_loop(
    listener: TcpListener,
    methods: Arc<Mutex<HashMap<String, Handler>>>,
    mut shutdown: watch::Receiver<bool>,
) {
    loop {
        tokio::select! {
            accepted = listener.accept() => {
                let Ok((socket, _)) = accepted else { break };
                let methods = Arc::clone(&methods);
                tokio::spawn(async move {
                    let _ = serve_connection(socket, methods).await;
                });
            }
            _ = shutdown.changed() => {
                if *shutdown.borrow() {
                    break;
                }
            }
        }
    }
}

async fn serve_connection(
    socket: TcpStream,
    methods: Arc<Mutex<HashMap<String, Handler>>>,
) -> Result<()> {
    socket
        .set_nodelay(true)
        .map_err(|e| Error::Transport(e.to_string()))?;
    let (read_half, write_half) = socket.into_split();
    let mut reader = FrameReader::new(read_half);
    let (out_tx, mut out_rx) = mpsc::unbounded_channel::<RpcReply>();
    let writer_task = tokio::spawn(async move {
        let mut writer = FrameWriter::new(write_half);
        while let Some(reply) = out_rx.recv().await {
            let Ok(bytes) = serde_json::to_vec(&reply) else {
                break;
            };
            if writer.write_frame(&bytes).await.is_err() {
                break;
            }
        }
    });
    while let Some(frame) = reader.read_frame().await? {
        let request: RpcRequest = serde_json::from_slice(&frame)?;
        let handler = methods.lock().get(&request.method).cloned();
        let out = out_tx.clone();
        tokio::spawn(async move {
            let reply = match handler {
                Some(h) => match h(request.payload).await {
                    Ok(result) => RpcReply {
                        id: request.id,
                        result: Some(result),
                        error: None,
                    },
                    Err(e) => RpcReply {
                        id: request.id,
                        result: None,
                        error: Some((e.code().to_string(), e.wire_message())),
                    },
                },
                None => RpcReply {
                    id: request.id,
                    result: None,
                    error: Some((
                        "not_found".to_string(),
                        format!("no such method '{}'", request.method),
                    )),
                },
            };
            let _ = out.send(reply);
        });
    }
    drop(out_tx);
    let _ = writer_task.await;
    Ok(())
}

/// A pipelining RPC client.
pub struct RpcClient {
    out_tx: mpsc::UnboundedSender<RpcRequest>,
    pending: Arc<Mutex<HashMap<u64, oneshot::Sender<RpcReply>>>>,
    next_id: AtomicU64,
    latency: Option<Duration>,
}

impl RpcClient {
    pub async fn connect(addr: impl tokio::net::ToSocketAddrs) -> Result<RpcClient> {
        let socket = TcpStream::connect(addr).await?;
        socket
            .set_nodelay(true)
            .map_err(|e| Error::Transport(e.to_string()))?;
        let (read_half, write_half) = socket.into_split();
        let (out_tx, mut out_rx) = mpsc::unbounded_channel::<RpcRequest>();
        tokio::spawn(async move {
            let mut writer = FrameWriter::new(write_half);
            while let Some(req) = out_rx.recv().await {
                let Ok(bytes) = serde_json::to_vec(&req) else {
                    break;
                };
                if writer.write_frame(&bytes).await.is_err() {
                    break;
                }
            }
        });
        let pending: Arc<Mutex<HashMap<u64, oneshot::Sender<RpcReply>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let demux_pending = Arc::clone(&pending);
        tokio::spawn(async move {
            let mut reader = FrameReader::new(read_half);
            while let Ok(Some(frame)) = reader.read_frame().await {
                let Ok(reply) = serde_json::from_slice::<RpcReply>(&frame) else {
                    break;
                };
                if let Some(tx) = demux_pending.lock().remove(&reply.id) {
                    let _ = tx.send(reply);
                }
            }
            demux_pending.lock().clear();
        });
        Ok(RpcClient {
            out_tx,
            pending,
            next_id: AtomicU64::new(1),
            latency: None,
        })
    }

    /// Inject a fixed per-call latency (cluster RTT model).
    pub fn with_latency(mut self, rtt: Duration) -> RpcClient {
        self.latency = Some(rtt);
        self
    }

    /// Invoke `Service/Method` with a JSON payload.
    ///
    /// Every call is counted into `knactor_rpc_calls_total{method}` and
    /// timed into `knactor_rpc_call_seconds{method}` — the API-centric
    /// baseline's side of the Table 2 comparison, so parity runs can cite
    /// the same metric names as the knactor deployment.
    pub async fn call(&self, method: &str, payload: Value) -> Result<Value> {
        let registry = knactor_types::metrics::global();
        registry
            .counter("knactor_rpc_calls_total", &[("method", method)])
            .inc();
        let call_start = std::time::Instant::now();
        if let Some(rtt) = self.latency {
            knactor_net::precise_sleep(rtt).await;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = oneshot::channel();
        self.pending.lock().insert(id, tx);
        self.out_tx
            .send(RpcRequest {
                id,
                method: method.to_string(),
                payload,
            })
            .map_err(|_| Error::Transport("connection closed".to_string()))?;
        let reply = rx
            .await
            .map_err(|_| Error::Transport("connection closed awaiting reply".to_string()))?;
        registry
            .histogram("knactor_rpc_call_seconds", &[("method", method)])
            .observe(call_start.elapsed());
        match (reply.result, reply.error) {
            (Some(v), None) => Ok(v),
            (_, Some((code, msg))) => Err(Error::from_wire(&code, &msg)),
            (None, None) => Err(Error::Transport("empty reply".to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[tokio::test]
    async fn call_roundtrip() {
        let mut server = RpcServer::new();
        server.register("Echo/Upper", |payload: Value| async move {
            let s = payload["s"].as_str().unwrap_or_default().to_uppercase();
            Ok(json!({ "s": s }))
        });
        let addr = server.bind("127.0.0.1:0").await.unwrap();
        let client = RpcClient::connect(addr).await.unwrap();
        let out = client
            .call("Echo/Upper", json!({"s": "air"}))
            .await
            .unwrap();
        assert_eq!(out, json!({"s": "AIR"}));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn unknown_method_errors() {
        let mut server = RpcServer::new();
        let addr = server.bind("127.0.0.1:0").await.unwrap();
        let client = RpcClient::connect(addr).await.unwrap();
        let err = client.call("Nope/Nothing", json!({})).await.unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn handler_errors_cross_the_wire() {
        let mut server = RpcServer::new();
        server.register("Ship/Order", |_p: Value| async move {
            Err(Error::SchemaViolation("missing addr".to_string()))
        });
        let addr = server.bind("127.0.0.1:0").await.unwrap();
        let client = RpcClient::connect(addr).await.unwrap();
        let err = client.call("Ship/Order", json!({})).await.unwrap_err();
        assert!(matches!(err, Error::SchemaViolation(_)));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn concurrent_calls_pipeline() {
        let mut server = RpcServer::new();
        server.register("Math/Square", |p: Value| async move {
            let n = p["n"].as_i64().unwrap_or(0);
            Ok(json!({"n": n * n}))
        });
        let addr = server.bind("127.0.0.1:0").await.unwrap();
        let client = Arc::new(RpcClient::connect(addr).await.unwrap());
        let mut tasks = Vec::new();
        for i in 0..16i64 {
            let client = Arc::clone(&client);
            tasks.push(tokio::spawn(async move {
                let out = client.call("Math/Square", json!({"n": i})).await.unwrap();
                assert_eq!(out["n"], json!(i * i));
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn injected_latency_applies() {
        let mut server = RpcServer::new();
        server.register("Ping/Ping", |_p| async move { Ok(json!({})) });
        let addr = server.bind("127.0.0.1:0").await.unwrap();
        let client = RpcClient::connect(addr)
            .await
            .unwrap()
            .with_latency(Duration::from_millis(15));
        let t0 = std::time::Instant::now();
        client.call("Ping/Ping", json!({})).await.unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15));
        server.shutdown().await;
    }
}
